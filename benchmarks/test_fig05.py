"""Figure 5: response time vs mpl, read/write model, infinite resources.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""



def test_figure_5(run_figure):
    result = run_figure("figure-5")
    commutativity = dict(result.series("commutativity", "response_time"))
    recoverability = dict(result.series("recoverability", "response_time"))
    top = max(commutativity)
    # Under heavy data contention the recoverability scheduler answers sooner.
    assert recoverability[top] <= commutativity[top]
    assert all(value > 0 for value in recoverability.values())
