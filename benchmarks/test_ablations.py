"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not figures from the paper; they isolate individual design decisions
of the reproduction:

* **scheduler overhead** — raw operations/second of the scheduler itself (no
  simulation), commutativity vs recoverability, measuring the cost of the
  extra commit-dependency bookkeeping the paper argues is small;
* **pseudo-commit slot policy** — whether a pseudo-committed transaction keeps
  occupying a multiprogramming slot until its durable commit (the paper's
  reading) or releases it at completion;
* **write probability** — how the recoverability advantage grows with the
  fraction of writes in the read/write workload.
"""

import pytest

from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler
from repro.adts import StackType
from repro.sim.params import SimulationParameters
from repro.sim.simulator import run_simulation


# ----------------------------------------------------------------------
# Scheduler overhead (pure CC layer, no simulation)
# ----------------------------------------------------------------------
def _scheduler_burst(policy, transactions=50, pushes=4):
    scheduler = Scheduler(policy=policy, record_history=False, retain_terminated=False)
    scheduler.register_object("S", StackType())
    for _ in range(transactions):
        transaction = scheduler.begin()
        for element in range(pushes):
            scheduler.perform(transaction.tid, "S", "push", element)
        scheduler.commit(transaction.tid)
    return scheduler.stats


@pytest.mark.parametrize("policy", list(ConflictPolicy), ids=lambda p: p.value)
def test_ablation_scheduler_overhead(benchmark, policy):
    stats = benchmark(_scheduler_burst, policy)
    assert stats.operations_executed == 50 * 4


# ----------------------------------------------------------------------
# Pseudo-commit slot policy
# ----------------------------------------------------------------------
def test_ablation_pseudo_commit_slot(benchmark, results_dir):
    def run_both():
        outcomes = {}
        for holds_slot in (True, False):
            params = SimulationParameters(
                mpl_level=50,
                total_completions=400,
                policy=ConflictPolicy.RECOVERABILITY,
                pseudo_commit_holds_slot=holds_slot,
                seed=17,
            )
            outcomes[holds_slot] = run_simulation(params, "readwrite")
        return outcomes

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1, warmup_rounds=0)
    lines = ["pseudo-commit slot ablation (RW model, mpl=50, infinite resources)"]
    for holds_slot, metrics in outcomes.items():
        lines.append(
            f"  holds_slot={holds_slot}: throughput={metrics.throughput:.2f} "
            f"response={metrics.response_time:.3f} pseudo_commits={metrics.pseudo_commits}"
        )
    text = "\n".join(lines)
    print()
    print(text)
    (results_dir / "ablation_pseudo_commit_slot.txt").write_text(text + "\n")
    assert all(metrics.throughput > 0 for metrics in outcomes.values())


# ----------------------------------------------------------------------
# Write-probability sweep
# ----------------------------------------------------------------------
def test_ablation_write_probability(benchmark, results_dir):
    probabilities = (0.1, 0.3, 0.5)

    def run_sweep():
        table = {}
        for probability in probabilities:
            row = {}
            # The ablation isolates the semantic-policy gain, so only the two
            # table-driven policies run (2PL at mpl=100 thrashes and would
            # dominate the suite's wall-clock without informing this table).
            for policy in (ConflictPolicy.COMMUTATIVITY, ConflictPolicy.RECOVERABILITY):
                params = SimulationParameters(
                    mpl_level=100,
                    total_completions=400,
                    policy=policy,
                    write_probability=probability,
                    seed=23,
                )
                row[policy] = run_simulation(params, "readwrite").throughput
            table[probability] = row
        return table

    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1, warmup_rounds=0)
    lines = ["write-probability ablation (RW model, mpl=100, infinite resources)"]
    improvements = {}
    for probability, row in table.items():
        baseline = row[ConflictPolicy.COMMUTATIVITY]
        improved = row[ConflictPolicy.RECOVERABILITY]
        improvements[probability] = (improved - baseline) / baseline if baseline else 0.0
        lines.append(
            f"  write_probability={probability}: commutativity={baseline:.2f} "
            f"recoverability={improved:.2f} gain={improvements[probability] * 100:+.1f}%"
        )
    text = "\n".join(lines)
    print()
    print(text)
    (results_dir / "ablation_write_probability.txt").write_text(text + "\n")
    # More writes means more non-commuting pairs, which is exactly where
    # recoverability helps: the gain at 0.5 should not be smaller than at 0.1.
    assert improvements[0.5] >= improvements[0.1] - 0.05
