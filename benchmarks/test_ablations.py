"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not figures from the paper; they isolate individual design decisions
of the reproduction:

* **scheduler overhead** — raw operations/second of the scheduler itself (no
  simulation), commutativity vs recoverability, measuring the cost of the
  extra commit-dependency bookkeeping the paper argues is small;
* **pseudo-commit slot policy** and **write probability** — registry
  experiments (``repro.analysis.ablations``) run through the same
  ``run_figure`` harness as the figures; the specs live with the other
  experiment definitions and the modules here only assert the shapes.
"""

import pytest

from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler
from repro.adts import StackType


# ----------------------------------------------------------------------
# Scheduler overhead (pure CC layer, no simulation — not a registry sweep)
# ----------------------------------------------------------------------
def _scheduler_burst(policy, transactions=50, pushes=4):
    scheduler = Scheduler(policy=policy, record_history=False, retain_terminated=False)
    scheduler.register_object("S", StackType())
    for _ in range(transactions):
        transaction = scheduler.begin()
        for element in range(pushes):
            scheduler.perform(transaction.tid, "S", "push", element)
        scheduler.commit(transaction.tid)
    return scheduler.stats


@pytest.mark.parametrize("policy", list(ConflictPolicy), ids=lambda p: p.value)
def test_ablation_scheduler_overhead(benchmark, policy):
    stats = benchmark(_scheduler_burst, policy)
    assert stats.operations_executed == 50 * 4


# ----------------------------------------------------------------------
# Pseudo-commit slot policy (registry experiment)
# ----------------------------------------------------------------------
def test_ablation_pseudo_commit_slot(run_figure):
    result = run_figure("ablation-pseudo-commit-slot")
    for label in ("holds-slot", "releases-slot"):
        (_, peak) = result.peak(label)
        assert peak > 0


# ----------------------------------------------------------------------
# Write-probability sweep (registry experiment)
# ----------------------------------------------------------------------
def test_ablation_write_probability(run_figure):
    result = run_figure("ablation-write-probability")
    improvements = {}
    for probability in (0.1, 0.5):
        improvements[probability] = result.improvement(
            better=f"Pw={probability}/recoverability",
            baseline=f"Pw={probability}/commutativity",
            mpl=100,
        )
    # More writes means more non-commuting pairs, which is exactly where
    # recoverability helps: the gain at 0.5 should not be smaller than at 0.1.
    assert improvements[0.5] >= improvements[0.1] - 0.05
