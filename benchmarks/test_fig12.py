"""Figure 12: conflict ratios with 5 resource units, read/write model.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""



def test_figure_12(run_figure):
    result = run_figure("figure-12")
    commutativity = dict(result.series("commutativity", "blocking_ratio"))
    recoverability = dict(result.series("recoverability", "blocking_ratio"))
    top = max(commutativity)
    assert recoverability[top] <= commutativity[top]
