"""Figure 10: throughput with 5 resource units, read/write model.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""



def test_figure_10(run_figure):
    result = run_figure("figure-10")
    _, commutativity_peak = result.peak("commutativity")
    _, recoverability_peak = result.peak("recoverability")
    # Resource contention shrinks the advantage (the paper reports ~15%), but
    # recoverability must not lose at the peak.
    assert recoverability_peak >= commutativity_peak * 0.98
