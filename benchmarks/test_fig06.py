"""Figure 6: blocking and restart ratios, read/write model, infinite resources.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""



def test_figure_6(run_figure):
    result = run_figure("figure-6")
    commutativity = dict(result.series("commutativity", "blocking_ratio"))
    recoverability = dict(result.series("recoverability", "blocking_ratio"))
    top = max(commutativity)
    assert recoverability[top] <= commutativity[top]
    restarts = dict(result.series("recoverability", "restart_ratio"))
    assert all(value >= 0 for value in restarts.values())
