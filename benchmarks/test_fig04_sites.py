"""Figure 4's workload on the multi-site execution layer (1/2/4 sites).

Not a figure of the paper: it measures the transaction router's cost and
fault tolerance.  The read/write workload runs on 1, 2 and 4 sites with
available-copies replication under both the semantic backend and the
strict-2PL baseline; every multi-site variant includes a scripted crash and
recovery of site 1.  Expected shape: the system keeps completing work through
the failure at every site count (availability), replication and the crash
cost throughput versus the centralized run, and the semantic backend stays
ahead of strict 2PL at the same site count.
"""


def test_figure_4_sites_router(run_figure):
    result = run_figure("figure-4-sites")
    peaks = {label: result.peak(label)[1] for label in result.variant_labels()}
    # Every configuration keeps completing transactions, crash included.
    for label, peak in peaks.items():
        assert peak > 0, f"{label} completed no work"
    # The scripted failure actually bites: multi-site runs restart more than
    # their centralized counterparts at some multiprogramming level.
    for backend in ("semantic", "2pl"):
        single = dict(result.series(f"1-site/{backend}", "restart_ratio"))
        multi = dict(result.series(f"2-site/{backend}", "restart_ratio"))
        assert any(multi[level] > single[level] for level in multi)
    # Semantic concurrency control beats the locking baseline per site count.
    for sites in (1, 2, 4):
        assert peaks[f"{sites}-site/semantic"] >= peaks[f"{sites}-site/2pl"]
    # Replication plus the crash is not free: the centralized semantic run
    # stays at or above the multi-site ones (small tolerance for noise).
    assert peaks["1-site/semantic"] >= 0.9 * peaks["2-site/semantic"]
    assert peaks["1-site/semantic"] >= 0.9 * peaks["4-site/semantic"]
