"""Figure 16: conflict ratios, ADT model, infinite resources, Pc=4.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""



def test_figure_16(run_figure):
    result = run_figure("figure-16")
    low_pr = dict(result.series("Pc=4,Pr=0", "blocking_ratio"))
    high_pr = dict(result.series("Pc=4,Pr=8", "blocking_ratio"))
    top = max(low_pr)
    assert high_pr[top] <= low_pr[top]
