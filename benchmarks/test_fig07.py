"""Figure 7: cycle-check ratio and abort length, read/write model, infinite resources.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""



def test_figure_7(run_figure):
    result = run_figure("figure-7")
    recoverability = dict(result.series("recoverability", "cycle_check_ratio"))
    commutativity = dict(result.series("commutativity", "cycle_check_ratio"))
    top = max(recoverability)
    # Cycle checks happen on every block and on every recoverable execute, so
    # the ratio is strictly positive under contention for both policies.
    assert recoverability[top] > 0
    assert commutativity[top] > 0
    abort_lengths = dict(result.series("recoverability", "abort_length"))
    assert all(value >= 0 for value in abort_lengths.values())
