"""Read scaling across replicated sites with per-site resources.

Not a figure of the paper: this is the experiment the per-site resource
domains exist for.  Each site owns one resource unit, objects are fully
replicated, and cross-site work pays a 1 ms network cost.  Expected shape:
read-heavy throughput grows with the site count (read-one routing spreads
load over hardware that replication added), while write-heavy throughput
stays roughly flat (write-all-available fan-out consumes every site's
hardware for every write).
"""


def test_figure_4_sites_scaling(run_figure):
    result = run_figure("figure-4-sites-scaling")
    peaks = {label: result.peak(label)[1] for label in result.variant_labels()}
    for label, peak in peaks.items():
        assert peak > 0, f"{label} completed no work"
    # Read-heavy work scales with replicated sites: every added site is
    # added hardware, and reads only load the replica that serves them.
    assert peaks["4-site/read-heavy"] > peaks["1-site/read-heavy"]
    assert peaks["2-site/read-heavy"] > peaks["1-site/read-heavy"]
    assert peaks["4-site/read-heavy"] >= 1.5 * peaks["1-site/read-heavy"]
    # Write-heavy work does not scale — every write charges every site —
    # but replication must not cost more than a sliver either (the network
    # delay and fan-out coordination are the only overheads).
    assert peaks["4-site/write-heavy"] >= 0.95 * peaks["1-site/write-heavy"]
    # Within one site count, the read-heavy workload outruns the
    # write-heavy one: writes both conflict more and fan out wider.
    for sites in (2, 4):
        assert peaks[f"{sites}-site/read-heavy"] > peaks[f"{sites}-site/write-heavy"]
