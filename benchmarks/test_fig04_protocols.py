"""The three replication protocols through a scripted double crash.

Not a figure of the paper: it makes the availability trade-offs of the
replication literature measurable.  Two fully replicated sites run a small
writier read/write workload while site 1 crashes and recovers and then —
with site 1's copies still partly stale — site 0 crashes too.  Expected
shape, read off the deterministic ``replication_*`` counters: every protocol
keeps completing work through both crashes; available-copies pays for the
second crash with read-unavailability (the unreadable window), the quorum
(R=1, W=2) pays with write-unavailability whenever one site is down but
never loses a read, and primary-copy loses almost none — it catches
recovered replicas up from the freshest live copy and rides the second
crash on a deterministic failover election, deferring readability only for
copies whose in-flight writes a correct read must not miss.
"""


def test_figure_4_protocols(run_figure):
    result = run_figure("figure-4-protocols")
    labels = result.variant_labels()
    # Every protocol keeps completing transactions through both crashes.
    for label in labels:
        assert result.peak(label)[1] > 0, f"{label} completed no work"
        assert result.counter_total(label, "replication_messages") > 0
    # Available-copies: the unreadable window is a measured read cost; its
    # writes land at whatever copies are up, so they never go unavailable,
    # and recovery is write-driven — no catch-up events.
    assert result.counter_total("available-copies", "replication_read_unavailable_aborts") > 0
    assert result.counter_total("available-copies", "replication_write_unavailable_aborts") == 0
    assert result.counter_total("available-copies", "replication_catchups") == 0
    # Quorum consensus: catch-up removes the window (reads survive every
    # single-site crash) but W=2 writes need both sites up.
    quorum = "quorum(R=1,W=2)"
    assert result.counter_total(quorum, "replication_read_unavailable_aborts") == 0
    assert result.counter_total(quorum, "replication_write_unavailable_aborts") > 0
    assert result.counter_total(quorum, "replication_catchups") > 0
    # Primary-copy: catch-up plus failover sustain writes outright and
    # shrink the read window to the copies that must defer for in-flight
    # writes — a sliver of the available-copies window.
    ac_window = result.counter_total("available-copies", "replication_read_unavailable_aborts")
    pc_window = result.counter_total("primary-copy", "replication_read_unavailable_aborts")
    assert pc_window <= 0.05 * ac_window
    assert result.counter_total("primary-copy", "replication_write_unavailable_aborts") == 0
    assert result.counter_total("primary-copy", "replication_failovers") > 0
    assert result.counter_total("primary-copy", "replication_catchups") > 0
    # The availability ordering is also a throughput ordering at the peak:
    # the protocols that keep serving through the crashes complete more.
    peaks = {label: result.peak(label)[1] for label in labels}
    assert peaks["primary-copy"] >= peaks["available-copies"]
