"""Figure 4: throughput vs mpl, read/write model, infinite resources.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""

from .conftest import assert_shape_recoverability_wins


def test_figure_4(run_figure):
    result = run_figure("figure-4")
    assert_shape_recoverability_wins(result, min_gain=0.20)
    # Commutativity should lose a large part of its peak at the highest mpl
    # (thrashing) while recoverability degrades more gracefully.
    commutativity = dict(result.series("commutativity", "throughput"))
    recoverability = dict(result.series("recoverability", "throughput"))
    top = max(commutativity)
    assert recoverability[top] >= commutativity[top]
