"""Figure 9: conflict ratios without fair scheduling, read/write model, infinite resources.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""



def test_figure_9(run_figure):
    result = run_figure("figure-9")
    commutativity = dict(result.series("commutativity", "blocking_ratio"))
    recoverability = dict(result.series("recoverability", "blocking_ratio"))
    top = max(commutativity)
    assert recoverability[top] <= commutativity[top]
