"""Figure 8: throughput without fair scheduling, read/write model, infinite resources.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""

from .conftest import assert_shape_recoverability_wins


def test_figure_8(run_figure):
    result = run_figure("figure-8")
    assert_shape_recoverability_wins(result, min_gain=0.10)
