"""The two commit protocols through a scripted double crash.

Not a figure of the paper: it prices *when a distributed commit may report
durable*.  Three fully replicated sites run the writier protocol workload
under quorum consensus (R=2, W=2) with a 2 ms network cost while site 1
crashes and recovers and then site 0 crashes with pseudo-committed work in
flight.  Expected shape, read off the deterministic counters: the one-phase
baseline drops crashed pseudo-committed branches and so reports commits
durable below W stamped live copies — a nonzero
``replication_under_replicated_window`` — at one message round per commit;
two-phase commit pays a prepare round per commit (strictly more network
messages) and certification work, but re-replicates under-stamped objects
to the spare site at failure time and never reports a commit
under-replicated.
"""


def test_figure_4_commit(run_figure):
    result = run_figure("figure-4-commit")
    labels = result.variant_labels()
    # Both protocols keep completing transactions through both crashes.
    for label in labels:
        assert result.peak(label)[1] > 0, f"{label} completed no work"
    # One-phase: the pre-refactor behaviour — no prepare traffic, no
    # re-replication, and the crash finalizes commits below W stamped live
    # copies: the under-replication window is a measured number.
    assert result.counter_total("one-phase", "replication_under_replicated_window") > 0
    assert result.counter_total("one-phase", "commit_prepare_rounds") == 0
    assert result.counter_total("one-phase", "commit_re_replicated_objects") == 0
    # Two-phase: every commit pays a prepare round and is certified; each
    # branch's durable local commit is an ack (several per commit).
    prepare_rounds = result.counter_total("two-phase", "commit_prepare_rounds")
    assert prepare_rounds > 0
    assert result.counter_total("two-phase", "commit_certifications") >= prepare_rounds
    assert result.counter_total("two-phase", "commit_prepare_acks") >= prepare_rounds
    # The crashes trigger re-replication of under-stamped objects to the
    # spare site, so no reported commit is ever below W live stamped
    # copies: the window 2PC exists to close is exactly zero (and no
    # prepare timeout is configured, so nothing was force-reported).
    assert result.counter_total("two-phase", "commit_re_replicated_objects") > 0
    assert result.counter_total("two-phase", "replication_under_replicated_window") == 0
    assert result.counter_total("two-phase", "commit_forced_reports") == 0
    # The prepare round is 2PC's latency cost: with the same workload it
    # sends strictly more network messages than the one-shot fan-out.
    assert result.counter_total("two-phase", "resource_messages_sent") > (
        result.counter_total("one-phase", "resource_messages_sent")
    )
