"""Figure 4 workload under the strict-2PL backend vs recoverability.

Not a figure of the paper itself: it reproduces the paper's framing end-to-end
by running the classical page-level strict two-phase-locking baseline against
the recoverability protocol on the Figure 4 workload (read/write model,
infinite resources).  The expected shape is the paper's qualitative ordering:
2PL completes no more transactions per simulated second than recoverability
at any multiprogramming level, and its peak sits clearly below.
"""


def test_figure_4_2pl_baseline(run_figure):
    result = run_figure("figure-4-2pl")
    locking = dict(result.series("2pl", "throughput"))
    recoverability = dict(result.series("recoverability", "throughput"))
    # Recoverability's peak beats the locking baseline's peak outright ...
    _, locking_peak = result.peak("2pl")
    _, recoverability_peak = result.peak("recoverability")
    assert locking_peak > 0 and recoverability_peak > 0
    assert recoverability_peak >= locking_peak * 1.05
    # ... and 2PL never meaningfully exceeds recoverability at any level.
    for level, locking_throughput in locking.items():
        assert locking_throughput <= recoverability[level] * 1.05
