"""Figure 13: cycle-check ratio and abort length with 5 resource units, read/write model.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""



def test_figure_13(run_figure):
    result = run_figure("figure-13")
    recoverability = dict(result.series("recoverability", "cycle_check_ratio"))
    assert all(value >= 0 for value in recoverability.values())
    assert max(recoverability.values()) > 0
