"""Figure 15: throughput, ADT model, infinite resources, Pc=2, Pr in {0,4,8}.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""

from .conftest import assert_shape_pr_ordering


def test_figure_15(run_figure):
    result = run_figure("figure-15")
    # The paper's "about double" holds at paper scale; at the bench scale's
    # 400 completions the Pr=8 margin is still warming up (the same stream
    # measures +22% at 400 completions and +41% at 800+), so the guard only
    # pins the direction and a conservative floor.
    assert_shape_pr_ordering(result, min_gain=0.10)
