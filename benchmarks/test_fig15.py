"""Figure 15: throughput, ADT model, infinite resources, Pc=2, Pr in {0,4,8}.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""

from .conftest import assert_shape_pr_ordering, assert_shape_recoverability_wins


def test_figure_15(run_figure):
    result = run_figure("figure-15")
    assert_shape_pr_ordering(result, min_gain=0.25)
