"""Shared infrastructure for the benchmark harness.

Every figure of the paper's evaluation has one benchmark module that

1. runs the corresponding experiment (``repro.analysis.figures``) once,
2. prints the paper-style series and summary to stdout and saves them under
   ``benchmarks/results/``, and
3. asserts the qualitative *shape* the paper reports (who wins, roughly by how
   much, where thrashing sets in) — absolute numbers are not compared because
   the substrate is a simulator, not the authors' testbed.

The amount of simulated work per point is controlled by the environment
variable ``REPRO_BENCH_SCALE``:

* ``smoke`` — a few seconds for the whole suite (used in CI sanity runs);
* ``bench`` — the default; the full mpl sweep at a reduced run length;
* ``paper`` — the paper's own scale (50 000 completions per point, 10 runs);
  expect hours.

``REPRO_BENCH_WORKERS`` (default 1) fans each experiment's points out over
that many worker processes via the parallel runner; every worker count
produces byte-identical results, so the shape assertions and the saved
reports never depend on it.

The benchmark modules themselves are thin wrappers: each one asks the
central experiment registry (``repro.analysis.registry``) for its spec and
asserts the qualitative shape.
"""

import os
import pathlib
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis import (  # noqa: E402  (path bootstrap above)
    BENCH_SCALE,
    EXPERIMENT_REGISTRY,
    PAPER_SCALE,
    SMOKE_SCALE,
    render_result,
    run_experiment,
)

_SCALES = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "paper": PAPER_SCALE}

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _selected_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "bench").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE={name!r} is not one of {sorted(_SCALES)}"
        )
    return _SCALES[name]


def _selected_workers():
    text = os.environ.get("REPRO_BENCH_WORKERS", "1")
    try:
        workers = int(text)
    except ValueError:
        raise ValueError(f"REPRO_BENCH_WORKERS={text!r} is not an integer")
    if workers < 1:
        raise ValueError(f"REPRO_BENCH_WORKERS={text!r} must be >= 1")
    return workers


@pytest.fixture(scope="session")
def scale():
    """The reproduction scale selected for this benchmark session."""
    return _selected_scale()


def result_filename(name: str) -> str:
    """Canonical ``benchmarks/results`` filename for a saved report.

    This is the one place result filenames are formed.  Registry experiments
    save under their registry id verbatim (``figure-4.txt``,
    ``ablation-pseudo-commit-slot.txt``); the tables benchmark saves one
    report per data type as ``tables_<type>.txt``, which
    ``tools/bench_summary.py`` maps back to the registry's single ``tables``
    entry when it checks the directory for orphans.
    """
    return f"{name}.txt"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Write one rendered report under its canonical results filename."""

    def _save(name, text):
        (results_dir / result_filename(name)).write_text(text + "\n")

    return _save


@pytest.fixture(scope="session")
def workers():
    """Worker-process count selected for this benchmark session."""
    return _selected_workers()


@pytest.fixture
def run_figure(benchmark, scale, workers, save_report):
    """Run one registry experiment under pytest-benchmark and report it.

    Returns the :class:`~repro.analysis.experiments.ExperimentResult` so the
    calling module can assert the expected qualitative shape.  Despite the
    name it runs any registry experiment with a spec builder (figures and
    ablations alike).
    """

    def _run(experiment_id):
        spec = EXPERIMENT_REGISTRY.spec(experiment_id, scale)
        result = benchmark.pedantic(
            lambda: run_experiment(spec, workers=workers),
            rounds=1, iterations=1, warmup_rounds=0,
        )
        report = render_result(result)
        print()
        print(report)
        save_report(experiment_id, report)
        return result

    return _run


def assert_shape_recoverability_wins(result, min_gain=0.05):
    """Common read/write-model shape: recoverability's peak throughput beats
    the commutativity baseline's peak by at least ``min_gain``."""
    _, commutativity_peak = result.peak("commutativity")
    _, recoverability_peak = result.peak("recoverability")
    assert recoverability_peak > 0 and commutativity_peak > 0
    assert recoverability_peak >= commutativity_peak * (1.0 + min_gain)


def assert_shape_pr_ordering(result, min_gain=0.05):
    """Common ADT-model shape: more recoverable entries => higher peak."""
    peaks = {label: result.peak(label)[1] for label in result.variant_labels()}
    labels = sorted(peaks, key=lambda label: int(label.split("Pr=")[1]))
    lowest, highest = peaks[labels[0]], peaks[labels[-1]]
    assert highest >= lowest * (1.0 + min_gain)
