"""Figure 17: throughput, ADT model, 5 resource units, Pc=4.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""

from .conftest import assert_shape_pr_ordering


def test_figure_17(run_figure):
    result = run_figure("figure-17")
    assert_shape_pr_ordering(result, min_gain=0.05)
