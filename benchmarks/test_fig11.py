"""Figure 11: throughput with 1 resource unit, read/write model.

Regenerates the figure's series at the selected reproduction scale and checks
the qualitative shape the paper reports.  See ``benchmarks/conftest.py`` for
the scale knob and ``EXPERIMENTS.md`` for paper-vs-measured notes.
"""



def test_figure_11(run_figure):
    result = run_figure("figure-11")
    _, commutativity_peak = result.peak("commutativity")
    _, recoverability_peak = result.peak("recoverability")
    # Transactions queue for hardware, not data: the two policies are close.
    assert recoverability_peak >= commutativity_peak * 0.90
