"""Tables I-VIII: regenerate every compatibility table from the ADT semantics.

For each of the paper's four example data types the benchmark derives the
commutativity and recoverability tables from the executable specification,
prints them next to the declared (published) tables, and checks that the
declared tables are sound — they never admit a pair the semantics rejects —
and, for stack/set/table, identical to the derivation.
"""


from repro.analysis import compare_tables, parameter_table


def _report(benchmark, save_report, type_name):
    report = benchmark.pedantic(
        lambda: compare_tables(type_name), rounds=1, iterations=1, warmup_rounds=0
    )
    text = report.render()
    print()
    print(text)
    save_report(f"tables_{type_name}", text)
    return report


def test_tables_1_and_2_page(benchmark, save_report):
    """Tables I and II: the read/write page object."""
    report = _report(benchmark, save_report, "page")
    assert report.all_sound
    # The paper's only coarse entry: two writes of the same value do commute.
    assert [(c.requested, c.executed) for c in report.refinements] == [("write", "write")]


def test_tables_3_and_4_stack(benchmark, save_report):
    """Tables III and IV: the stack object."""
    report = _report(benchmark, save_report, "stack")
    assert report.all_sound
    assert report.exact_matches == len(report.comparisons)


def test_tables_5_and_6_set(benchmark, save_report):
    """Tables V and VI: the set object."""
    report = _report(benchmark, save_report, "set")
    assert report.all_sound
    assert report.exact_matches == len(report.comparisons)


def test_tables_7_and_8_table(benchmark, save_report):
    """Tables VII and VIII: the keyed table object."""
    report = _report(benchmark, save_report, "table")
    assert report.all_sound
    assert report.exact_matches == len(report.comparisons)


def test_tables_9_and_10_parameters(benchmark, save_report):
    """Tables IX and X: the simulation parameters and their nominal values."""
    text = benchmark.pedantic(parameter_table, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(text)
    save_report("tables_parameters", text)
    assert "database_size" in text and "1000" in text
    assert "num_terminals" in text and "200" in text
    assert "write_probability" in text and "0.3" in text
