"""Quickstart: recoverability in ten lines.

Two transactions push onto the same stack.  Two pushes do not commute, so a
commutativity-based scheduler would make the second transaction wait for the
first to finish.  They *are* recoverable, so the recoverability scheduler runs
both at once and merely pins the commit order — and if the first transaction
aborts, the second still commits (no cascading abort).

Run with (after ``pip install -e .`` from the repository root)::

    python examples/quickstart.py
"""

from repro import ConflictPolicy, Scheduler, TransactionStatus
from repro.adts import StackType


def main() -> None:
    print("=== commutativity-only baseline ===")
    baseline = Scheduler(policy=ConflictPolicy.COMMUTATIVITY)
    baseline.register_object("S", StackType())
    t1, t2 = baseline.begin(), baseline.begin()
    print("T1 push(4):", baseline.perform(t1.tid, "S", "push", 4).status.value)
    print("T2 push(2):", baseline.perform(t2.tid, "S", "push", 2).status.value, "<- waits for T1")
    baseline.commit(t1.tid)
    baseline.commit(t2.tid)
    print("final stack:", baseline.committed_state("S"))

    print()
    print("=== recoverability scheduler ===")
    scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
    scheduler.register_object("S", StackType())
    t1, t2 = scheduler.begin(), scheduler.begin()
    print("T1 push(4):", scheduler.perform(t1.tid, "S", "push", 4).status.value)
    print("T2 push(2):", scheduler.perform(t2.tid, "S", "push", 2).status.value, "<- runs at once")
    print("T2 commit dependencies:", scheduler.commit_dependencies(t2.tid))

    # T2 finishes first: it pseudo-commits (complete for the user) and becomes
    # durable as soon as T1 terminates.
    status = scheduler.commit(t2.tid)
    print("T2 commit() ->", status.value)
    assert status is TransactionStatus.PSEUDO_COMMITTED

    status = scheduler.commit(t1.tid)
    print("T1 commit() ->", status.value)
    print("T2 is now:", scheduler.transaction(t2.tid).status.value)
    print("final stack:", scheduler.committed_state("S"))

    print()
    print("=== no cascading aborts ===")
    scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
    scheduler.register_object("S", StackType())
    t1, t2 = scheduler.begin(), scheduler.begin()
    scheduler.perform(t1.tid, "S", "push", 4)
    scheduler.perform(t2.tid, "S", "push", 2)
    scheduler.commit(t2.tid)          # pseudo-committed behind T1
    scheduler.abort(t1.tid)           # T1 gives up...
    print("after T1 aborts, T2 is:", scheduler.transaction(t2.tid).status.value)
    print("final stack:", scheduler.committed_state("S"), "(T1's push was undone, T2's survives)")


if __name__ == "__main__":
    main()
