"""Make the examples runnable from a fresh checkout (no install required).

The checkout's ``src/`` goes first on ``sys.path`` so the examples always
exercise the code they ship with, even when some other ``repro`` happens to
be installed.  For imports outside the checkout, install the package with
``pip install -e .`` (or ``python setup.py develop`` on machines without the
``wheel`` package).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
