"""Banking scenario: hot accounts, deposits, and an audit table.

The motivating workload for semantic concurrency control: short writer
transactions deposit into a couple of hot accounts and append to an audit
trail while a long-running auditor sizes the trail and reads balances.

* Account balances are ``counter`` objects: deposits and withdrawals are blind
  updates that commute with each other but not with balance reads.
* The audit trail is a ``table`` object keyed by a transfer id: ``insert`` is
  recoverable relative to ``size``, so recording an audit entry never waits
  behind an auditor that is still running — the paper's Table VIII asymmetry.

The same interleaving is run under the commutativity baseline and under
recoverability.  Under commutativity the writers block behind the auditor and
the auditor's own balance reads then close a deadlock; under recoverability
everything runs immediately and only the commit order is constrained.

Run with (after ``pip install -e .`` from the repository root)::

    python examples/banking_accounts.py
"""

from repro import ConflictPolicy, Scheduler, TransactionStatus
from repro.adts import CounterType, TableType


def describe(handle) -> str:
    if handle.executed:
        return f"executed (value={handle.value!r})"
    if handle.blocked:
        return "blocked, waiting"
    return f"aborted ({handle.abort_reason.value})"


def safe_commit(scheduler: Scheduler, transaction, label: str) -> None:
    status = scheduler.transaction(transaction.tid).status
    if status is TransactionStatus.ACTIVE:
        print(f"{label:9s} commit -> {scheduler.commit(transaction.tid).value}")
    else:
        print(f"{label:9s} cannot commit yet (currently {status.value})")


def run(policy: ConflictPolicy) -> None:
    print(f"--- policy: {policy.value} ---")
    scheduler = Scheduler(policy=policy)
    scheduler.register_object("account:alice", CounterType())
    scheduler.register_object("account:bob", CounterType())
    scheduler.register_object("audit", TableType())

    auditor = scheduler.begin(label="auditor")
    payroll = scheduler.begin(label="payroll")
    transfer = scheduler.begin(label="transfer")

    # The auditor starts first: it sizes the audit trail.
    handle = scheduler.perform(auditor.tid, "audit", "size")
    print(f"auditor   size(audit)             -> {describe(handle)}")

    # Payroll deposits into both accounts and records an audit entry.
    steps = [
        (payroll, "payroll", "account:alice", "increment", (1000,)),
        (payroll, "payroll", "account:bob", "increment", (1200,)),
        (payroll, "payroll", "audit", "insert", ("p1", "payroll run")),
        (transfer, "transfer", "account:alice", "decrement", (200,)),
        (transfer, "transfer", "account:bob", "increment", (200,)),
        (transfer, "transfer", "audit", "insert", ("t7", "alice->bob")),
    ]
    for transaction, label, object_name, op, args in steps:
        if scheduler.transaction(transaction.tid).status is not TransactionStatus.ACTIVE:
            print(f"{label:9s} {op}{args} on {object_name} -> skipped "
                  f"({scheduler.transaction(transaction.tid).status.value})")
            continue
        handle = scheduler.perform(transaction.tid, object_name, op, *args)
        print(f"{label:9s} {op}{args} on {object_name} -> {describe(handle)}")

    # The writers try to finish while the auditor is still active.
    safe_commit(scheduler, payroll, "payroll")
    safe_commit(scheduler, transfer, "transfer")

    # The auditor now reads the balances it cares about and finishes.
    for account in ("account:alice", "account:bob"):
        if scheduler.transaction(auditor.tid).status is not TransactionStatus.ACTIVE:
            break
        handle = scheduler.perform(auditor.tid, account, "read")
        print(f"auditor   read({account})  -> {describe(handle)}")
    safe_commit(scheduler, auditor, "auditor")

    # Anything that was blocked behind the auditor can complete now.
    for transaction, label in ((payroll, "payroll"), (transfer, "transfer")):
        if scheduler.transaction(transaction.tid).status is TransactionStatus.ACTIVE:
            safe_commit(scheduler, transaction, label)

    print("balances: alice =", scheduler.committed_state("account:alice"),
          " bob =", scheduler.committed_state("account:bob"))
    print("audit entries:", sorted(scheduler.committed_state("audit")))
    print("blocks:", scheduler.stats.blocks,
          " deadlock aborts:", scheduler.stats.deadlock_aborts,
          " pseudo-commits:", scheduler.stats.pseudo_commits,
          " commit-dependency edges:", scheduler.stats.commit_dependency_edges)
    print()


def main() -> None:
    run(ConflictPolicy.COMMUTATIVITY)
    run(ConflictPolicy.RECOVERABILITY)
    print("Under recoverability the audit-trail inserts and the deposits never wait")
    print("for the long-running auditor; they only promise to commit after it if it")
    print("commits — and they survive even if the auditor aborts.")


if __name__ == "__main__":
    main()
