"""Run a scaled-down version of the paper's simulation study from the API.

This example drives the same experiment harness the benchmark suite uses, at a
reduced scale so it finishes in well under a minute, and prints the paper-style
series for:

* Figure 4  — read/write model, infinite resources (commutativity vs
  recoverability throughput), and
* Figure 14 — abstract-data-type model, infinite resources, Pc=4 and
  Pr in {0, 4, 8}.

Pass ``--scale smoke|bench|paper`` to change the amount of simulated work, or
``--figure figure-10`` (any id from ``repro.analysis.all_figure_ids()``) to
reproduce a different figure.

Run with (after ``pip install -e .`` from the repository root)::

    python examples/simulation_study.py
"""

import argparse

from repro.analysis import (
    BENCH_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    all_figure_ids,
    figure_spec,
    render_result,
    run_experiment,
)

_SCALES = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "paper": PAPER_SCALE}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="smoke",
        help="how much simulated work to do per experiment point",
    )
    parser.add_argument(
        "--figure", action="append", choices=all_figure_ids(), default=None,
        help="figure id(s) to reproduce (default: figure-4 and figure-14)",
    )
    arguments = parser.parse_args()
    scale = _SCALES[arguments.scale]
    figure_ids = arguments.figure or ["figure-4", "figure-14"]

    for figure_id in figure_ids:
        spec = figure_spec(figure_id, scale)
        print(f"running {figure_id} at scale {scale.name!r} "
              f"({scale.total_completions} completions/point, {scale.runs} run(s)/point)...")
        result = run_experiment(spec, progress=lambda line: print("  " + line))
        print()
        print(render_result(result))
        print()


if __name__ == "__main__":
    main()
