"""Order-processing scenario: a work queue, an inventory set, and a catalog.

Several storefront transactions enqueue orders onto a shared FIFO work queue,
reserve items in an inventory set, and update a catalog table, while a
fulfilment transaction drains the queue.  The example shows three things:

* enqueues by different customers are recoverable relative to each other (like
  the paper's pushes), so order placement never serialises on the hot queue;
* the scheduler fixes the durable commit order to the enqueue order, so the
  queue contents are exactly what a serial execution in commit order produces;
* a customer abandoning a purchase (abort) does not drag the other customers
  down with it, even though their orders sit behind the abandoned one in the
  dependency chain.

Run with (after ``pip install -e .`` from the repository root)::

    python examples/order_processing.py
"""

from repro import ConflictPolicy, Scheduler
from repro.adts import QueueType, SetType, TableType


def place_order(scheduler: Scheduler, customer: str, item: str, quantity: int):
    """One storefront transaction: reserve the item, enqueue the order, and
    bump the catalog's per-item order count."""
    transaction = scheduler.begin(label=customer)
    scheduler.perform(transaction.tid, "inventory", "insert", f"reservation:{customer}:{item}")
    scheduler.perform(transaction.tid, "orders", "enqueue", (customer, item, quantity))
    scheduler.perform(transaction.tid, "catalog", "insert", f"order:{customer}", item)
    return transaction


def main() -> None:
    scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
    scheduler.register_object("orders", QueueType())
    scheduler.register_object("inventory", SetType())
    scheduler.register_object("catalog", TableType())

    print("three customers place orders concurrently:")
    alice = place_order(scheduler, "alice", "book", 1)
    bob = place_order(scheduler, "bob", "lamp", 2)
    carol = place_order(scheduler, "carol", "desk", 1)
    for transaction in (alice, bob, carol):
        dependencies = scheduler.commit_dependencies(transaction.tid)
        print(f"  {transaction.label}: executed {transaction.operation_count} operations, "
              f"commit dependencies on {sorted(dependencies) or 'none'}")
    print("  blocks so far:", scheduler.stats.blocks, "(no order waited for another)")

    print()
    print("carol completes first, then bob; both pseudo-commit behind alice:")
    print("  carol commit ->", scheduler.commit(carol.tid).value)
    print("  bob   commit ->", scheduler.commit(bob.tid).value)

    print()
    print("alice abandons her purchase (abort) — nobody else is dragged down:")
    scheduler.abort(alice.tid)
    for transaction in (bob, carol):
        print(f"  {transaction.label} is now {scheduler.transaction(transaction.tid).status.value}")
    print("  queue contents:", scheduler.committed_state("orders"))
    print("  inventory:", sorted(scheduler.committed_state("inventory")))

    print()
    print("a fulfilment transaction drains the queue:")
    fulfil = scheduler.begin(label="fulfilment")
    while True:
        handle = scheduler.perform(fulfil.tid, "orders", "dequeue")
        if not handle.executed or handle.value is None:
            break
        customer, item, quantity = handle.value
        scheduler.perform(fulfil.tid, "catalog", "modify", f"order:{customer}", f"shipped {quantity}x {item}")
        print(f"  shipped {quantity}x {item} to {customer}")
    print("  fulfilment commit ->", scheduler.commit(fulfil.tid).value)
    print("  final catalog:", dict(sorted(scheduler.committed_state("catalog").items())))
    print("  final queue:", scheduler.committed_state("orders"))


if __name__ == "__main__":
    main()
