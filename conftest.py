"""Pytest bootstrap: make ``repro`` importable straight from the source tree.

The package is normally installed with ``pip install -e .``; this fallback
lets ``pytest tests/`` and ``pytest benchmarks/`` work from a fresh checkout
(or on machines where an editable install is unavailable) by putting ``src/``
on ``sys.path`` ahead of any installed copy.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
