"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can also be installed with the legacy code path
(``pip install -e . --no-use-pep517 --no-build-isolation``) on machines
without network access or the ``wheel`` package.
"""

from setuptools import setup

setup()
