"""Union-graph cycle detection over the per-site dependency graphs.

Cross-site cycles — deadlocks or commit-dependency cycles spanning sites,
which no single site's graph can see — are the one global hazard of the
multi-site layer.  :class:`UnionCycleDetector` owns every way the router
looks for them:

* :meth:`closes_cycle` — the per-submit check: did the fan-out just routed
  close a cycle through the submitting transaction?
* :meth:`sweep` — the periodic, mutation-gated sweep that catches cycles
  closed *outside* a submit (grant-time commit-dependency edges added
  inside termination cascades);
* :meth:`find_cycle_through` — the commit-time certification used by the
  two-phase commit protocol, which needs the cycle's *members* so it can
  apply the sweep's newest-``ACTIVE`` victim rule.

All three walk the same union graph: the per-site dependency graphs joined
through the router's local-tid-to-global-tid maps (:meth:`global_successors`).
Per-site graphs are individually acyclic — each site checks before adding
edges — so any union cycle necessarily spans sites.

The detector also owns the sweep's *mutation gate*: a sweep whose union
mutation total is unchanged has nothing new to inspect and costs one
integer sum.  The total must be monotonic across site crashes — a failed
scheduler's count leaves the live sum, and its recovered successor counts
from zero — so the counts of every discarded scheduler are retired into
:attr:`_retired_mutations` at failure time (see :meth:`retire_graph`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..core.requests import AbortReason
from ..core.transaction import TransactionStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .router import TransactionRouter

__all__ = ["UnionCycleDetector"]


class UnionCycleDetector:
    """All union-graph cycle checks for one router."""

    def __init__(self, router: "TransactionRouter"):
        self.router = router
        #: Union-graph mutation total at the end of the last periodic sweep;
        #: a sweep whose total is unchanged has nothing new to inspect.
        self._swept_mutations = 0
        #: Mutations accumulated by schedulers that crashes discarded.  The
        #: sweep gate's total must be monotonic: without this, a site that
        #: failed (its count leaves the sum) and recovered (a fresh graph
        #: counts from zero) could return the sum to an already-seen value
        #: while a cycle closed in between, silencing the sweep for good.
        self._retired_mutations = 0

    def reset(self) -> None:
        """Rewind the mutation gate for a reused router (fresh graphs count
        from zero again)."""
        self._swept_mutations = 0
        self._retired_mutations = 0

    # ------------------------------------------------------------------
    # The union graph
    # ------------------------------------------------------------------
    def global_successors(self, gtid: int) -> Set[int]:
        """Union of one transaction's per-site dependency-graph successors."""
        router = self.router
        transaction = router.transactions.get(gtid)
        if transaction is None:
            return set()
        successors: Set[int] = set()
        for site_id, branch in transaction.branches.items():
            site = router.sites[site_id]
            if not site.status.is_up or branch.generation != site.generation:
                continue
            local_map = router._local_map[site_id]
            for local_successor in sorted(site.scheduler.graph.successors(branch.local_tid)):
                successor_gtid = local_map.get(local_successor)
                if successor_gtid is not None and successor_gtid != gtid:
                    successors.add(successor_gtid)
        return successors

    def closes_cycle(self, gtid: int) -> bool:
        """True when the union graph has a cycle through ``gtid``.

        Only cycles through the submitting transaction can have been closed
        by the operation just routed, so a DFS from it suffices.
        """
        stack = sorted(self.global_successors(gtid))
        seen = set(stack)
        while stack:
            node = stack.pop()
            if node == gtid:
                return True
            for successor in sorted(self.global_successors(node)):
                if successor == gtid:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return False

    def find_cycle_through(self, target: int) -> Optional[List[int]]:
        """Members of one union-graph cycle through ``target``, or ``None``.

        Plain reachability DFS from the target's successors back to the
        target, parents recorded for path reconstruction — the commit-time
        certification needs the members to pick its victim.
        """
        parent: Dict[int, Optional[int]] = {}
        stack: List[int] = []
        for successor in sorted(self.global_successors(target)):
            parent[successor] = None
            stack.append(successor)
        while stack:
            node = stack.pop()
            for successor in sorted(self.global_successors(node)):
                if successor == target:
                    members = [target]
                    cursor: Optional[int] = node
                    while cursor is not None:
                        members.append(cursor)
                        cursor = parent[cursor]
                    return members
                if successor not in parent:
                    parent[successor] = node
                    stack.append(successor)
        return None

    # ------------------------------------------------------------------
    # The mutation gate
    # ------------------------------------------------------------------
    def retire_graph(self, mutations: int) -> None:
        """Fold a crashed scheduler's final mutation count into the gate."""
        self._retired_mutations += mutations

    def union_mutations(self) -> int:
        """Monotonic mutation total of the union graph, crashes included.

        Live graphs' counters plus the final counts of every scheduler a
        crash discarded — so failing and recovering a site can never return
        the total to a previously-seen value and mask work from the sweep.
        """
        return self._retired_mutations + sum(
            site.scheduler.graph.mutations
            for site in self.router.sites
            if site.status.is_up
        )

    # ------------------------------------------------------------------
    # The periodic sweep
    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Detect and break union-graph cycles closed outside a submit.

        The per-submit check only covers cycles closed by the operation
        being routed; a queued request *granted* during another
        transaction's termination cascade can add commit-dependency edges no
        submit ever carried, closing a cross-site cycle with nobody
        submitting — the participants then wedge their mpl slots forever.
        The simulator runs this sweep periodically from an engine event (a
        context where aborting is safe: no scheduler callback is on the
        stack).  Gated on the dependency graphs' mutation counters, a quiet
        period costs one integer sum.

        A late-closed cycle hurts either way: a wait cycle wedges its
        members' mpl slots, and a commit-dependency cycle that reaches the
        commit path drains branch by branch — each site's cascade respects
        only its *local* edges, so the members durably commit in a circular
        global order, violating the dependencies the protocol exists to
        respect.  (Under the two-phase commit protocol that second race is
        also closed at the commit itself: certification re-checks the union
        graph in the prepare step.)  The sweep catches the cycle while its
        members are still live and aborts the youngest ``ACTIVE`` one with
        ``AbortReason.DEADLOCK`` — the same newest-first victim rule as the
        per-submit check.  Returns the number of victims aborted.
        """
        router = self.router
        if router.site_count <= 1:
            return 0
        if self.union_mutations() == self._swept_mutations:
            return 0
        router.router_stats.cycle_sweeps += 1
        aborted = 0
        # One victim per detection pass: aborting a victim can break several
        # overlapping cycles at once, so victims are never batch-collected
        # from a stale graph — each abort is followed by a fresh look.
        while True:
            victim = self._find_sweep_victim()
            if victim is None:
                break
            router.router_stats.cross_site_deadlock_aborts += 1
            router._global_abort(router.transactions[victim], AbortReason.DEADLOCK)
            aborted += 1
        # Aborting mutates the graphs; snapshot afterwards so the next quiet
        # sweep is free again.
        self._swept_mutations = self.union_mutations()
        return aborted

    def _find_sweep_victim(self) -> Optional[int]:
        """The victim of the first abortable union-graph cycle, or ``None``.

        DFS over the union graph; in the first cycle found that has an
        ``ACTIVE`` member, the youngest such member is the victim.  Cycles
        with no abortable member are skipped (see :meth:`sweep`) and the
        search continues.
        """
        transactions = self.router.transactions
        color: Dict[int, int] = {}  # 1 = on the DFS path, 2 = finished
        path: List[int] = []
        roots = sorted(
            gtid
            for gtid, transaction in transactions.items()
            if transaction.status
            in (TransactionStatus.ACTIVE, TransactionStatus.PSEUDO_COMMITTED)
        )
        for root in roots:
            if root in color:
                continue
            color[root] = 1
            path.append(root)
            stack = [(root, iter(sorted(self.global_successors(root))))]
            while stack:
                node, successors = stack[-1]
                descended = False
                for successor in successors:
                    state = color.get(successor)
                    if state == 1:
                        cycle = path[path.index(successor):]
                        victim = max(
                            (
                                gtid
                                for gtid in cycle
                                if transactions[gtid].status
                                is TransactionStatus.ACTIVE
                            ),
                            default=None,
                        )
                        if victim is not None:
                            return victim
                    elif state is None:
                        color[successor] = 1
                        path.append(successor)
                        stack.append(
                            (successor, iter(sorted(self.global_successors(successor))))
                        )
                        descended = True
                        break
                if not descended:
                    stack.pop()
                    path.pop()
                    color[node] = 2
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<UnionCycleDetector swept={self._swept_mutations} "
            f"retired={self._retired_mutations}>"
        )
