"""A site: one scheduler, its objects, and an up/down/recovering lifecycle.

A :class:`Site` wraps what used to be the whole system — a
:class:`~repro.core.scheduler.Scheduler` with its object managers and a
concurrency-control backend — and adds the lifecycle the available-copies
replication protocol needs:

* **UP** — serving reads and writes normally;
* **DOWN** — crashed: the scheduler (lock tables, dependency graph, blocked
  queues, uncommitted operation logs) is lost wholesale, exactly as a real
  site loses its volatile state;
* **recovering** — back up, but every *replicated* object is unreadable until
  a committed write refreshes its copy (the available-copies rule); objects
  with a single copy have nothing to catch up from and are readable at once.

Recovery is modelled as an instantaneous transition back to UP with the
unreadable set populated; "recovering" is therefore a property of individual
copies (``Site.readable``) rather than a third scheduler state.  The router
clears a copy's unreadable flag when a transaction that wrote the object at
this site durably commits.

Statistics survive crashes: :attr:`Site.stats` is the sum of the live
scheduler's counters and the counters folded in from every scheduler a crash
discarded, so simulation metrics stay monotonic across failures.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Optional, Set

from ..core.backends import ConcurrencyControlBackend, make_backend
from ..core.errors import ReproError
from ..core.policy import ConflictPolicy
from ..core.scheduler import Scheduler, SchedulerStatistics
from ..core.specification import TypeSpecification
from ..core.compatibility import CompatibilitySpec

if TYPE_CHECKING:
    from ..sim.resources import ResourceDomain

__all__ = ["SiteStatus", "Site"]


class SiteStatus(enum.Enum):
    """Lifecycle state of a site."""

    UP = "up"
    DOWN = "down"

    @property
    def is_up(self) -> bool:
        return self is SiteStatus.UP


def _fold_stats(into: SchedulerStatistics, stats: SchedulerStatistics) -> None:
    """Add every counter of ``stats`` onto ``into`` (both are int fields)."""
    for field in dataclasses.fields(SchedulerStatistics):
        setattr(into, field.name, getattr(into, field.name) + getattr(stats, field.name))


@dataclasses.dataclass(frozen=True)
class _Registration:
    """Everything needed to re-register an object on a fresh scheduler."""

    spec: TypeSpecification
    compatibility: Optional[CompatibilitySpec]
    initial_state: Any
    materialize_state: bool
    replicated: bool


class Site:
    """One site of the multi-site system: a scheduler plus a lifecycle."""

    def __init__(
        self,
        site_id: int,
        policy: ConflictPolicy = ConflictPolicy.RECOVERABILITY,
        fair: bool = True,
        record_history: bool = False,
        retain_terminated: bool = False,
        backend_factory: Optional[Callable[[], ConcurrencyControlBackend]] = None,
        pool_requests: bool = False,
    ):
        self.site_id = site_id
        self.policy = policy
        self.fair = fair
        self.record_history = record_history
        self.retain_terminated = retain_terminated
        self.backend_factory = backend_factory
        self.pool_requests = pool_requests
        self.status = SiteStatus.UP
        #: This site's hardware under per-site resource placement (a
        #: :class:`~repro.sim.resources.ResourceDomain`), attached by the
        #: router when a per-site charger is wired up; ``None`` while the
        #: system charges one shared global pool.  Hardware is physical, so
        #: it survives :meth:`fail`/:meth:`recover` — a crash loses volatile
        #: scheduler state, not the machines.
        self.domain: Optional["ResourceDomain"] = None
        #: Incremented on every crash; a (local tid, generation) pair uniquely
        #: identifies a transaction branch across scheduler replacements.
        self.generation = 0
        #: Replicated objects whose local copy awaits a committed write.
        self.unreadable: Set[str] = set()
        self.failures = 0
        self.recoveries = 0
        self._registrations: Dict[str, _Registration] = {}
        #: Committed object states snapshotted at crash time (durable storage).
        self._durable_states: Dict[str, Any] = {}
        self._retired_stats = SchedulerStatistics()
        self.scheduler = self._make_scheduler()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_backend(self) -> ConcurrencyControlBackend:
        if self.backend_factory is not None:
            return self.backend_factory()
        return make_backend(self.policy)

    def _make_scheduler(self) -> Scheduler:
        return Scheduler(
            policy=self.policy,
            fair=self.fair,
            record_history=self.record_history,
            retain_terminated=self.retain_terminated,
            backend=self._make_backend(),
            pool_requests=self.pool_requests,
        )

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------
    def register_object(
        self,
        name: str,
        spec: TypeSpecification,
        compatibility: Optional[CompatibilitySpec] = None,
        initial_state: Any = None,
        materialize_state: bool = True,
        replicated: bool = False,
    ) -> None:
        """Place a copy of an object at this site.

        The registration is remembered so recovery can rebuild the scheduler
        with the same object set.
        """
        self._registrations[name] = _Registration(
            spec=spec,
            compatibility=compatibility,
            initial_state=initial_state,
            materialize_state=materialize_state,
            replicated=replicated,
        )
        self.scheduler.register_object(
            name,
            spec,
            compatibility=compatibility,
            initial_state=initial_state,
            materialize_state=materialize_state,
        )

    def holds(self, name: str) -> bool:
        """True when this site has a copy of the object (readable or not)."""
        return name in self._registrations

    def readable(self, name: str) -> bool:
        """True when a read of ``name`` can be served at this site now."""
        return self.status.is_up and name not in self.unreadable and name in self._registrations

    def writable(self, name: str) -> bool:
        """True when a write of ``name`` can be applied at this site now.

        Writes are accepted on unreadable (recovering) copies — a committed
        write is exactly what makes a copy readable again.
        """
        return self.status.is_up and name in self._registrations

    def mark_readable(self, name: str) -> None:
        """A committed write refreshed the copy of ``name``."""
        self.unreadable.discard(name)

    def has_uncommitted(self, name: str) -> bool:
        """True while the copy of ``name`` holds uncommitted operations."""
        return self.status.is_up and bool(self.scheduler.object(name).uncommitted)

    # ------------------------------------------------------------------
    # Committed-state snapshots (catch-up recovery)
    # ------------------------------------------------------------------
    def committed_snapshot(self, names: Optional[Iterable[str]] = None) -> Dict[str, Any]:
        """Deep-copied committed states of this site's copies.

        Only *committed* state is snapshotted — uncommitted operations never
        leave the site — and only for materialized objects (the ADT workload
        runs with ``materialize_state=False``: its objects have no
        executable state to copy).  This is what a recovering replica
        catches up from under the quorum and primary-copy protocols.
        """
        if not self.status.is_up:
            raise ReproError(f"site {self.site_id} is down; nothing to snapshot")
        selected = self._registrations.keys() if names is None else names
        snapshot: Dict[str, Any] = {}
        for name in selected:
            registration = self._registrations[name]
            if registration.materialize_state:
                snapshot[name] = copy.deepcopy(
                    self.scheduler.object(name).committed_state
                )
        return snapshot

    def install_committed(self, name: str, state: Any) -> None:
        """Catch-up: overwrite one copy's committed state, making it readable.

        Only safe while the copy has no uncommitted operations — i.e. right
        after recovery, before any transaction touches the fresh scheduler —
        so installing onto a copy with in-flight work is rejected.
        """
        if not self.status.is_up:
            raise ReproError(f"site {self.site_id} is down; cannot install state")
        manager = self.scheduler.object(name)
        if manager.uncommitted:
            raise ReproError(
                f"site {self.site_id} has uncommitted operations on {name!r}; "
                "catch-up must happen before new work arrives"
            )
        if self._registrations[name].materialize_state:
            manager.committed_state = state
            manager.current_state = state
        self.mark_readable(name)

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    def attach_domain(self, domain: "ResourceDomain") -> None:
        """Give this site its own hardware (per-site resource placement)."""
        self.domain = domain

    @property
    def load(self) -> int:
        """Outstanding work at this site's hardware (0 without a domain)."""
        return 0 if self.domain is None else self.domain.load

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash the site: all *volatile* scheduler state is lost.

        Committed object states are durable (they survived to "disk"): they
        are snapshotted here and become the initial states of the recovered
        scheduler.  Uncommitted operations, lock tables, blocked queues and
        the dependency graph are volatile and vanish with the scheduler.
        """
        if not self.status.is_up:
            raise ReproError(f"site {self.site_id} is already down")
        _fold_stats(self._retired_stats, self.scheduler.stats)
        self._durable_states = {
            name: copy.deepcopy(self.scheduler.object(name).committed_state)
            for name, registration in self._registrations.items()
            if registration.materialize_state
        }
        self.scheduler = None  # type: ignore[assignment]
        self.status = SiteStatus.DOWN
        self.generation += 1
        self.failures += 1
        self.unreadable.clear()

    def reset(self) -> Scheduler:
        """Restore the site to its just-registered initial state.

        A site that never crashed resets its scheduler in place (managers
        rewind to their registered initial states); one that crashed — or is
        down right now — rebuilds the scheduler from the remembered
        registrations with the *original* initial states, because the
        current managers were registered from durable crash snapshots.
        Returns the (possibly new) scheduler so the caller can re-attach
        listeners when it changed.
        """
        if self.status.is_up and self.generation == 0:
            self.scheduler.reset()
        else:
            self.scheduler = self._make_scheduler()
            for name, registration in self._registrations.items():
                self.scheduler.register_object(
                    name,
                    registration.spec,
                    compatibility=registration.compatibility,
                    initial_state=registration.initial_state,
                    materialize_state=registration.materialize_state,
                )
        self.status = SiteStatus.UP
        self.generation = 0
        self.unreadable.clear()
        self.failures = 0
        self.recoveries = 0
        self.domain = None
        self._durable_states = {}
        self._retired_stats = SchedulerStatistics()
        return self.scheduler

    def recover(self) -> Scheduler:
        """Bring the site back up with a fresh scheduler.

        Every replicated object starts unreadable (available-copies: a copy
        that missed writes while down must not serve reads until a committed
        write lands); single-copy objects are readable immediately.  Returns
        the new scheduler so the router can re-attach its listener.
        """
        if self.status.is_up:
            raise ReproError(f"site {self.site_id} is not down")
        self.scheduler = self._make_scheduler()
        for name, registration in self._registrations.items():
            self.scheduler.register_object(
                name,
                registration.spec,
                compatibility=registration.compatibility,
                # Durable storage survived the crash: restart each copy from
                # the committed state it held when the site went down.
                initial_state=self._durable_states.get(name, registration.initial_state),
                materialize_state=registration.materialize_state,
            )
            if registration.replicated:
                self.unreadable.add(name)
        self.status = SiteStatus.UP
        self.recoveries += 1
        return self.scheduler

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def stats(self) -> SchedulerStatistics:
        """Cumulative counters: the live scheduler plus crashed predecessors."""
        total = SchedulerStatistics()
        _fold_stats(total, self._retired_stats)
        if self.scheduler is not None:
            _fold_stats(total, self.scheduler.stats)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Site {self.site_id} {self.status.value} "
            f"objects={len(self._registrations)} unreadable={len(self.unreadable)}>"
        )
