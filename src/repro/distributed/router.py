"""The transaction router: global transactions over per-site schedulers.

The :class:`TransactionRouter` is the multi-site counterpart of
:class:`~repro.core.scheduler.Scheduler`: it owns *global* transaction ids and
fans operations out to the per-site schedulers that the
:class:`~repro.distributed.placement.PlacementPolicy` says hold a copy of the
target object, with available-copies replication semantics:

* **read-one** — a read-only operation executes at the first live site whose
  copy is readable;
* **write-all-available** — any other operation executes at *every* live copy
  (a recovering copy accepts writes; that is what makes it readable again);
* **failure** — when a site fails, its scheduler state is lost and every
  global transaction that *wrote* to the site (or whose in-flight operation is
  blocked there) aborts; completed transactions survive, and a pseudo-committed
  branch lost with the site is simply dropped from the commit-outstanding set;
* **recovery** — a recovered site marks its replicated copies unreadable
  until a transaction that wrote the object there durably commits.

A global transaction lazily opens one *branch* (a local transaction) per site
it touches.  Branch-level protocol decisions stay with the per-site backends —
semantic recoverability or strict 2PL, unchanged — and the router aggregates
them: a global operation request (:class:`GlobalRequest`) has executed once
every branch executed; a protocol abort at any branch aborts the global
transaction everywhere; a global commit is durable once every branch durably
committed (branches may pseudo-commit locally and drain at different times).

Cross-site cycles (deadlocks or commit-dependency cycles spanning sites,
which no single site's graph can see) are caught by a router-level check on
the union of the per-site dependency graphs after each fan-out; the requester
is the victim, matching the per-site victim rule.  The check only covers
cycles closed by the operation being submitted — cycles closed by a queued
request granted during another transaction's termination are not yet
detected (see ROADMAP).

With ``site_count=1`` the router is a pass-through: one site, one branch per
transaction, no replication fan-out and no cross-site checks, reproducing the
centralized scheduler's decision stream bit for bit.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.compatibility import CompatibilitySpec
from ..core.errors import (
    ReproError,
    TransactionStateError,
    UnknownObjectError,
    UnknownOperationError,
)
from ..core.policy import ConflictPolicy
from ..core.requests import AbortReason, RequestHandle, RequestStatus
from ..core.scheduler import SchedulerListener, SchedulerStatistics
from ..core.specification import Event, Invocation, TypeSpecification
from ..core.transaction import TransactionStatus
from .placement import PlacementPolicy, make_placement
from .site import Site, _fold_stats

__all__ = [
    "BranchRef",
    "GlobalRequest",
    "GlobalTransaction",
    "RouterStatistics",
    "TransactionRouter",
]


@dataclass(frozen=True)
class BranchRef:
    """A local transaction at one site, pinned to a scheduler generation.

    The generation guards against a site that crashed and recovered between
    branch creation and use: local transaction ids restart on the fresh
    scheduler, so a stale ``(site, tid)`` pair must never be dereferenced.
    """

    local_tid: int
    generation: int


@dataclass
class GlobalRequest:
    """Caller-visible result of one routed operation (all replica branches)."""

    transaction_id: int
    object_name: str
    invocation: Invocation
    #: Per-site handles returned by the branch schedulers.
    branch_handles: Dict[int, RequestHandle] = field(default_factory=dict)
    #: Set by the router when the global transaction aborts mid-request.
    failed: bool = False
    abort_reason: Optional[AbortReason] = None

    @property
    def executed(self) -> bool:
        """True once every replica branch has executed."""
        return (
            not self.failed
            and bool(self.branch_handles)
            and all(handle.executed for handle in self.branch_handles.values())
        )

    @property
    def blocked(self) -> bool:
        return not self.failed and any(
            handle.blocked for handle in self.branch_handles.values()
        )

    @property
    def aborted(self) -> bool:
        return self.failed or any(
            handle.aborted for handle in self.branch_handles.values()
        )

    @property
    def status(self) -> RequestStatus:
        if self.aborted:
            return RequestStatus.ABORTED
        if self.executed:
            return RequestStatus.EXECUTED
        return RequestStatus.BLOCKED

    @property
    def value(self) -> Any:
        """The operation's return value (from the first executed branch)."""
        for handle in self.branch_handles.values():
            if handle.executed:
                return handle.value
        return None


@dataclass
class GlobalTransaction:
    """Router-side record of one global transaction."""

    gtid: int
    label: Optional[str] = None
    status: TransactionStatus = TransactionStatus.ACTIVE
    #: The site this transaction's client sits at: work routed elsewhere pays
    #: the network cost ``msg_time`` (when a resource charger models one).
    home_site: int = 0
    #: Site id -> branch (lazily created on the first operation at the site).
    branches: Dict[int, BranchRef] = field(default_factory=dict)
    #: Sites this transaction has written to (the failure-abort rule).
    sites_written: Set[int] = field(default_factory=set)
    #: Objects written *per site* — only writes that actually landed at a
    #: site may make its recovering copies readable when they commit there.
    written_at: Dict[int, Set[str]] = field(default_factory=dict)
    #: The operation currently in flight (at most one, like the scheduler).
    current_request: Optional[GlobalRequest] = None
    #: After commit(): sites whose branch has not durably committed yet.
    outstanding: Optional[Set[int]] = None
    #: Re-entrancy guard while a global abort fans out.
    aborting: bool = False

    @property
    def tid(self) -> int:
        """Alias so global and local transactions read alike in tests."""
        return self.gtid

    def require(self, *allowed: TransactionStatus) -> None:
        if self.status not in allowed:
            raise TransactionStateError(
                f"global transaction {self.gtid} is {self.status.value}; expected "
                f"one of {[status.value for status in allowed]}"
            )


@dataclass
class RouterStatistics:
    """Router-level counters (global events, not per-branch ones)."""

    begins: int = 0
    commits: int = 0
    pseudo_commits: int = 0
    aborts: int = 0
    unavailable_aborts: int = 0
    site_failure_aborts: int = 0
    cross_site_deadlock_aborts: int = 0
    cross_site_cycle_checks: int = 0
    site_failures: int = 0
    site_recoveries: int = 0


class _SiteRelay(SchedulerListener):
    """Translates one site scheduler's callbacks into router bookkeeping."""

    def __init__(self, router: "TransactionRouter", site: Site):
        self.router = router
        self.site = site

    def on_granted(self, transaction_id: int, handle: RequestHandle, event: Event) -> None:
        self.router._on_local_granted(self.site, transaction_id, handle, event)

    def on_aborted(self, transaction_id: int, reason: AbortReason) -> None:
        self.router._on_local_aborted(self.site, transaction_id, reason)

    def on_committed(self, transaction_id: int) -> None:
        self.router._on_local_committed(self.site, transaction_id)


class TransactionRouter:
    """Routes global transactions over per-site schedulers.

    The constructor mirrors :class:`~repro.core.scheduler.Scheduler` where the
    concepts coincide (``policy``, ``fair``, ``retain_terminated``) and adds
    the multi-site knobs: ``site_count``, ``replication`` (a placement kind —
    ``"single"``, ``"hash"`` or ``"copies"`` — or a
    :class:`~repro.distributed.placement.PlacementPolicy` instance) and an
    optional ``backend_factory`` constructing one backend per site.
    """

    def __init__(
        self,
        site_count: int = 1,
        replication: str = "single",
        policy: ConflictPolicy = ConflictPolicy.RECOVERABILITY,
        fair: bool = True,
        record_history: bool = False,
        retain_terminated: bool = True,
        backend_factory=None,
    ):
        if isinstance(replication, PlacementPolicy):
            self.placement = replication
        else:
            self.placement = make_placement(replication, site_count)
        if self.placement.site_count != site_count:
            raise ReproError(
                f"placement covers {self.placement.site_count} sites, router has {site_count}"
            )
        self.site_count = site_count
        self.policy = policy
        self.retain_terminated = retain_terminated
        self.sites: List[Site] = [
            Site(
                site_id,
                policy=policy,
                fair=fair,
                record_history=record_history,
                retain_terminated=False,
                backend_factory=backend_factory,
            )
            for site_id in range(site_count)
        ]
        self.transactions: Dict[int, GlobalTransaction] = {}
        self.router_stats = RouterStatistics()
        self._relays: List[_SiteRelay] = []
        for site in self.sites:
            relay = _SiteRelay(self, site)
            site.scheduler.add_listener(relay)
            self._relays.append(relay)
        #: Per-site map of local transaction id -> global transaction id.
        self._local_map: List[Dict[int, int]] = [{} for _ in range(site_count)]
        #: Object name -> type specification (read/write classification).
        self._specs: Dict[str, TypeSpecification] = {}
        self._listeners: List[SchedulerListener] = []
        self._next_gtid = 0
        #: Where granted operations are charged for hardware/network time
        #: (a :class:`~repro.sim.resources.ResourceCharger`); ``None`` until
        #: a simulation attaches one — the router's protocol decisions never
        #: depend on it, only the timing of the physical phase does.
        self._charger = None

    # ------------------------------------------------------------------
    # Setup (Scheduler-compatible, so workloads can register blindly)
    # ------------------------------------------------------------------
    def register_object(
        self,
        name: str,
        spec: TypeSpecification,
        compatibility: Optional[CompatibilitySpec] = None,
        initial_state: Any = None,
        materialize_state: bool = True,
    ) -> None:
        """Place an object's copies according to the placement policy."""
        sites = self.placement.sites_for(name)
        replicated = len(sites) > 1
        self._specs[name] = spec
        for site_id in sites:
            self.sites[site_id].register_object(
                name,
                spec,
                compatibility=compatibility,
                initial_state=initial_state,
                materialize_state=materialize_state,
                replicated=replicated,
            )

    def add_listener(self, listener: SchedulerListener) -> None:
        """Subscribe a listener to *global* transaction events."""
        self._listeners.append(listener)

    def attach_resources(self, charger) -> None:
        """Wire up the hardware granted operations are charged to.

        ``charger`` is a :class:`~repro.sim.resources.ResourceCharger`; a
        per-site charger additionally hands each site its own
        :class:`~repro.sim.resources.ResourceDomain` so replica selection
        can prefer the least-loaded copy.
        """
        self._charger = charger
        domains = getattr(charger, "domains", None)
        if domains is not None:
            if len(domains) != self.site_count:
                raise ReproError(
                    f"charger has {len(domains)} domains, router has "
                    f"{self.site_count} sites"
                )
            for site, domain in zip(self.sites, domains):
                site.attach_domain(domain)

    # ------------------------------------------------------------------
    # Resource charging (the physical phase of a granted operation)
    # ------------------------------------------------------------------
    def perform_step(self, transaction_id: int, done) -> None:
        """Charge the transaction's in-flight granted operation.

        Delegates to the attached charger with the sites whose replicas
        executed the operation and the transaction's home site; ``done``
        fires when the physical phase (CPU/disk service plus any network
        delay) completes.
        """
        if self._charger is None:
            raise ReproError("no resource charger attached to the router")
        transaction = self.transaction(transaction_id)
        request = transaction.current_request
        if request is None or not request.executed:
            raise TransactionStateError(
                f"global transaction {transaction.gtid} has no executed "
                "operation to charge resources for"
            )
        self._charger.perform_operation(
            sorted(request.branch_handles), transaction.home_site, done
        )

    def commit_network_delay(self, transaction_id: int) -> float:
        """Network delay of fanning this transaction's commit to its branches."""
        if self._charger is None:
            return 0.0
        transaction = self.transaction(transaction_id)
        return self._charger.commit_network_delay(
            sorted(transaction.branches), transaction.home_site
        )

    # ------------------------------------------------------------------
    # Aggregated statistics
    # ------------------------------------------------------------------
    @property
    def stats(self) -> SchedulerStatistics:
        """Scheduler counters summed over every site (crashes included).

        With replication, branch-level counters (blocks, aborts, operation
        executions) count once per replica; the router-level
        :attr:`router_stats` holds the once-per-global-transaction view.
        """
        total = SchedulerStatistics()
        for site in self.sites:
            _fold_stats(total, site.stats)
        return total

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(
        self, label: Optional[str] = None, home_site: Optional[int] = None
    ) -> GlobalTransaction:
        """Start a new global transaction (branches open lazily per site).

        ``home_site`` is where the transaction's client sits (the origin of
        its network traffic); by default clients are spread round-robin over
        the sites, which with one site is always site 0.
        """
        self._next_gtid += 1
        if home_site is None:
            home_site = (self._next_gtid - 1) % self.site_count
        elif not 0 <= home_site < self.site_count:
            raise ReproError(
                f"home_site {home_site} outside [0, {self.site_count})"
            )
        transaction = GlobalTransaction(
            gtid=self._next_gtid, label=label, home_site=home_site
        )
        self.transactions[transaction.gtid] = transaction
        self.router_stats.begins += 1
        return transaction

    def transaction(self, transaction_id: int) -> GlobalTransaction:
        try:
            return self.transactions[transaction_id]
        except KeyError:
            raise TransactionStateError(
                f"unknown global transaction {transaction_id}"
            ) from None

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def perform(
        self, transaction_id: int, object_name: str, op: str, *args: Any
    ) -> GlobalRequest:
        """Route ``op(*args)`` on ``object_name`` (read-one / write-all)."""
        return self.submit(transaction_id, object_name, Invocation(op, tuple(args)))

    def submit(
        self, transaction_id: int, object_name: str, invocation: Invocation
    ) -> GlobalRequest:
        """Route a prebuilt invocation to the replicas of ``object_name``."""
        transaction = self.transaction(transaction_id)
        transaction.require(TransactionStatus.ACTIVE)
        previous = transaction.current_request
        if previous is not None and previous.blocked:
            # Mirror the centralized scheduler: a transaction whose last
            # request is still queued cannot issue another one.  Reject
            # before any branch is touched — a partial fan-out would leave
            # replicas divergent.
            raise TransactionStateError(
                f"global transaction {transaction.gtid} has a blocked request "
                f"on {previous.object_name!r}; it cannot issue another operation"
            )
        if object_name not in self._specs:
            raise UnknownObjectError(object_name)
        request = GlobalRequest(
            transaction_id=transaction_id,
            object_name=object_name,
            invocation=invocation,
        )
        transaction.current_request = request
        placed = self.placement.sites_for(object_name)
        # Cross-site cycles can only be closed by a dependency edge added
        # during this fan-out; snapshot the target graphs' mutation counters
        # so the (comparatively expensive) union-graph DFS below can be
        # skipped for the common conflict-free operation.
        watched_graphs = (
            [self.sites[sid].scheduler.graph
             for sid in placed if self.sites[sid].status.is_up]
            if self.site_count > 1
            else []
        )
        mutations_before = sum(graph.mutations for graph in watched_graphs)

        if self._is_read_only(object_name, invocation):
            # Read-one: spread reads over the replicas by a stable hash of
            # the object name (each object has a deterministic home replica),
            # falling over to the next readable copy when it is down or
            # still recovering.  With one site this always picks site 0.
            # When per-site hardware is attached, prefer the least-loaded
            # readable replica instead (hash order breaks ties), so reads
            # balance over the capacity replication added.
            offset = zlib.crc32(object_name.encode("utf-8")) % len(placed)
            ordered = placed[offset:] + placed[:offset]
            candidates = [
                sid for sid in ordered if self.sites[sid].readable(object_name)
            ]
            if not candidates:
                self._unavailable(transaction, request)
                return request
            target = self._select_read_replica(candidates)
            self._submit_branch(transaction, self.sites[target], request)
        else:
            targets = [sid for sid in placed if self.sites[sid].writable(object_name)]
            if not targets:
                self._unavailable(transaction, request)
                return request
            for sid in targets:
                if transaction.status is not TransactionStatus.ACTIVE:
                    break  # a branch abort cascaded into a global abort
                transaction.sites_written.add(sid)
                transaction.written_at.setdefault(sid, set()).add(object_name)
                self._submit_branch(transaction, self.sites[sid], request)

        if (
            self.site_count > 1
            and transaction.status is TransactionStatus.ACTIVE
            and request.branch_handles
            and not request.failed
            and sum(graph.mutations for graph in watched_graphs) != mutations_before
        ):
            self.router_stats.cross_site_cycle_checks += 1
            if self._closes_global_cycle(transaction):
                self.router_stats.cross_site_deadlock_aborts += 1
                self._global_abort(transaction, AbortReason.DEADLOCK, request)
        return request

    def _submit_branch(
        self, transaction: GlobalTransaction, site: Site, request: GlobalRequest
    ) -> None:
        branch = transaction.branches.get(site.site_id)
        if branch is None or branch.generation != site.generation:
            local = site.scheduler.begin(label=transaction.label)
            branch = BranchRef(local_tid=local.tid, generation=site.generation)
            transaction.branches[site.site_id] = branch
            self._local_map[site.site_id][local.tid] = transaction.gtid
        handle = site.scheduler.submit(
            branch.local_tid, request.object_name, request.invocation
        )
        request.branch_handles[site.site_id] = handle

    def _select_read_replica(self, candidates: List[int]) -> int:
        """Pick the replica a read executes at from the readable candidates.

        ``candidates`` come in hash-rotation order.  Without per-site
        hardware (no domains attached: no charger, or a shared global pool)
        the first is taken — the pre-refactor behaviour.  With site-owned
        domains the least-loaded candidate wins, earlier rotation position
        breaking ties deterministically.
        """
        if len(candidates) == 1:
            return candidates[0]
        domains = [self.sites[sid].domain for sid in candidates]
        if any(domain is None for domain in domains):
            return candidates[0]
        best = min(
            range(len(candidates)), key=lambda index: (domains[index].load, index)
        )
        return candidates[best]

    def _is_read_only(self, object_name: str, invocation: Invocation) -> bool:
        spec = self._specs[object_name]
        try:
            return spec.operation(invocation.op).is_read_only
        except UnknownOperationError:
            return False

    def _unavailable(
        self, transaction: GlobalTransaction, request: GlobalRequest
    ) -> None:
        self.router_stats.unavailable_aborts += 1
        self._global_abort(transaction, AbortReason.SITE_UNAVAILABLE, request)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self, transaction_id: int) -> TransactionStatus:
        """Commit at every branch; durable once every branch is durable."""
        transaction = self.transaction(transaction_id)
        transaction.require(TransactionStatus.ACTIVE)
        request = transaction.current_request
        if request is not None and request.blocked:
            # Mirror the centralized scheduler: a transaction whose last
            # request is still queued cannot commit.  Reject before touching
            # any branch — committing some branches and then raising at the
            # blocked one would leave the replicas divergent.
            raise TransactionStateError(
                f"global transaction {transaction.gtid} has a blocked request "
                f"on {request.object_name!r}; it cannot commit"
            )
        live: Set[int] = set()
        for site_id, branch in transaction.branches.items():
            site = self.sites[site_id]
            if (
                site.status.is_up
                and branch.generation == site.generation
                and site.scheduler.transactions.get(branch.local_tid) is not None
            ):
                live.add(site_id)
        transaction.outstanding = set(live)
        for site_id in sorted(live):
            branch = transaction.branches[site_id]
            # A durable local commit fires the relay synchronously and drops
            # the site from ``outstanding``; a pseudo-commit leaves it in.
            self.sites[site_id].scheduler.commit(branch.local_tid)
        if transaction.outstanding:
            transaction.status = TransactionStatus.PSEUDO_COMMITTED
            self.router_stats.pseudo_commits += 1
            for listener in self._listeners:
                listener.on_pseudo_committed(transaction.gtid)
            return TransactionStatus.PSEUDO_COMMITTED
        self._finalize_commit(transaction)
        return TransactionStatus.COMMITTED

    def _finalize_commit(self, transaction: GlobalTransaction) -> None:
        transaction.status = TransactionStatus.COMMITTED
        self.router_stats.commits += 1
        for listener in self._listeners:
            listener.on_committed(transaction.gtid)
        self._finish(transaction)

    # ------------------------------------------------------------------
    # Abort
    # ------------------------------------------------------------------
    def abort(
        self, transaction_id: int, reason: AbortReason = AbortReason.USER
    ) -> None:
        """Abort a global transaction at every live branch."""
        transaction = self.transaction(transaction_id)
        transaction.require(TransactionStatus.ACTIVE)
        self._global_abort(transaction, reason)

    def _global_abort(
        self,
        transaction: GlobalTransaction,
        reason: AbortReason,
        request: Optional[GlobalRequest] = None,
    ) -> None:
        if transaction.aborting or transaction.status in (
            TransactionStatus.ABORTED,
            TransactionStatus.COMMITTED,
        ):
            return
        transaction.aborting = True
        request = request if request is not None else transaction.current_request
        if request is not None:
            request.failed = True
            request.abort_reason = reason
        for site_id in sorted(transaction.branches):
            branch = transaction.branches[site_id]
            site = self.sites[site_id]
            if not site.status.is_up or branch.generation != site.generation:
                continue
            local = site.scheduler.transactions.get(branch.local_tid)
            if local is None or local.status not in (
                TransactionStatus.ACTIVE,
                TransactionStatus.BLOCKED,
            ):
                continue
            site.scheduler.abort(branch.local_tid, reason)
            self._local_map[site_id].pop(branch.local_tid, None)
        transaction.status = TransactionStatus.ABORTED
        self.router_stats.aborts += 1
        if reason is AbortReason.SITE_FAILURE:
            self.router_stats.site_failure_aborts += 1
        for listener in self._listeners:
            listener.on_aborted(transaction.gtid, reason)
        self._finish(transaction)

    def _finish(self, transaction: GlobalTransaction) -> None:
        """Terminal bookkeeping shared by global commit and abort."""
        transaction.current_request = None
        for site_id, branch in transaction.branches.items():
            self._local_map[site_id].pop(branch.local_tid, None)
        if not self.retain_terminated:
            self.transactions.pop(transaction.gtid, None)

    # ------------------------------------------------------------------
    # Site lifecycle
    # ------------------------------------------------------------------
    def fail_site(self, site_id: int) -> None:
        """Crash a site: its scheduler state is lost.

        Available-copies rule: every global transaction that wrote to the
        site (its uncommitted writes there are gone) or whose in-flight
        operation is blocked there (the queued request is gone) aborts.
        Completed transactions survive; a pseudo-committed branch that was
        waiting out its commit dependencies at the failed site is dropped
        from the outstanding set — its durable commit can no longer be
        reported, and the surviving replicas carry its effects.
        """
        site = self.sites[site_id]
        generation = site.generation
        affected = [
            transaction
            for transaction in list(self.transactions.values())
            if site_id in transaction.branches
            and transaction.branches[site_id].generation == generation
        ]
        self._local_map[site_id].clear()
        site.fail()
        self.router_stats.site_failures += 1
        for transaction in affected:
            if transaction.status in (TransactionStatus.ABORTED, TransactionStatus.COMMITTED):
                continue
            if transaction.status is TransactionStatus.PSEUDO_COMMITTED:
                if transaction.outstanding is not None:
                    transaction.outstanding.discard(site_id)
                    if not transaction.outstanding:
                        self._finalize_commit(transaction)
                continue
            request = transaction.current_request
            branch_handle = (
                request.branch_handles.get(site_id) if request is not None else None
            )
            if site_id in transaction.sites_written or (
                branch_handle is not None and branch_handle.blocked
            ):
                self._global_abort(transaction, AbortReason.SITE_FAILURE)
            else:
                # Read-only contact with the lost site: the values are already
                # in hand and other replicas back them; just drop the branch.
                transaction.branches.pop(site_id, None)

    def recover_site(self, site_id: int) -> None:
        """Bring a failed site back (replicated copies unreadable until a
        committed write; see :meth:`Site.recover`)."""
        site = self.sites[site_id]
        scheduler = site.recover()
        scheduler.add_listener(self._relays[site_id])
        self.router_stats.site_recoveries += 1

    # ------------------------------------------------------------------
    # Relay handlers (local scheduler events -> global bookkeeping)
    # ------------------------------------------------------------------
    def _on_local_granted(
        self, site: Site, local_tid: int, handle: RequestHandle, event: Event
    ) -> None:
        gtid = self._local_map[site.site_id].get(local_tid)
        if gtid is None:
            return
        transaction = self.transactions.get(gtid)
        if transaction is None or transaction.status is not TransactionStatus.ACTIVE:
            return
        request = transaction.current_request
        if (
            request is None
            or request.failed
            or request.branch_handles.get(site.site_id) is not handle
        ):
            return
        if request.executed:
            for listener in self._listeners:
                listener.on_granted(gtid, request, event)

    def _on_local_aborted(self, site: Site, local_tid: int, reason: AbortReason) -> None:
        gtid = self._local_map[site.site_id].pop(local_tid, None)
        if gtid is None:
            return
        transaction = self.transactions.get(gtid)
        if (
            transaction is None
            or transaction.aborting
            or transaction.status
            in (TransactionStatus.ABORTED, TransactionStatus.COMMITTED)
        ):
            return
        # A protocol abort at one branch (deadlock or dependency-cycle
        # victim) aborts the global transaction at every other branch.
        self._global_abort(transaction, reason)

    def _on_local_committed(self, site: Site, local_tid: int) -> None:
        gtid = self._local_map[site.site_id].pop(local_tid, None)
        if gtid is None:
            return
        transaction = self.transactions.get(gtid)
        if transaction is None:
            return
        # Available-copies recovery: a durably committed write refreshes the
        # local copy, making it readable again — but only for objects whose
        # write actually landed at *this* site (a write issued while the
        # site was down never reached its copy).
        if site.unreadable:
            for name in transaction.written_at.get(site.site_id, ()):
                site.mark_readable(name)
        if transaction.outstanding is None:
            return
        transaction.outstanding.discard(site.site_id)
        if (
            not transaction.outstanding
            and transaction.status is TransactionStatus.PSEUDO_COMMITTED
        ):
            self._finalize_commit(transaction)

    # ------------------------------------------------------------------
    # Cross-site cycle detection
    # ------------------------------------------------------------------
    def _global_successors(self, gtid: int) -> Set[int]:
        """Union of one transaction's per-site dependency-graph successors."""
        transaction = self.transactions.get(gtid)
        if transaction is None:
            return set()
        successors: Set[int] = set()
        for site_id, branch in transaction.branches.items():
            site = self.sites[site_id]
            if not site.status.is_up or branch.generation != site.generation:
                continue
            local_map = self._local_map[site_id]
            for local_successor in site.scheduler.graph.successors(branch.local_tid):
                successor_gtid = local_map.get(local_successor)
                if successor_gtid is not None and successor_gtid != gtid:
                    successors.add(successor_gtid)
        return successors

    def _closes_global_cycle(self, transaction: GlobalTransaction) -> bool:
        """True when the union graph has a cycle through ``transaction``.

        Per-site graphs are individually acyclic (each site checks before
        adding edges), so any union cycle necessarily spans sites.  Only
        cycles through the submitting transaction can have been closed by the
        operation just routed, so a DFS from it suffices.
        """
        target = transaction.gtid
        stack = list(self._global_successors(target))
        seen = set(stack)
        while stack:
            gtid = stack.pop()
            if gtid == target:
                return True
            for successor in self._global_successors(gtid):
                if successor == target:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_sites(self) -> List[int]:
        """Ids of the sites currently up."""
        return [site.site_id for site in self.sites if site.status.is_up]

    def object_state(self, name: str, site_id: Optional[int] = None) -> Any:
        """The visible state of one copy (default: first readable copy)."""
        if site_id is None:
            site_id = next(
                (sid for sid in self.placement.sites_for(name) if self.sites[sid].readable(name)),
                None,
            )
            if site_id is None:
                raise UnknownObjectError(f"{name}: no readable copy")
        return self.sites[site_id].scheduler.object_state(name)

    def committed_state(self, name: str, site_id: Optional[int] = None) -> Any:
        """The committed state of one copy (default: first readable copy)."""
        if site_id is None:
            site_id = next(
                (sid for sid in self.placement.sites_for(name) if self.sites[sid].readable(name)),
                None,
            )
            if site_id is None:
                raise UnknownObjectError(f"{name}: no readable copy")
        return self.sites[site_id].scheduler.committed_state(name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        up = len(self.live_sites())
        return (
            f"<TransactionRouter sites={self.site_count} up={up} "
            f"placement={self.placement.name!r} policy={self.policy}>"
        )
