"""The transaction router: global transactions over per-site schedulers.

The :class:`TransactionRouter` is the multi-site counterpart of
:class:`~repro.core.scheduler.Scheduler`: it owns *global* transaction ids and
fans operations out to the per-site schedulers that the
:class:`~repro.distributed.placement.PlacementPolicy` says hold a copy of the
target object.  *Which* copies an operation executes at — and what failure
and recovery mean for a copy — is decided by a pluggable
:class:`~repro.distributed.replication.ReplicationProtocol`:

* :class:`~repro.distributed.replication.AvailableCopies` (the default) —
  read-one / write-all-available with the recovering-copy rule (a recovered
  replicated copy is unreadable until a committed write refreshes it);
* :class:`~repro.distributed.replication.QuorumConsensus` — version-numbered
  read/write quorums with ``R + W > N`` and catch-up recovery;
* :class:`~repro.distributed.replication.PrimaryCopy` — writes funnel
  through an elected primary, reads come from any live replica, with
  deterministic failover and catch-up recovery.

*When* a distributed commit may report durable is likewise pluggable — a
:class:`~repro.distributed.commit.CommitProtocol`:

* :class:`~repro.distributed.commit.OnePhase` (the default) — one commit
  fan-out, durable once every branch drained, a pseudo-committed branch
  lost with its site dropped from the commit-outstanding set (the
  extracted pre-refactor behaviour, bit-identical);
* :class:`~repro.distributed.commit.TwoPhase` — commit-time certification
  against the union dependency graph before any branch stamps durable,
  durability reported only once the replication protocol's write condition
  holds (``W`` live stamped copies under quorum consensus), and
  failure-triggered re-replication of under-stamped objects.

The router keeps the protocol-independent rules: when a site fails, its
scheduler state is lost and every global transaction that *wrote* to the site
(or whose in-flight operation is blocked there) aborts; completed
transactions survive, and what a pseudo-committed branch lost with the site
means for the commit is the commit protocol's call.

A global transaction lazily opens one *branch* (a local transaction) per site
it touches.  Branch-level protocol decisions stay with the per-site backends —
semantic recoverability or strict 2PL, unchanged — and the router aggregates
them: a global operation request (:class:`GlobalRequest`) has executed once
every branch executed; a protocol abort at any branch aborts the global
transaction everywhere; a global commit is durable once every branch durably
committed (branches may pseudo-commit locally and drain at different times).

Cross-site cycles (deadlocks or commit-dependency cycles spanning sites,
which no single site's graph can see) are caught two ways: a router-level
check on the union of the per-site dependency graphs after each fan-out (the
requester is the victim, matching the per-site victim rule), and
:meth:`TransactionRouter.sweep_global_cycles` — run periodically from an
engine event by the simulator — which catches cycles closed *outside* a
submit, e.g. by a queued request granted during another transaction's
termination cascade (the grant can add commit-dependency edges no submit
ever carried).  Both are gated on the per-site graphs' mutation counters so
conflict-free stretches cost nothing.

With ``site_count=1`` the router is a pass-through: one site, one branch per
transaction, no replication fan-out and no cross-site checks, reproducing the
centralized scheduler's decision stream bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Union

from ..core.compatibility import CompatibilitySpec
from ..core.errors import (
    ReproError,
    TransactionStateError,
    UnknownObjectError,
    UnknownOperationError,
)
from ..core.policy import ConflictPolicy
from ..core.requests import AbortReason, RequestHandle, RequestStatus
from ..core.scheduler import SchedulerListener, SchedulerStatistics
from ..core.specification import Event, Invocation, TypeSpecification
from ..core.transaction import TransactionStatus
from .commit import CommitProtocol, make_commit_protocol
from .cycles import UnionCycleDetector
from .placement import (
    HashShardedPlacement,
    PlacementPolicy,
    ReplicatedPlacement,
    SingleSitePlacement,
    make_placement,
)
from .replication import ReplicationProtocol, make_replication_protocol
from .site import Site, SiteStatus, _fold_stats

if TYPE_CHECKING:
    from ..core.backends import ConcurrencyControlBackend
    from ..sim.resources import ResourceCharger

__all__ = [
    "BranchRef",
    "GlobalRequest",
    "GlobalTransaction",
    "RouterStatistics",
    "TransactionRouter",
]


@dataclass(frozen=True, slots=True)
class BranchRef:
    """A local transaction at one site, pinned to a scheduler generation.

    The generation guards against a site that crashed and recovered between
    branch creation and use: local transaction ids restart on the fresh
    scheduler, so a stale ``(site, tid)`` pair must never be dereferenced.
    """

    local_tid: int
    generation: int


_EXECUTED = RequestStatus.EXECUTED
_BLOCKED = RequestStatus.BLOCKED
_ABORTED = RequestStatus.ABORTED


@dataclass(slots=True)
class GlobalRequest:
    """Caller-visible result of one routed operation (all replica branches)."""

    transaction_id: int
    object_name: str
    invocation: Invocation
    #: Per-site handles returned by the branch schedulers.
    branch_handles: Dict[int, RequestHandle] = field(default_factory=dict)
    #: Set by the router when the global transaction aborts mid-request.
    failed: bool = False
    abort_reason: Optional[AbortReason] = None
    #: Site whose copy serves :attr:`value`, chosen by the replication
    #: protocol (quorum reads serve the highest-version quorum member);
    #: ``None`` falls back to the first executed branch.
    value_site: Optional[int] = None

    @property
    def executed(self) -> bool:
        """True once every replica branch has executed."""
        # Explicit loop over handle statuses: this property is the hottest
        # predicate in the router (checked after every submit and grant), and
        # the genexpr-plus-``all`` form costs a frame per call.
        if self.failed:
            return False
        handles = self.branch_handles
        if not handles:
            return False
        for handle in handles.values():
            if handle.status is not _EXECUTED:
                return False
        return True

    @property
    def blocked(self) -> bool:
        if self.failed:
            return False
        for handle in self.branch_handles.values():
            if handle.status is _BLOCKED:
                return True
        return False

    @property
    def aborted(self) -> bool:
        if self.failed:
            return True
        for handle in self.branch_handles.values():
            if handle.status is _ABORTED:
                return True
        return False

    @property
    def status(self) -> RequestStatus:
        if self.aborted:
            return RequestStatus.ABORTED
        if self.executed:
            return RequestStatus.EXECUTED
        return RequestStatus.BLOCKED

    @property
    def value(self) -> Any:
        """The operation's return value.

        The replication protocol may designate the copy the value comes from
        (:attr:`value_site`); otherwise the first executed branch serves it.
        """
        if self.value_site is not None:
            handle = self.branch_handles.get(self.value_site)
            if handle is not None and handle.status is _EXECUTED:
                return handle.value
        for handle in self.branch_handles.values():
            if handle.status is _EXECUTED:
                return handle.value
        return None


@dataclass(slots=True)
class GlobalTransaction:
    """Router-side record of one global transaction."""

    gtid: int
    label: Optional[str] = None
    status: TransactionStatus = TransactionStatus.ACTIVE
    #: The site this transaction's client sits at: work routed elsewhere pays
    #: the network cost ``msg_time`` (when a resource charger models one).
    home_site: int = 0
    #: Site id -> branch (lazily created on the first operation at the site).
    branches: Dict[int, BranchRef] = field(default_factory=dict)
    #: Sites this transaction has written to (the failure-abort rule).
    sites_written: Set[int] = field(default_factory=set)
    #: Objects written *per site* — only writes that actually landed at a
    #: site may make its recovering copies readable when they commit there.
    written_at: Dict[int, Set[str]] = field(default_factory=dict)
    #: The operation currently in flight (at most one, like the scheduler).
    current_request: Optional[GlobalRequest] = None
    #: After commit(): sites whose branch has not durably committed yet.
    outstanding: Optional[Set[int]] = None
    #: Re-entrancy guard while a global abort fans out.
    aborting: bool = False

    @property
    def tid(self) -> int:
        """Alias so global and local transactions read alike in tests."""
        return self.gtid

    def written_objects(self) -> Set[str]:
        """Union of the objects this transaction wrote, over every site.

        The single source for "what did this transaction write": the 2PC
        durability check, the quorum under-replication audit and the
        commit-target bookkeeping all key off it.
        """
        names: Set[str] = set()
        for per_site in self.written_at.values():
            names.update(per_site)
        return names

    def require(self, *allowed: TransactionStatus) -> None:
        if self.status not in allowed:
            raise TransactionStateError(
                f"global transaction {self.gtid} is {self.status.value}; expected "
                f"one of {[status.value for status in allowed]}"
            )


@dataclass
class RouterStatistics:
    """Router-level counters (global events, not per-branch ones)."""

    begins: int = 0
    commits: int = 0
    pseudo_commits: int = 0
    aborts: int = 0
    unavailable_aborts: int = 0
    #: Unavailability split by operation class: the replication protocols
    #: trade these off (available-copies loses reads to the unreadable
    #: window, quorums lose writes below ``W`` live copies).
    read_unavailable_aborts: int = 0
    write_unavailable_aborts: int = 0
    site_failure_aborts: int = 0
    cross_site_deadlock_aborts: int = 0
    cross_site_cycle_checks: int = 0
    #: Periodic union-graph sweeps that actually ran (mutation-gated).
    cycle_sweeps: int = 0
    site_failures: int = 0
    site_recoveries: int = 0


class _SiteRelay(SchedulerListener):
    """Translates one site scheduler's callbacks into router bookkeeping."""

    def __init__(self, router: "TransactionRouter", site: Site):
        self.router = router
        self.site = site

    def on_granted(self, transaction_id: int, handle: RequestHandle, event: Event) -> None:
        self.router._on_local_granted(self.site, transaction_id, handle, event)

    def on_aborted(self, transaction_id: int, reason: AbortReason) -> None:
        self.router._on_local_aborted(self.site, transaction_id, reason)

    def on_committed(self, transaction_id: int) -> None:
        self.router._on_local_committed(self.site, transaction_id)


class TransactionRouter:
    """Routes global transactions over per-site schedulers.

    The constructor mirrors :class:`~repro.core.scheduler.Scheduler` where the
    concepts coincide (``policy``, ``fair``, ``retain_terminated``) and adds
    the multi-site knobs: ``site_count``, ``replication`` (a placement kind —
    ``"single"``, ``"hash"`` or ``"copies"`` — or a
    :class:`~repro.distributed.placement.PlacementPolicy` instance),
    ``replication_protocol`` (a protocol kind — ``"available-copies"``,
    ``"quorum"`` or ``"primary-copy"`` — or a
    :class:`~repro.distributed.replication.ReplicationProtocol` instance,
    with ``quorum_read``/``quorum_write`` sizing the quorums),
    ``commit_protocol`` (``"one-phase"`` or ``"two-phase"`` — or a
    :class:`~repro.distributed.commit.CommitProtocol` instance, with
    ``prepare_timeout`` bounding the two-phase durability wait) and an
    optional ``backend_factory`` constructing one backend per site.
    """

    def __init__(
        self,
        site_count: int = 1,
        replication: Union[str, PlacementPolicy] = "single",
        policy: ConflictPolicy = ConflictPolicy.RECOVERABILITY,
        fair: bool = True,
        record_history: bool = False,
        retain_terminated: bool = True,
        backend_factory: Optional[Callable[[], "ConcurrencyControlBackend"]] = None,
        replication_protocol: Union[str, ReplicationProtocol] = "available-copies",
        quorum_read: Optional[int] = None,
        quorum_write: Optional[int] = None,
        commit_protocol: Union[str, CommitProtocol] = "one-phase",
        prepare_timeout: Optional[float] = None,
        pool_requests: bool = False,
    ):
        if isinstance(replication, PlacementPolicy):
            self.placement = replication
        else:
            self.placement = make_placement(replication, site_count)
        if self.placement.site_count != site_count:
            raise ReproError(
                f"placement covers {self.placement.site_count} sites, router has {site_count}"
            )
        if isinstance(replication_protocol, ReplicationProtocol):
            self.replication = replication_protocol
        else:
            self.replication = make_replication_protocol(
                replication_protocol,
                read_quorum=quorum_read,
                write_quorum=quorum_write,
            )
        self.replication.attach(self)
        if isinstance(commit_protocol, CommitProtocol):
            if prepare_timeout is not None:
                raise ReproError(
                    "prepare_timeout cannot accompany a commit protocol "
                    "instance; configure the instance directly"
                )
            self.commit_protocol = commit_protocol
        else:
            self.commit_protocol = make_commit_protocol(
                commit_protocol, prepare_timeout=prepare_timeout
            )
        self.commit_protocol.attach(self)
        self.site_count = site_count
        self.policy = policy
        self.retain_terminated = retain_terminated
        self.sites: List[Site] = [
            Site(
                site_id,
                policy=policy,
                fair=fair,
                record_history=record_history,
                retain_terminated=False,
                backend_factory=backend_factory,
                pool_requests=pool_requests,
            )
            for site_id in range(site_count)
        ]
        self.transactions: Dict[int, GlobalTransaction] = {}
        self.router_stats = RouterStatistics()
        self._relays: List[_SiteRelay] = []
        for site in self.sites:
            relay = _SiteRelay(self, site)
            site.scheduler.add_listener(relay)
            self._relays.append(relay)
        #: Per-site map of local transaction id -> global transaction id.
        self._local_map: List[Dict[int, int]] = [{} for _ in range(site_count)]
        #: Object name -> type specification (read/write classification).
        self._specs: Dict[str, TypeSpecification] = {}
        #: Object name -> {op name -> is_read_only}, filled lazily.  The
        #: submit fast path consults this instead of re-resolving the
        #: operation spec (and absorbing its try/except) per request.
        self._read_only_ops: Dict[str, Dict[str, bool]] = {}
        self._listeners: List[SchedulerListener] = []
        self._next_gtid = 0
        #: Where granted operations are charged for hardware/network time
        #: (a :class:`~repro.sim.resources.ResourceCharger`); ``None`` until
        #: a simulation attaches one — the router's protocol decisions never
        #: depend on it, only the timing of the physical phase does.
        self._charger: Optional["ResourceCharger"] = None
        #: All union-graph cycle checks — the per-submit check, the periodic
        #: sweep and the commit-time certification — plus the sweep's
        #: monotonic mutation gate (see :mod:`repro.distributed.cycles`).
        self._cycles = UnionCycleDetector(self)
        self._rebind_submit()

    # ------------------------------------------------------------------
    # Setup (Scheduler-compatible, so workloads can register blindly)
    # ------------------------------------------------------------------
    def register_object(
        self,
        name: str,
        spec: TypeSpecification,
        compatibility: Optional[CompatibilitySpec] = None,
        initial_state: Any = None,
        materialize_state: bool = True,
    ) -> None:
        """Place an object's copies according to the placement policy."""
        sites = self.placement.sites_for(name)
        replicated = len(sites) > 1
        self._specs[name] = spec
        self._read_only_ops[name] = {}
        for site_id in sites:
            self.sites[site_id].register_object(
                name,
                spec,
                compatibility=compatibility,
                initial_state=initial_state,
                materialize_state=materialize_state,
                replicated=replicated,
            )

    def add_listener(self, listener: SchedulerListener) -> None:
        """Subscribe a listener to *global* transaction events."""
        self._listeners.append(listener)

    def reset(self) -> None:
        """Restore the router to its just-constructed, just-registered state.

        Everything structural is kept — object registrations, placement,
        protocol instances, listeners — while all per-run state (transactions,
        scheduler contents, protocol bookkeeping, statistics) rewinds to what
        a fresh build would hold.  The resource charger is *not* kept: it has
        queueing state of its own, so callers re-attach one (the simulator
        rebuilds it per run) before charging operations again.
        """
        for site, relay in zip(self.sites, self._relays):
            previous = site.scheduler
            if site.reset() is not previous:
                # The reset rebuilt the scheduler (the site had crashed);
                # re-wire the relay like recover_site does.
                site.scheduler.add_listener(relay)
        self.transactions.clear()
        self.router_stats = RouterStatistics()
        for local in self._local_map:
            local.clear()
        self._next_gtid = 0
        self._charger = None
        self.replication.reset()
        self.commit_protocol.reset()
        self._cycles.reset()
        self._rebind_submit()

    def attach_resources(self, charger: "ResourceCharger") -> None:
        """Wire up the hardware granted operations are charged to.

        ``charger`` is a :class:`~repro.sim.resources.ResourceCharger`; a
        per-site charger additionally hands each site its own
        :class:`~repro.sim.resources.ResourceDomain` so replica selection
        can prefer the least-loaded copy.
        """
        self._charger = charger
        domains = getattr(charger, "domains", None)
        if domains is not None:
            if len(domains) != self.site_count:
                raise ReproError(
                    f"charger has {len(domains)} domains, router has "
                    f"{self.site_count} sites"
                )
            for site, domain in zip(self.sites, domains):
                site.attach_domain(domain)

    # ------------------------------------------------------------------
    # Resource charging (the physical phase of a granted operation)
    # ------------------------------------------------------------------
    def perform_step(
        self, transaction_id: int, done: Union[Callable[[], None], tuple]
    ) -> None:
        """Charge the transaction's in-flight granted operation.

        Delegates to the attached charger with the sites whose replicas
        executed the operation and the transaction's home site; ``done``
        fires when the physical phase (CPU/disk service plus any network
        delay) completes.  ``done`` may be a typed engine member (a
        ``(kind, *payload)`` tuple) — the charger schedules or dispatches
        it through the engine's kind table.
        """
        charger = self._charger
        if charger is None:
            raise ReproError("no resource charger attached to the router")
        transaction = self.transactions.get(transaction_id)
        if transaction is None:
            raise TransactionStateError(
                f"unknown global transaction {transaction_id}"
            )
        request = transaction.current_request
        if request is None or not request.executed:
            raise TransactionStateError(
                f"global transaction {transaction.gtid} has no executed "
                "operation to charge resources for"
            )
        handles = request.branch_handles
        executed_sites = list(handles) if len(handles) == 1 else sorted(handles)
        charger.perform_operation(executed_sites, transaction.home_site, done)

    def commit_network_delay(self, transaction_id: int) -> float:
        """Network delay of fanning this transaction's commit to its branches.

        The commit protocol decides how many message rounds the fan-out
        costs: one for the one-shot fan-out, two under 2PC (prepare, then
        commit) — each charged to the network model separately.
        """
        if self._charger is None:
            return 0.0
        transaction = self.transactions.get(transaction_id)
        if transaction is None:
            raise TransactionStateError(
                f"unknown global transaction {transaction_id}"
            )
        branches = sorted(transaction.branches)
        total = 0.0
        for _ in range(self.commit_protocol.network_rounds):
            total += self._charger.commit_network_delay(
                branches, transaction.home_site
            )
        return total

    # ------------------------------------------------------------------
    # Aggregated statistics
    # ------------------------------------------------------------------
    @property
    def stats(self) -> SchedulerStatistics:
        """Scheduler counters summed over every site (crashes included).

        With replication, branch-level counters (blocks, aborts, operation
        executions) count once per replica; the router-level
        :attr:`router_stats` holds the once-per-global-transaction view.
        """
        total = SchedulerStatistics()
        for site in self.sites:
            _fold_stats(total, site.stats)
        return total

    def replication_summary(self) -> Dict[str, int]:
        """Deterministic replication-protocol counters for this run.

        Empty for the centralized ``site_count=1`` configuration (there is
        no replication to account for, and the pinned single-site counter
        sets must stay closed); multi-site runs report the protocol's
        message/failover/catch-up overhead plus the router's availability
        and sweep counters.  Feeds the ``replication_*`` counters of
        :meth:`repro.sim.metrics.RunMetrics.counters`.
        """
        if self.site_count == 1:
            return {}
        stats = self.replication.stats
        return {
            "messages": stats.messages,
            "failovers": stats.failovers,
            "catchups": stats.catchups,
            "catchup_objects": stats.catchup_objects,
            "read_unavailable_aborts": self.router_stats.read_unavailable_aborts,
            "write_unavailable_aborts": self.router_stats.write_unavailable_aborts,
            "site_failure_aborts": self.router_stats.site_failure_aborts,
            "cycle_sweeps": self.router_stats.cycle_sweeps,
            "under_replicated_window": stats.under_replicated_window,
        }

    def commit_summary(self) -> Dict[str, int]:
        """Deterministic commit-protocol counters for this run.

        Empty for the centralized ``site_count=1`` configuration (a local
        commit needs no coordination, and the pinned single-site counter
        sets must stay closed); multi-site runs report the protocol's
        prepare/ack traffic, certification outcomes and re-replication
        work.  Feeds the ``commit_*`` counters of
        :meth:`repro.sim.metrics.RunMetrics.counters`.
        """
        if self.site_count == 1:
            return {}
        stats = self.commit_protocol.stats
        return {
            "prepare_rounds": stats.prepare_rounds,
            "prepare_messages": stats.prepare_messages,
            "prepare_acks": stats.prepare_acks,
            "certifications": stats.certifications,
            "certification_aborts": stats.certification_aborts,
            "re_replications": stats.re_replications,
            "re_replicated_objects": stats.re_replicated_objects,
            "forced_reports": stats.forced_reports,
        }

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(
        self, label: Optional[str] = None, home_site: Optional[int] = None
    ) -> GlobalTransaction:
        """Start a new global transaction (branches open lazily per site).

        ``home_site`` is where the transaction's client sits (the origin of
        its network traffic); by default clients are spread round-robin over
        the sites, which with one site is always site 0.
        """
        self._next_gtid += 1
        if home_site is None:
            home_site = (self._next_gtid - 1) % self.site_count
        elif not 0 <= home_site < self.site_count:
            raise ReproError(
                f"home_site {home_site} outside [0, {self.site_count})"
            )
        transaction = GlobalTransaction(
            gtid=self._next_gtid, label=label, home_site=home_site
        )
        self.transactions[transaction.gtid] = transaction
        self.router_stats.begins += 1
        return transaction

    def transaction(self, transaction_id: int) -> GlobalTransaction:
        try:
            return self.transactions[transaction_id]
        except KeyError:
            raise TransactionStateError(
                f"unknown global transaction {transaction_id}"
            ) from None

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def perform(
        self, transaction_id: int, object_name: str, op: str, *args: Any
    ) -> GlobalRequest:
        """Route ``op(*args)`` on ``object_name`` (read-one / write-all)."""
        return self.submit(transaction_id, object_name, Invocation(op, tuple(args)))

    def submit(
        self, transaction_id: int, object_name: str, invocation: Invocation
    ) -> GlobalRequest:
        """Route a prebuilt invocation to the replicas of ``object_name``."""
        transaction = self.transactions.get(transaction_id)
        if transaction is None:
            raise TransactionStateError(
                f"unknown global transaction {transaction_id}"
            )
        if transaction.status is not TransactionStatus.ACTIVE:
            transaction.require(TransactionStatus.ACTIVE)
        previous = transaction.current_request
        if previous is not None and previous.blocked:
            # Mirror the centralized scheduler: a transaction whose last
            # request is still queued cannot issue another one.  Reject
            # before any branch is touched — a partial fan-out would leave
            # replicas divergent.
            raise TransactionStateError(
                f"global transaction {transaction.gtid} has a blocked request "
                f"on {previous.object_name!r}; it cannot issue another operation"
            )
        read_only_ops = self._read_only_ops.get(object_name)
        if read_only_ops is None:
            raise UnknownObjectError(object_name)
        request = GlobalRequest(
            transaction_id=transaction_id,
            object_name=object_name,
            invocation=invocation,
        )
        transaction.current_request = request
        placed = self.placement.sites_for(object_name)
        # Cross-site cycles can only be closed by a dependency edge added
        # during this fan-out; snapshot the target graphs' mutation counters
        # so the (comparatively expensive) union-graph DFS below can be
        # skipped for the common conflict-free operation.  With one site no
        # cross-site cycle can exist — skip the snapshot machinery outright.
        if self.site_count > 1:
            watched_graphs = [
                self.sites[sid].scheduler.graph
                for sid in placed
                if self.sites[sid].status.is_up
            ]
            mutations_before = sum(graph.mutations for graph in watched_graphs)
        else:
            watched_graphs = []
            mutations_before = 0

        is_read_only = read_only_ops.get(invocation.op)
        if is_read_only is None:
            is_read_only = self._is_read_only(object_name, invocation)
        if is_read_only:
            # The protocol picks the read replica set: one readable copy
            # under available-copies and primary-copy (stable-hash rotation,
            # least-loaded tie-break), ``R`` copies under quorum consensus.
            # With one site this always picks site 0.
            targets = self.replication.select_read(object_name, placed, request)
            if not targets:
                self.router_stats.read_unavailable_aborts += 1
                self._unavailable(transaction, request)
                return request
            for sid in targets:
                if transaction.status is not TransactionStatus.ACTIVE:
                    break  # a branch abort cascaded into a global abort
                self._submit_branch(transaction, self.sites[sid], request)
        else:
            targets = self.replication.select_write(object_name, placed, transaction)
            if not targets:
                self.router_stats.write_unavailable_aborts += 1
                self._unavailable(transaction, request)
                return request
            for sid in targets:
                if transaction.status is not TransactionStatus.ACTIVE:
                    break  # a branch abort cascaded into a global abort
                transaction.sites_written.add(sid)
                transaction.written_at.setdefault(sid, set()).add(object_name)
                self._submit_branch(transaction, self.sites[sid], request)

        if (
            self.site_count > 1
            and transaction.status is TransactionStatus.ACTIVE
            and request.branch_handles
            and not request.failed
            and sum(graph.mutations for graph in watched_graphs) != mutations_before
        ):
            self.router_stats.cross_site_cycle_checks += 1
            if self._cycles.closes_cycle(transaction.gtid):
                self.router_stats.cross_site_deadlock_aborts += 1
                self._global_abort(transaction, AbortReason.DEADLOCK, request)
        return request

    def _submit_branch(
        self, transaction: GlobalTransaction, site: Site, request: GlobalRequest
    ) -> None:
        branch = transaction.branches.get(site.site_id)
        if branch is None or branch.generation != site.generation:
            local = site.scheduler.begin(label=transaction.label)
            branch = BranchRef(local_tid=local.tid, generation=site.generation)
            transaction.branches[site.site_id] = branch
            self._local_map[site.site_id][local.tid] = transaction.gtid
        handle = site.scheduler.submit(
            branch.local_tid, request.object_name, request.invocation
        )
        request.branch_handles[site.site_id] = handle

    def _rebind_submit(self) -> None:
        """Bind the fused single-site submit fast path when it is exact.

        With one site and the *stock* replica-selection rules, the general
        :meth:`submit` spends most of its work proving what is statically
        true: every stock placement puts every object at site 0, the base
        protocol's ``select_read`` reduces to "site 0 if the copy is
        readable" (rotation over one candidate is the identity and the
        load tie-break of a single candidate returns it unchanged, with no
        stats mutation), ``select_write`` to "site 0 if writable" (the
        message counter adds ``len(targets) - 1 == 0``), and no cross-site
        cycle can close.  The fast path compiled here inlines exactly that
        residue — precondition checks, request construction, branch
        get-or-create and the local scheduler submit — and bails to the
        general path *before mutating any state* on every unusual
        condition, so errors, unavailability aborts and the pinned event
        stream are bit-identical to the general path.

        The binding is an instance attribute shadowing the method; it is
        dropped when site 0 fails and recomputed on construction, reset and
        recovery.  Subclassed replication protocols or placements that
        override the involved hooks never get the fast path.
        """
        self.__dict__.pop("submit", None)
        if self.site_count != 1:
            return
        replication_cls = type(self.replication)
        if (
            replication_cls.select_read is not ReplicationProtocol.select_read
            or replication_cls.select_write is not ReplicationProtocol.select_write
        ):
            return
        if type(self.placement) not in (
            SingleSitePlacement,
            HashShardedPlacement,
            ReplicatedPlacement,
        ):
            return
        site = self.sites[0]
        if site.status is not SiteStatus.UP:
            return

        transactions = self.transactions
        read_only_cache = self._read_only_ops
        registrations = site._registrations
        unreadable = site.unreadable
        local_map = self._local_map[0]
        general_submit = TransactionRouter.submit
        active = TransactionStatus.ACTIVE
        up = SiteStatus.UP

        def fast_submit(
            transaction_id: int, object_name: str, invocation: Invocation
        ) -> GlobalRequest:
            transaction = transactions.get(transaction_id)
            if transaction is None or transaction.status is not active:
                return general_submit(self, transaction_id, object_name, invocation)
            previous = transaction.current_request
            if previous is not None and previous.blocked:
                return general_submit(self, transaction_id, object_name, invocation)
            read_only_ops = read_only_cache.get(object_name)
            if read_only_ops is None:
                return general_submit(self, transaction_id, object_name, invocation)
            is_read_only = read_only_ops.get(invocation.op)
            if (
                is_read_only is None
                or site.status is not up
                or object_name not in registrations
                or (is_read_only and object_name in unreadable)
            ):
                return general_submit(self, transaction_id, object_name, invocation)
            request = GlobalRequest(
                transaction_id=transaction_id,
                object_name=object_name,
                invocation=invocation,
            )
            transaction.current_request = request
            if not is_read_only:
                transaction.sites_written.add(0)
                written = transaction.written_at.get(0)
                if written is None:
                    written = transaction.written_at[0] = set()
                written.add(object_name)
            branch = transaction.branches.get(0)
            if branch is None or branch.generation != site.generation:
                local = site.scheduler.begin(label=transaction.label)
                branch = BranchRef(local_tid=local.tid, generation=site.generation)
                transaction.branches[0] = branch
                local_map[local.tid] = transaction.gtid
            handle = site.scheduler.submit(branch.local_tid, object_name, invocation)
            request.branch_handles[0] = handle
            return request

        self.submit = fast_submit  # type: ignore[method-assign]

    def _is_read_only(self, object_name: str, invocation: Invocation) -> bool:
        cache = self._read_only_ops[object_name]
        op = invocation.op
        cached = cache.get(op)
        if cached is None:
            spec = self._specs[object_name]
            try:
                cached = spec.operation(op).is_read_only
            except UnknownOperationError:
                cached = False
            cache[op] = cached
        return cached

    def _unavailable(
        self, transaction: GlobalTransaction, request: GlobalRequest
    ) -> None:
        self.router_stats.unavailable_aborts += 1
        self._global_abort(transaction, AbortReason.SITE_UNAVAILABLE, request)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self, transaction_id: int) -> TransactionStatus:
        """Commit at every branch; *when* that is durable is the commit
        protocol's call (one-phase: every branch drained; two-phase:
        certification plus the replication protocol's write condition)."""
        transaction = self.transactions.get(transaction_id)
        if transaction is None:
            raise TransactionStateError(
                f"unknown global transaction {transaction_id}"
            )
        if transaction.status is not TransactionStatus.ACTIVE:
            transaction.require(TransactionStatus.ACTIVE)
        request = transaction.current_request
        if request is not None and request.blocked:
            # Mirror the centralized scheduler: a transaction whose last
            # request is still queued cannot commit.  Reject before touching
            # any branch — committing some branches and then raising at the
            # blocked one would leave the replicas divergent.
            raise TransactionStateError(
                f"global transaction {transaction.gtid} has a blocked request "
                f"on {request.object_name!r}; it cannot commit"
            )
        return self.commit_protocol.commit(transaction)

    def _live_branches(self, transaction: GlobalTransaction) -> Set[int]:
        """Sites whose branch of the transaction can still receive a commit."""
        live: Set[int] = set()
        for site_id, branch in transaction.branches.items():
            site = self.sites[site_id]
            if (
                site.status.is_up
                and branch.generation == site.generation
                and site.scheduler.transactions.get(branch.local_tid) is not None
            ):
                live.add(site_id)
        return live

    def _record_pseudo_commit(self, transaction: GlobalTransaction) -> TransactionStatus:
        """The commit is complete for the caller but not yet durable."""
        transaction.status = TransactionStatus.PSEUDO_COMMITTED
        self.router_stats.pseudo_commits += 1
        for listener in self._listeners:
            listener.on_pseudo_committed(transaction.gtid)
        return TransactionStatus.PSEUDO_COMMITTED

    def _finalize_commit(self, transaction: GlobalTransaction) -> None:
        transaction.status = TransactionStatus.COMMITTED
        self.router_stats.commits += 1
        for listener in self._listeners:
            listener.on_committed(transaction.gtid)
        self._finish(transaction)

    # ------------------------------------------------------------------
    # Abort
    # ------------------------------------------------------------------
    def abort(
        self, transaction_id: int, reason: AbortReason = AbortReason.USER
    ) -> None:
        """Abort a global transaction at every live branch."""
        transaction = self.transaction(transaction_id)
        transaction.require(TransactionStatus.ACTIVE)
        self._global_abort(transaction, reason)

    def _global_abort(
        self,
        transaction: GlobalTransaction,
        reason: AbortReason,
        request: Optional[GlobalRequest] = None,
    ) -> None:
        if transaction.aborting or transaction.status in (
            TransactionStatus.ABORTED,
            TransactionStatus.COMMITTED,
        ):
            return
        transaction.aborting = True
        request = request if request is not None else transaction.current_request
        if request is not None:
            request.failed = True
            request.abort_reason = reason
        for site_id in sorted(transaction.branches):
            branch = transaction.branches[site_id]
            site = self.sites[site_id]
            if not site.status.is_up or branch.generation != site.generation:
                continue
            local = site.scheduler.transactions.get(branch.local_tid)
            if local is None or local.status not in (
                TransactionStatus.ACTIVE,
                TransactionStatus.BLOCKED,
            ):
                continue
            site.scheduler.abort(branch.local_tid, reason)
            self._local_map[site_id].pop(branch.local_tid, None)
        transaction.status = TransactionStatus.ABORTED
        self.router_stats.aborts += 1
        if reason is AbortReason.SITE_FAILURE:
            self.router_stats.site_failure_aborts += 1
        for listener in self._listeners:
            listener.on_aborted(transaction.gtid, reason)
        self._finish(transaction)

    def _finish(self, transaction: GlobalTransaction) -> None:
        """Terminal bookkeeping shared by global commit and abort."""
        transaction.current_request = None
        for site_id, branch in transaction.branches.items():
            self._local_map[site_id].pop(branch.local_tid, None)
        self.replication.on_transaction_finished(transaction)
        self.commit_protocol.on_transaction_finished(transaction)
        if not self.retain_terminated:
            self.transactions.pop(transaction.gtid, None)

    # ------------------------------------------------------------------
    # Site lifecycle
    # ------------------------------------------------------------------
    def fail_site(self, site_id: int) -> None:
        """Crash a site: its scheduler state is lost.

        Available-copies rule: every global transaction that wrote to the
        site (its uncommitted writes there are gone) or whose in-flight
        operation is blocked there (the queued request is gone) aborts.
        Completed transactions survive; what a pseudo-committed branch lost
        with the site means is the commit protocol's call — one-phase drops
        it from the outstanding set (its durable commit can no longer be
        reported, the surviving replicas carry its effects), two-phase
        keeps the durability requirement and re-replicates under-stamped
        objects to spare live replicas.
        """
        site = self.sites[site_id]
        if not site.status.is_up:
            raise ReproError(f"site {site_id} is already down")
        generation = site.generation
        affected = [
            transaction
            for transaction in list(self.transactions.values())
            if site_id in transaction.branches
            and transaction.branches[site_id].generation == generation
        ]
        self._local_map[site_id].clear()
        self._cycles.retire_graph(site.scheduler.graph.mutations)
        site.fail()
        # The fused submit binding (if any) assumed the site was up.
        self.__dict__.pop("submit", None)
        self.router_stats.site_failures += 1
        self.replication.on_site_failed(site_id)
        for transaction in affected:
            if transaction.status in (TransactionStatus.ABORTED, TransactionStatus.COMMITTED):
                continue
            if transaction.status is TransactionStatus.PSEUDO_COMMITTED:
                self.commit_protocol.on_pseudo_branch_lost(transaction, site_id)
                continue
            request = transaction.current_request
            branch_handle = (
                request.branch_handles.get(site_id) if request is not None else None
            )
            if site_id in transaction.sites_written or (
                branch_handle is not None and branch_handle.blocked
            ):
                self._global_abort(transaction, AbortReason.SITE_FAILURE)
            else:
                # Read-only contact with the lost site: the values are already
                # in hand and other replicas back them; just drop the branch.
                transaction.branches.pop(site_id, None)
        # The commit protocol reacts last, with the fallout settled: 2PC
        # re-replicates under-stamped objects to spare live replicas and
        # re-checks the commits it is holding for their W stamps.
        self.commit_protocol.on_site_failed(site_id)

    def recover_site(self, site_id: int) -> None:
        """Bring a failed site back up.

        What the recovered copies are worth is the protocol's call: under
        available-copies they stay unreadable until a committed write lands
        (see :meth:`Site.recover`); quorum consensus and primary-copy catch
        the site up from a live replica so its copies serve reads at once.
        """
        site = self.sites[site_id]
        scheduler = site.recover()
        scheduler.add_listener(self._relays[site_id])
        self.router_stats.site_recoveries += 1
        self.replication.on_site_recovered(site)
        # After the catch-up: recovered stamps may satisfy a held 2PC commit.
        self.commit_protocol.on_site_recovered(site)
        self._rebind_submit()

    # ------------------------------------------------------------------
    # Relay handlers (local scheduler events -> global bookkeeping)
    # ------------------------------------------------------------------
    def _on_local_granted(
        self, site: Site, local_tid: int, handle: RequestHandle, event: Event
    ) -> None:
        gtid = self._local_map[site.site_id].get(local_tid)
        if gtid is None:
            return
        transaction = self.transactions.get(gtid)
        if transaction is None or transaction.status is not TransactionStatus.ACTIVE:
            return
        request = transaction.current_request
        if (
            request is None
            or request.failed
            or request.branch_handles.get(site.site_id) is not handle
        ):
            return
        if request.executed:
            for listener in self._listeners:
                listener.on_granted(gtid, request, event)

    def _on_local_aborted(self, site: Site, local_tid: int, reason: AbortReason) -> None:
        gtid = self._local_map[site.site_id].pop(local_tid, None)
        if gtid is None:
            return
        transaction = self.transactions.get(gtid)
        if (
            transaction is None
            or transaction.aborting
            or transaction.status
            in (TransactionStatus.ABORTED, TransactionStatus.COMMITTED)
        ):
            return
        # A protocol abort at one branch (deadlock or dependency-cycle
        # victim) aborts the global transaction at every other branch.
        self._global_abort(transaction, reason)

    def _on_local_committed(self, site: Site, local_tid: int) -> None:
        gtid = self._local_map[site.site_id].pop(local_tid, None)
        if gtid is None:
            return
        transaction = self.transactions.get(gtid)
        if transaction is None:
            return
        # The replication protocol reacts to the durable local commit first
        # (available-copies marks recovering copies the transaction wrote
        # here readable again, quorum consensus additionally stamps the new
        # copy versions), then the commit protocol treats it as the
        # branch's ack and decides whether the global commit is durable.
        self.replication.on_branch_committed(site, transaction)
        self.commit_protocol.on_branch_committed(site, transaction)

    # ------------------------------------------------------------------
    # Cross-site cycle detection (delegated to the UnionCycleDetector)
    # ------------------------------------------------------------------
    def sweep_global_cycles(self) -> int:
        """Detect and break union-graph cycles closed outside a submit.

        Run periodically from an engine event by the simulator; see
        :meth:`repro.distributed.cycles.UnionCycleDetector.sweep` for the
        full story.  Returns the number of victims aborted.
        """
        return self._cycles.sweep()

    def _union_mutations(self) -> int:
        """Monotonic mutation total of the union graph, crashes included."""
        return self._cycles.union_mutations()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_sites(self) -> List[int]:
        """Ids of the sites currently up."""
        return [site.site_id for site in self.sites if site.status.is_up]

    def object_state(self, name: str, site_id: Optional[int] = None) -> Any:
        """The visible state of one copy (default: first readable copy)."""
        if site_id is None:
            site_id = next(
                (sid for sid in self.placement.sites_for(name) if self.sites[sid].readable(name)),
                None,
            )
            if site_id is None:
                raise UnknownObjectError(f"{name}: no readable copy")
        return self.sites[site_id].scheduler.object_state(name)

    def committed_state(self, name: str, site_id: Optional[int] = None) -> Any:
        """The committed state of one copy (default: first readable copy)."""
        if site_id is None:
            site_id = next(
                (sid for sid in self.placement.sites_for(name) if self.sites[sid].readable(name)),
                None,
            )
            if site_id is None:
                raise UnknownObjectError(f"{name}: no readable copy")
        return self.sites[site_id].scheduler.committed_state(name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        up = len(self.live_sites())
        return (
            f"<TransactionRouter sites={self.site_count} up={up} "
            f"placement={self.placement.name!r} "
            f"protocol={self.replication.name!r} "
            f"commit={self.commit_protocol.name!r} policy={self.policy}>"
        )
