"""Pluggable commit protocols for the transaction router.

The :class:`~repro.distributed.router.TransactionRouter` owns the shared
commit machinery — validation, the pseudo-commit/durable-commit state
transitions, listener notification and terminal bookkeeping — and delegates
*when a distributed commit may report durable* to a :class:`CommitProtocol`:

``commit``
    orchestrate the commit of one global transaction over its branches;
``on_branch_committed``
    a branch durably committed locally (the participant's ack);
``on_pseudo_branch_lost``
    a site crash destroyed a branch that was still awaiting its durable
    local commit;
``on_site_failed`` / ``on_site_recovered``
    protocol consequences of the site lifecycle, run after the router's own
    failure/recovery processing.

Two protocols are provided:

* :class:`OnePhase` — the extracted baseline: one commit fan-out to every
  live branch, durable once every branch drained, and the available-copies
  rule that a pseudo-committed branch lost with its site is simply dropped
  from the outstanding set.  Its decision stream is bit-identical to the
  pre-refactor router — including the known weakness that, under
  :class:`~repro.distributed.replication.QuorumConsensus`, a commit can
  finalize *under-replicated* (fewer than ``W`` stamped live copies, see
  the ``replication_under_replicated_window`` counter).
* :class:`TwoPhase` — a 2PC-style coordinator.  The prepare step certifies
  the commit against the union dependency graph *before any branch stamps
  durable* (a cross-site dependency cycle closed during a termination
  cascade — the race the periodic sweep can miss — aborts a victim instead
  of reaching a circular global commit order), and the commit reports
  durable only once the replication protocol's write-durability condition
  holds: under quorum consensus, ``W`` live stamped copies per written
  object.  A participant branch lost to a crash no longer silently drops
  the requirement — the commit stays pseudo-committed and
  ``on_site_failed`` triggers *re-replication* of under-stamped objects to
  spare live replicas, restoring full ``W``-replication without waiting
  for the crashed site to recover.  The extra message round is charged to
  the network model (``msg_time`` per round) and counted in
  :class:`CommitStatistics`.  An optional ``prepare_timeout`` bounds the
  wait: a commit still under-stamped after that much simulated time is
  force-reported (and shows up in the under-replication window counter),
  trading the safety window back for latency.

With one site both protocols degenerate to the same local commit, and the
router reports no ``commit_*`` counters — the pinned centralized counter
sets stay closed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import (
    TYPE_CHECKING,
    Callable,
    Optional,
    Sequence,
    Set,
)

from ..core.errors import ReproError, SimulationError
from ..core.requests import AbortReason
from ..core.transaction import TransactionStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .router import GlobalTransaction, TransactionRouter
    from .site import Site

__all__ = [
    "CommitStatistics",
    "CommitProtocol",
    "OnePhase",
    "TwoPhase",
    "make_commit_protocol",
]


@dataclass
class CommitStatistics:
    """Commit-protocol overhead counters (deterministic ints).

    ``prepare_messages`` models the PREPARE round's traffic — one message
    per branch beyond the first, the same home-agnostic fan-out accounting
    as the replication layer's ``messages`` counter — and ``prepare_acks``
    the durable local commits the coordinator observed.  ``re_replications`` counts
    restore passes that copied at least one object,
    ``re_replicated_objects`` the copies installed.  ``forced_reports``
    counts commits the ``prepare_timeout`` reported while still
    under-stamped.
    """

    prepare_rounds: int = 0
    prepare_messages: int = 0
    prepare_acks: int = 0
    certifications: int = 0
    certification_aborts: int = 0
    re_replications: int = 0
    re_replicated_objects: int = 0
    forced_reports: int = 0


class CommitProtocol:
    """When a global commit may report durable, for one router.

    A protocol instance is attached to exactly one router (it may keep
    per-run state — pending commits awaiting their durability condition)
    and owns the commit orchestration the router delegates.
    """

    #: Short name used in parameters and reports.
    name = "abstract"
    #: Message rounds the commit fan-out pays on the network model: the
    #: one-shot fan-out travels once, 2PC adds the prepare round.
    network_rounds = 1

    def __init__(self) -> None:
        self.router: "TransactionRouter" = None  # type: ignore[assignment]
        self.stats = CommitStatistics()
        #: Engine hook for future work (the prepare timeout); ``None`` for
        #: direct router users, who drive no simulated clock.
        self._schedule: Optional[Callable[[float, Callable[[], None]], None]] = None
        #: Typed event kind for the prepare timeout, registered when the
        #: clock owner also hands over its kind registry (the simulator's
        #: engine); ``0`` means "not registered — schedule a partial".
        self._expire_kind = 0

    def attach(self, router: "TransactionRouter") -> None:
        """Bind the protocol to its router (called once, at construction)."""
        if self.router is not None:
            raise ReproError(
                f"commit protocol {self.name!r} is already attached; "
                "protocols hold per-run state and must not be shared"
            )
        self.router = router

    def attach_clock(
        self,
        schedule: Callable[[float, Callable[[], None]], None],
        register_kind: Optional[Callable[[Callable[[tuple], None]], int]] = None,
    ) -> None:
        """Give the protocol a way to schedule future work (engine events).

        ``register_kind`` (the engine's ``register_kind``, when the clock
        belongs to an :class:`~repro.sim.engine.EventEngine`) additionally
        lets the protocol register its recurring timeout as a typed event
        kind, so each scheduled timeout is a plain ``(kind, gtid)`` tuple
        instead of a ``functools.partial`` allocation.
        """
        self._schedule = schedule
        if register_kind is not None and self._expire_kind == 0:
            self._expire_kind = register_kind(self._expire_member)

    def _expire_member(self, member: tuple) -> None:
        """Typed drain handler for the prepare timeout (no-op by default)."""

    def reset(self) -> None:
        """Discard per-run state for a reused router.

        Router and clock attachments are wiring, not run state — both are
        kept (the simulator resets its engine in place, so the scheduled
        clock stays valid).
        """
        self.stats = CommitStatistics()

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def _fan_out(self, transaction: "GlobalTransaction", live: Set[int]) -> None:
        """Issue the local commit at every live branch (the commit round).

        A branch with no commit dependencies durably commits synchronously
        (its relay drops the site from ``outstanding``); a branch that
        pseudo-commits locally stays in and acks when its dependencies
        drain.
        """
        router = self.router
        transaction.outstanding = set(live)
        router.replication.on_commit_fanout(sorted(live))
        for site_id in sorted(live):
            branch = transaction.branches[site_id]
            router.sites[site_id].scheduler.commit(branch.local_tid)

    def _branch_resolved(self, transaction: "GlobalTransaction", site_id: int) -> None:
        """An outstanding branch acked (durable local commit) or died.

        Shared by the ack and branch-lost paths: the site leaves the
        outstanding set either way, and when it was the last one the
        protocol decides what "all branches resolved" means
        (:meth:`_all_branches_resolved` — report durable, or check the
        write-durability condition first).
        """
        if transaction.outstanding is None:
            return
        transaction.outstanding.discard(site_id)
        if (
            not transaction.outstanding
            and transaction.status is TransactionStatus.PSEUDO_COMMITTED
        ):
            self._all_branches_resolved(transaction)

    def _all_branches_resolved(self, transaction: "GlobalTransaction") -> None:
        """Every branch acked or died; decide whether the commit reports."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Hooks the router delegates to
    # ------------------------------------------------------------------
    def commit(self, transaction: "GlobalTransaction") -> TransactionStatus:
        """Commit one validated, ACTIVE global transaction."""
        raise NotImplementedError

    def on_branch_committed(self, site: "Site", transaction: "GlobalTransaction") -> None:
        """A branch durably committed at ``site`` (the participant's ack)."""

    def on_pseudo_branch_lost(self, transaction: "GlobalTransaction", site_id: int) -> None:
        """A crash destroyed a branch still awaiting its durable commit."""

    def on_site_failed(self, site_id: int) -> None:
        """A site crashed; runs after the router aborted/drained the fallout."""

    def on_site_recovered(self, site: "Site") -> None:
        """A site came back up; runs after the replication catch-up."""

    def on_transaction_finished(self, transaction: "GlobalTransaction") -> None:
        """A global transaction reached a terminal state (commit or abort)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class OnePhase(CommitProtocol):
    """The extracted baseline: one fan-out, durable when every branch drains.

    Every decision — fan-out order, the drain bookkeeping, the rule that a
    pseudo-committed branch lost with its site is dropped from the
    outstanding set (finalizing the commit if it was the last one) — is the
    pre-refactor router's, which keeps all pinned equivalence streams
    bit-identical.
    """

    name = "one-phase"

    def commit(self, transaction: "GlobalTransaction") -> TransactionStatus:
        router = self.router
        self._fan_out(transaction, router._live_branches(transaction))
        if transaction.outstanding:
            return router._record_pseudo_commit(transaction)
        router._finalize_commit(transaction)
        return TransactionStatus.COMMITTED

    def on_branch_committed(self, site: "Site", transaction: "GlobalTransaction") -> None:
        self._branch_resolved(transaction, site.site_id)

    def on_pseudo_branch_lost(self, transaction: "GlobalTransaction", site_id: int) -> None:
        """Available-copies rule: the lost branch's durable commit can no
        longer be reported; the surviving replicas carry its effects."""
        self._branch_resolved(transaction, site_id)

    def _all_branches_resolved(self, transaction: "GlobalTransaction") -> None:
        self.router._finalize_commit(transaction)


class TwoPhase(CommitProtocol):
    """2PC-style coordinator: certify, prepare, report durable at ``W`` acks.

    The prepare step re-checks the union dependency graph *before any
    branch stamps durable*: a dependency cycle through the committing
    transaction — closed, for instance, by a grant inside another
    transaction's termination cascade between two periodic sweeps — aborts
    its youngest ``ACTIVE`` member (the sweep's victim rule) instead of
    reaching the per-branch drain, where each site honours only its local
    edges and the members would durably commit in a circular global order.

    Durability is the replication protocol's write condition, re-checked on
    every ack: under :class:`~repro.distributed.replication.QuorumConsensus`
    a commit reports durable only once each written object has ``W`` live
    stamped copies.  A branch lost to a crash removes its ack but not the
    requirement: the commit stays pseudo-committed and the protocol
    *re-replicates* under-stamped objects to spare live replicas
    (``on_site_failed``), restoring full ``W``-replication without waiting
    for recovery.  When no spare can take the copy the commit waits — for a
    recovery catch-up, a spare freed by a finishing transaction, or the
    optional ``prepare_timeout``, which force-reports the commit
    under-stamped (counted in ``forced_reports`` and in the replication
    protocol's under-replication window).

    Replication protocols without stamped write quorums (available-copies,
    primary-copy) have no ``W`` condition: for them the protocol keeps the
    one-phase drop rule but still certifies and pays the prepare round.
    """

    name = "two-phase"
    network_rounds = 2

    def __init__(self, prepare_timeout: Optional[float] = None):
        super().__init__()
        if prepare_timeout is not None and prepare_timeout <= 0:
            raise SimulationError("prepare_timeout must be positive (or None)")
        self.prepare_timeout = prepare_timeout
        #: Pseudo-committed transactions whose live branches all acked but
        #: whose durability condition is still unmet (under-stamped).
        self._awaiting: Set[int] = set()
        self._rechecking = False

    def reset(self) -> None:
        super().reset()
        self._awaiting.clear()
        self._rechecking = False

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------
    def commit(self, transaction: "GlobalTransaction") -> TransactionStatus:
        router = self.router
        self.stats.prepare_rounds += 1
        if not self._certify(transaction):
            return transaction.status  # the committer was the victim
        live = router._live_branches(transaction)
        self.stats.prepare_messages += max(0, len(live) - 1)
        self._fan_out(transaction, live)
        if not transaction.outstanding and self._report_durable(transaction):
            return TransactionStatus.COMMITTED
        # Prepared everywhere it could be: the caller sees a completion
        # (pseudo-commit) while the durable report waits for the remaining
        # acks and the write-durability condition.
        return router._record_pseudo_commit(transaction)

    def _certify(self, transaction: "GlobalTransaction") -> bool:
        """Abort victims until no union-graph cycle runs through the committer.

        Returns ``False`` when the committing transaction itself was the
        victim (it was the youngest abortable member, or a victim's abort
        cascade reached it) — its commit must not proceed.
        """
        router = self.router
        if router.site_count <= 1:
            return True
        while True:
            self.stats.certifications += 1
            cycle = router._cycles.find_cycle_through(transaction.gtid)
            if cycle is None:
                return True
            victim_gtid = max(
                gtid
                for gtid in cycle
                if router.transactions[gtid].status is TransactionStatus.ACTIVE
            )
            self.stats.certification_aborts += 1
            router.router_stats.cross_site_deadlock_aborts += 1
            victim = router.transactions[victim_gtid]
            if victim is transaction:
                router._global_abort(transaction, AbortReason.DEADLOCK)
                return False
            router._global_abort(victim, AbortReason.DEADLOCK)
            if transaction.status is not TransactionStatus.ACTIVE:
                return False  # the victim's cascade took the committer down

    # ------------------------------------------------------------------
    # Acks and the durability condition
    # ------------------------------------------------------------------
    def on_branch_committed(self, site: "Site", transaction: "GlobalTransaction") -> None:
        self.stats.prepare_acks += 1
        self._branch_resolved(transaction, site.site_id)

    def on_pseudo_branch_lost(self, transaction: "GlobalTransaction", site_id: int) -> None:
        """The dead branch can never ack; the durability condition remains."""
        self._branch_resolved(transaction, site_id)

    def _all_branches_resolved(self, transaction: "GlobalTransaction") -> None:
        self._report_durable(transaction)

    def _durability_met(self, transaction: "GlobalTransaction") -> bool:
        """The replication protocol's write-durability condition."""
        protocol = self.router.replication
        deficit = getattr(protocol, "write_stamp_deficit", None)
        if deficit is None:
            return True  # no stamped quorums: the surviving acks suffice
        return all(
            deficit(name, transaction.gtid) == 0
            for name in sorted(transaction.written_objects())
        )

    def _report_durable(self, transaction: "GlobalTransaction") -> bool:
        """Finalize if the durability condition holds (restoring if needed)."""
        if not self._durability_met(transaction):
            self._restore(sorted(transaction.written_objects()))
            if not self._durability_met(transaction):
                self._hold(transaction)
                return False
        self._awaiting.discard(transaction.gtid)
        self.router._finalize_commit(transaction)
        return True

    def _hold(self, transaction: "GlobalTransaction") -> None:
        if transaction.gtid in self._awaiting:
            return
        self._awaiting.add(transaction.gtid)
        if self.prepare_timeout is not None and self._schedule is not None:
            if self._expire_kind:
                # Typed member: the engine drains it straight into
                # ``_expire_member`` with no partial allocated per hold.
                self._schedule(
                    self.prepare_timeout,
                    (self._expire_kind, transaction.gtid),  # type: ignore[arg-type]
                )
            else:
                self._schedule(
                    self.prepare_timeout, partial(self._expire, transaction.gtid)
                )

    def _expire_member(self, member: tuple) -> None:
        self._expire(member[1])

    def _expire(self, gtid: int) -> None:
        """The prepare timeout: report the commit even while under-stamped."""
        if gtid not in self._awaiting:
            return
        self._awaiting.discard(gtid)
        transaction = self.router.transactions.get(gtid)
        if (
            transaction is None
            or transaction.status is not TransactionStatus.PSEUDO_COMMITTED
        ):
            return
        # The condition may have been met since the hold (another
        # transaction's drain can stamp this commit's objects without any
        # recheck firing): only a report that is genuinely still
        # under-stamped counts as forced.
        if not self._durability_met(transaction):
            self.stats.forced_reports += 1
        self.router._finalize_commit(transaction)

    # ------------------------------------------------------------------
    # Re-replication and the pending-commit rechecks
    # ------------------------------------------------------------------
    def _restore(self, names: Optional[Sequence[str]] = None) -> None:
        """Restore full write-replication of under-stamped objects."""
        protocol = self.router.replication
        restore = getattr(protocol, "restore_write_replication", None)
        if restore is None:
            return
        copied = restore(names)
        if copied:
            self.stats.re_replications += 1
            self.stats.re_replicated_objects += copied

    def _recheck_awaiting(self) -> None:
        """Finalize held commits whose durability condition newly holds."""
        if self._rechecking:
            return
        self._rechecking = True
        try:
            for gtid in sorted(self._awaiting):
                if gtid not in self._awaiting:
                    continue  # finalized by an earlier iteration's cascade
                transaction = self.router.transactions.get(gtid)
                if (
                    transaction is None
                    or transaction.status is not TransactionStatus.PSEUDO_COMMITTED
                ):
                    self._awaiting.discard(gtid)
                    continue
                if self._durability_met(transaction):
                    self._awaiting.discard(gtid)
                    self.router._finalize_commit(transaction)
        finally:
            self._rechecking = False

    def on_site_failed(self, site_id: int) -> None:
        """Re-replicate under-stamped objects, then re-check held commits."""
        self._restore()
        self._recheck_awaiting()

    def on_site_recovered(self, site: "Site") -> None:
        """The replication catch-up ran first: stamps may have returned."""
        self._recheck_awaiting()

    def on_transaction_finished(self, transaction: "GlobalTransaction") -> None:
        self._awaiting.discard(transaction.gtid)
        if self._awaiting and not self._rechecking:
            # The finished transaction may have freed a spare copy a restore
            # skipped (in-flight work blocks install_committed): retry — but
            # only for the objects the held commits actually wait on, not
            # the whole database, since this runs on every finish.
            self._restore(self._awaiting_objects())
            self._recheck_awaiting()

    def _awaiting_objects(self) -> Sequence[str]:
        """Union of the held commits' written objects, sorted."""
        names: Set[str] = set()
        for gtid in sorted(self._awaiting):
            held = self.router.transactions.get(gtid)
            if held is not None:
                names.update(held.written_objects())
        return sorted(names)


_PROTOCOLS = {protocol.name: protocol for protocol in (OnePhase, TwoPhase)}


def make_commit_protocol(
    kind: str, prepare_timeout: Optional[float] = None
) -> CommitProtocol:
    """Construct the commit protocol named by ``kind``.

    ``kind`` is ``"one-phase"`` or ``"two-phase"`` (the value of the
    ``commit_protocol`` simulation parameter and of the CLI's
    ``--commit-protocol`` flag); ``prepare_timeout`` only applies to — and
    is only accepted for — the two-phase protocol.
    """
    try:
        protocol = _PROTOCOLS[kind]
    except KeyError:
        raise SimulationError(
            f"unknown commit protocol {kind!r} (expected one of {sorted(_PROTOCOLS)})"
        ) from None
    if protocol is TwoPhase:
        return TwoPhase(prepare_timeout=prepare_timeout)
    if prepare_timeout is not None:
        raise SimulationError(
            f"prepare_timeout only applies to the 'two-phase' protocol, not {kind!r}"
        )
    return protocol()
