"""Placement policies: which sites hold a copy of which object.

The multi-site layer separates *where data lives* from *how operations are
routed*.  A :class:`PlacementPolicy` answers one question — the ordered tuple
of site ids holding a copy of a named object — and the
:class:`~repro.distributed.router.TransactionRouter` derives everything else
from it: reads go to one readable copy (*read-one*), writes fan out to every
live copy (*write-all-available*), and an object is *replicated* exactly when
its placement names more than one site.

Three policies are provided:

* :class:`SingleSitePlacement` — everything on site 0; with one site this is
  today's centralized system, bit-for-bit;
* :class:`HashShardedPlacement` — each object on exactly one site, chosen by a
  stable hash of its name (CRC32, so the assignment is identical across
  processes and interpreter versions — the same reason
  :meth:`repro.sim.random_source.RandomSource.spawn` uses CRC32);
* :class:`ReplicatedPlacement` — every object on every site (the
  available-copies configuration the failure/recovery protocol targets).
"""

from __future__ import annotations

import zlib
from typing import Tuple

from ..core.errors import SimulationError

__all__ = [
    "PlacementPolicy",
    "SingleSitePlacement",
    "HashShardedPlacement",
    "ReplicatedPlacement",
    "make_placement",
]


class PlacementPolicy:
    """Maps object names to the sites that hold a copy."""

    #: Short name used in parameters and reports.
    name = "abstract"

    def __init__(self, site_count: int):
        if site_count < 1:
            raise SimulationError("site_count must be at least 1")
        self.site_count = site_count

    def sites_for(self, object_name: str) -> Tuple[int, ...]:
        """The ordered site ids holding a copy of ``object_name``."""
        raise NotImplementedError

    def is_replicated(self, object_name: str) -> bool:
        """True when more than one site holds a copy of the object."""
        return len(self.sites_for(object_name)) > 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} sites={self.site_count}>"


class SingleSitePlacement(PlacementPolicy):
    """Everything lives on site 0 (the centralized configuration)."""

    name = "single"

    def sites_for(self, object_name: str) -> Tuple[int, ...]:
        return (0,)


class HashShardedPlacement(PlacementPolicy):
    """Each object on exactly one site, by a stable hash of its name."""

    name = "hash"

    def sites_for(self, object_name: str) -> Tuple[int, ...]:
        shard = zlib.crc32(object_name.encode("utf-8")) % self.site_count
        return (shard,)


class ReplicatedPlacement(PlacementPolicy):
    """Every object on every site (available-copies replication)."""

    name = "copies"

    def __init__(self, site_count: int):
        super().__init__(site_count)
        self._all_sites = tuple(range(site_count))

    def sites_for(self, object_name: str) -> Tuple[int, ...]:
        return self._all_sites


_PLACEMENTS = {
    policy.name: policy
    for policy in (SingleSitePlacement, HashShardedPlacement, ReplicatedPlacement)
}


def make_placement(kind: str, site_count: int) -> PlacementPolicy:
    """Construct the placement policy named by ``kind``.

    ``kind`` is one of ``"single"``, ``"hash"`` or ``"copies"`` (the value of
    the ``replication`` simulation parameter and of the CLI's
    ``--replication`` flag).
    """
    try:
        policy = _PLACEMENTS[kind]
    except KeyError:
        raise SimulationError(
            f"unknown replication kind {kind!r} (expected one of {sorted(_PLACEMENTS)})"
        ) from None
    return policy(site_count)
