"""Multi-site execution layer: router, sites, placement, replication.

This package turns the centralized scheduler into a distributed system in the
style of the classical replicated-data exercises (and of the paper's outlook
section): a :class:`TransactionRouter` owning global transaction ids routes
operations over per-site :class:`Site` units (each wrapping its own
:class:`~repro.core.scheduler.Scheduler` and concurrency-control backend)
according to a pluggable :class:`PlacementPolicy`, with a pluggable
:class:`ReplicationProtocol` deciding replica selection, failure
consequences and recovery semantics — available-copies (read-one /
write-all-available), version-numbered quorum consensus, or primary-copy
with deterministic failover — plus scripted site failure and recovery with
catch-up.  A pluggable :class:`CommitProtocol` decides when a distributed
commit may report durable: the one-shot fan-out baseline, or 2PC with
commit-time cycle certification, W-ack durability and failure-triggered
re-replication.

See :mod:`repro.distributed.router`, :mod:`repro.distributed.replication`
and :mod:`repro.distributed.commit` for the protocol details.
"""

from .commit import (
    CommitProtocol,
    CommitStatistics,
    OnePhase,
    TwoPhase,
    make_commit_protocol,
)
from .cycles import UnionCycleDetector
from .placement import (
    HashShardedPlacement,
    PlacementPolicy,
    ReplicatedPlacement,
    SingleSitePlacement,
    make_placement,
)
from .replication import (
    AvailableCopies,
    PrimaryCopy,
    QuorumConsensus,
    ReplicationProtocol,
    ReplicationStatistics,
    make_replication_protocol,
)
from .router import (
    BranchRef,
    GlobalRequest,
    GlobalTransaction,
    RouterStatistics,
    TransactionRouter,
)
from .site import Site, SiteStatus

# The simulator obtains its router through the seam in
# :mod:`repro.sim.routing` so that ``repro.sim`` never imports this package
# (the REP004 layering rule); installing the constructor here closes the loop.
from ..sim.routing import register_router_factory

register_router_factory(TransactionRouter)

__all__ = [
    "AvailableCopies",
    "BranchRef",
    "CommitProtocol",
    "CommitStatistics",
    "GlobalRequest",
    "GlobalTransaction",
    "HashShardedPlacement",
    "OnePhase",
    "PlacementPolicy",
    "PrimaryCopy",
    "QuorumConsensus",
    "ReplicatedPlacement",
    "ReplicationProtocol",
    "ReplicationStatistics",
    "RouterStatistics",
    "SingleSitePlacement",
    "Site",
    "SiteStatus",
    "TransactionRouter",
    "TwoPhase",
    "UnionCycleDetector",
    "make_commit_protocol",
    "make_placement",
    "make_replication_protocol",
]
