"""Multi-site execution layer: router, sites, placement, replication.

This package turns the centralized scheduler into a distributed system in the
style of the classical replicated-data exercises (and of the paper's outlook
section): a :class:`TransactionRouter` owning global transaction ids routes
operations over per-site :class:`Site` units (each wrapping its own
:class:`~repro.core.scheduler.Scheduler` and concurrency-control backend)
according to a pluggable :class:`PlacementPolicy`, with available-copies
replication — read-one / write-all-available — and scripted site failure and
recovery.

See :mod:`repro.distributed.router` for the protocol details.
"""

from .placement import (
    HashShardedPlacement,
    PlacementPolicy,
    ReplicatedPlacement,
    SingleSitePlacement,
    make_placement,
)
from .router import (
    BranchRef,
    GlobalRequest,
    GlobalTransaction,
    RouterStatistics,
    TransactionRouter,
)
from .site import Site, SiteStatus

__all__ = [
    "BranchRef",
    "GlobalRequest",
    "GlobalTransaction",
    "HashShardedPlacement",
    "PlacementPolicy",
    "ReplicatedPlacement",
    "RouterStatistics",
    "SingleSitePlacement",
    "Site",
    "SiteStatus",
    "TransactionRouter",
    "make_placement",
]
