"""Pluggable replication protocols for the transaction router.

The :class:`~repro.distributed.router.TransactionRouter` owns the machinery
every replicated execution needs — global transaction ids, lazy per-site
branches, fan-out bookkeeping, the failure-abort rules, statistics and
listeners — and delegates the replica-placement *decisions* to a
:class:`ReplicationProtocol`:

``select_read`` / ``select_write``
    which replica copies an operation executes at (empty = unavailable);
``on_branch_committed``
    what a durable local commit means for the copy (available-copies
    readability, quorum version bumps);
``on_site_failed`` / ``on_site_recovered``
    protocol consequences of the site lifecycle (primary failover election,
    catch-up recovery from a live replica).

Three protocols are provided:

* :class:`AvailableCopies` — the extracted baseline: read-one over the
  readable copies (stable-hash rotation, least-loaded tie-break),
  write-all-available, and the recovering-copy rule — a recovered replicated
  copy stays unreadable until a transaction that wrote it there durably
  commits.  Its decision stream is bit-identical to the pre-refactor router.
* :class:`QuorumConsensus` — version-numbered read/write quorums with
  ``R + W > N`` and ``2W > N``: reads contact ``R`` readable copies and
  serve the highest version, writes land at ``W`` live copies and bump
  their versions at durable commit.  Recovery catch-up copies committed state from the
  freshest live replica, so reads survive minority failures without the
  available-copies unreadable window.
* :class:`PrimaryCopy` — writes funnel through a per-placement primary
  (propagated eagerly to every live backup), reads are served by any live
  replica, and a primary crash triggers a deterministic failover election
  (lowest live site id).  Recovery catch-up copies committed state from the
  freshest live replica, so recovered replicas serve reads immediately.

Both catch-up protocols share per-copy version bookkeeping
(:class:`_VersionedCatchUp`): recovery copies only from strictly fresher
peers, and a recovered copy becomes readable only once its version has
reached the object's highest reported-committed version — a copy left
behind a reported commit (its crash dropped a pseudo-committed branch
before the durable stamp landed) keeps the unreadable window as a safety
net instead of serving stale data.

Protocol overheads are counted in :class:`ReplicationStatistics` (messages,
failovers, catch-up events) and surface as ``replication_*`` counters in
:meth:`repro.sim.metrics.RunMetrics.counters`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import ReproError, SimulationError
from ..core.transaction import TransactionStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .router import GlobalRequest, GlobalTransaction, TransactionRouter
    from .site import Site

__all__ = [
    "ReplicationStatistics",
    "ReplicationProtocol",
    "AvailableCopies",
    "QuorumConsensus",
    "PrimaryCopy",
    "make_replication_protocol",
]


@dataclass
class ReplicationStatistics:
    """Protocol-level overhead counters (deterministic ints).

    ``messages`` models replica-coordination traffic: one message per extra
    replica contacted by a read or write fan-out, per branch of a commit
    fan-out, per object copied during catch-up, and per peer notified of a
    failover election.  It is protocol accounting, independent of whether a
    ``msg_time`` network cost is simulated.
    """

    messages: int = 0
    failovers: int = 0
    catchups: int = 0
    catchup_objects: int = 0
    #: Quorum commits reported durable with fewer than ``W`` live stamped
    #: copies of a written object (one count per under-stamped object).
    #: This is the under-replication window the ROADMAP documented: the
    #: one-phase commit protocol opens it whenever a crash drops a
    #: pseudo-committed branch, the two-phase protocol's W-ack durability
    #: plus re-replication closes it (a nonzero value under 2PC means the
    #: ``prepare_timeout`` force-reported a commit).
    under_replicated_window: int = 0


class ReplicationProtocol:
    """Replica-set selection and lifecycle rules for one router.

    A protocol instance is attached to exactly one router (it may keep
    per-run state — quorum versions, the elected primaries) and answers the
    questions the router fans out on.  The shared default implementations
    are the available-copies rules; subclasses override what differs.
    """

    #: Short name used in parameters and reports.
    name = "abstract"

    def __init__(self) -> None:
        self.router: "TransactionRouter" = None  # type: ignore[assignment]
        self.stats = ReplicationStatistics()

    def attach(self, router: "TransactionRouter") -> None:
        """Bind the protocol to its router (called once, at construction)."""
        if self.router is not None:
            raise ReproError(
                f"replication protocol {self.name!r} is already attached; "
                "protocols hold per-run state and must not be shared"
            )
        self.router = router

    def reset(self) -> None:
        """Discard per-run state for a reused router.

        The router attachment is wiring, not run state — it is kept (and
        :meth:`attach` would reject a second call anyway).
        """
        self.stats = ReplicationStatistics()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _rotated(object_name: str, placed: Sequence[int]) -> List[int]:
        """The placement rotated by a stable hash of the object name.

        Each object gets a deterministic home replica so load spreads over
        the copies without a random draw (CRC32: identical across processes
        and interpreter versions).
        """
        offset = zlib.crc32(object_name.encode("utf-8")) % len(placed)
        return list(placed[offset:]) + list(placed[:offset])

    def _readable_candidates(self, object_name: str, placed: Sequence[int]) -> List[int]:
        sites = self.router.sites
        return [
            sid
            for sid in self._rotated(object_name, placed)
            if sites[sid].readable(object_name)
        ]

    def _load_ranked(self, candidates: List[int]) -> List[int]:
        """Candidates reordered least-loaded-first, ties kept in input order.

        Without per-site hardware (no domains attached) the input order is
        returned unchanged — the pre-refactor behaviour, which keeps pinned
        streams bit-identical.  With site-owned domains the candidates are
        stably sorted by their domain's outstanding load, earlier input
        (hash-rotation) position breaking ties deterministically.
        """
        if len(candidates) <= 1:
            return candidates
        domains = [self.router.sites[sid].domain for sid in candidates]
        if any(domain is None for domain in domains):
            return candidates
        order = sorted((domains[index].load, index) for index in range(len(candidates)))
        return [candidates[index] for _, index in order]

    def _least_loaded(self, candidates: List[int]) -> int:
        """Pick a read replica: the least-loaded candidate, rotation ties."""
        return self._load_ranked(candidates)[0]

    # ------------------------------------------------------------------
    # Replica-set selection
    # ------------------------------------------------------------------
    def select_read(
        self, object_name: str, placed: Sequence[int], request: "GlobalRequest"
    ) -> List[int]:
        """Sites a read executes at (empty: no copy can serve it now)."""
        candidates = self._readable_candidates(object_name, placed)
        if not candidates:
            return []
        return [self._least_loaded(candidates)]

    def select_write(
        self,
        object_name: str,
        placed: Sequence[int],
        transaction: Optional["GlobalTransaction"] = None,
    ) -> List[int]:
        """Sites a write executes at (empty: unavailable).

        Available-copies: every live copy, in placement order — a recovering
        (unreadable) copy accepts writes, which is what refreshes it.
        ``transaction`` lets a protocol keep a transaction's repeat writes
        of one object on a consistent replica set (quorum consensus does).
        """
        sites = self.router.sites
        targets = [sid for sid in placed if sites[sid].writable(object_name)]
        self.stats.messages += max(0, len(targets) - 1)
        return targets

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_branch_committed(self, site: "Site", transaction: "GlobalTransaction") -> None:
        """A branch durably committed at ``site``.

        Available-copies recovery rule: a durably committed write refreshes
        the local copy, making it readable again — but only for objects
        whose write actually landed at *this* site (a write issued while
        the site was down never reached its copy).
        """
        if site.unreadable:
            for name in transaction.written_at.get(site.site_id, ()):
                site.mark_readable(name)

    def on_commit_fanout(self, branch_sites: Sequence[int]) -> None:
        """Count the commit fan-out messages to a transaction's branches."""
        self.stats.messages += max(0, len(branch_sites) - 1)

    def on_site_failed(self, site_id: int) -> None:
        """A site crashed (called after its scheduler state is discarded)."""

    def on_site_recovered(self, site: "Site") -> None:
        """A site came back up (called after its scheduler is rebuilt).

        Available-copies performs no catch-up: the recovered copies stay
        unreadable until a committed write lands, the protocol's structural
        availability cost.
        """

    def on_transaction_finished(self, transaction: "GlobalTransaction") -> None:
        """A global transaction reached a terminal state (commit or abort)."""

    # ------------------------------------------------------------------
    # Catch-up recovery (shared by quorum and primary-copy)
    # ------------------------------------------------------------------
    def _catchup_source(self, site: "Site", object_name: str) -> Optional[int]:
        """The live replica a recovered copy catches up from (None: nobody)."""
        raise NotImplementedError

    def _catch_up(self, site: "Site") -> None:
        """Copy committed state from live replicas onto the recovered site.

        Only objects awaiting a refresh (``site.unreadable``) are copied,
        and only *committed* state moves — uncommitted work at the crashed
        site died with its volatile scheduler, and uncommitted work at the
        source is not part of its committed snapshot.
        """
        copied = 0
        for name in sorted(site.unreadable):
            if site.has_uncommitted(name):
                # In-flight work on the copy (writes are accepted on
                # unreadable copies): overwriting now would be unsafe, and
                # the write's own durable commit refreshes the copy anyway.
                continue
            source_id = self._catchup_source(site, name)
            if source_id is None:
                continue
            source = self.router.sites[source_id]
            state = source.committed_snapshot([name]).get(name)
            site.install_committed(name, state)
            self._on_caught_up(site, source_id, name)
            copied += 1
        if copied:
            self.stats.catchups += 1
            self.stats.catchup_objects += copied
            self.stats.messages += copied

    def _on_caught_up(self, site: "Site", source_id: int, object_name: str) -> None:
        """Per-object hook after a catch-up copy (quorum syncs versions)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class AvailableCopies(ReplicationProtocol):
    """Read-one / write-all-available with the recovering-copy rule.

    This is the baseline extracted from the pre-protocol router; every
    decision — replica rotation, least-loaded read selection, write
    fan-out order, readability after recovery — is unchanged, which keeps
    the pinned multi-site and ``sites=1`` streams bit-identical.
    """

    name = "available-copies"


class _VersionedCatchUp(ReplicationProtocol):
    """Shared version bookkeeping for the catch-up protocols.

    Quorum consensus and primary-copy both need to know how fresh each
    copy's durable state is: every durable branch commit stamps the copies
    the write landed at with one new per-object version.  Recovery then has
    an authoritative rule — catch up from a strictly fresher readable peer,
    and mark a copy readable only when its version has reached the highest
    *stamped* version of the object.  A copy that is behind a stamped
    commit (its own pseudo-committed branch was dropped by the crash before
    the stamp landed) stays unreadable — the available-copies window as a
    safety net — rather than serving a stale value for a transaction the
    caller was told committed.

    Because write quorums intersect (``2W > N``) and a transaction's repeat
    writes stick to one W-set, every reported commit leaves at least one
    durably stamped copy even through crash cascades (a branch either
    drained durably before its site died, or the site failure's abort
    cascade drains a surviving sibling).  Under the one-phase commit
    protocol a commit can still end up *under-replicated* — fewer than W
    stamped copies — in which case the affected object trades availability,
    never consistency: reads go unavailable until a stamped copy is back to
    catch peers up, and the ``under_replicated_window`` counter records
    each such reported commit.  The
    :class:`~repro.distributed.commit.TwoPhase` commit protocol closes the
    window: it reports durable only at ``W`` live stamps and restores full
    W-replication through :meth:`QuorumConsensus.restore_write_replication`.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Version of the copy at ``(site_id, object name)`` (missing: 0).
        self._version: Dict[Tuple[int, str], int] = {}
        #: Highest committed version per object (the next write goes above).
        self._latest: Dict[str, int] = {}
        #: Version assigned to an in-flight commit, per (gtid, object name):
        #: branches drain at different times but must stamp the same version.
        self._commit_targets: Dict[Tuple[int, str], int] = {}

    def reset(self) -> None:
        super().reset()
        self._version.clear()
        self._latest.clear()
        self._commit_targets.clear()

    def version_of(self, site_id: int, object_name: str) -> int:
        """The committed version of one copy (0 until its first write)."""
        return self._version.get((site_id, object_name), 0)  # repro-lint: disable=REP008 (per-commit, not per-event)

    def on_branch_committed(self, site: "Site", transaction: "GlobalTransaction") -> None:
        super().on_branch_committed(site, transaction)
        for name in transaction.written_at.get(site.site_id, ()):
            key = (transaction.gtid, name)
            target = self._commit_targets.get(key)
            if target is None:
                target = self._latest.get(name, 0) + 1
                self._latest[name] = target
                self._commit_targets[key] = target
            self._version[(site.site_id, name)] = target

    def on_transaction_finished(self, transaction: "GlobalTransaction") -> None:
        written = transaction.written_objects()
        for name in sorted(written):
            self._commit_targets.pop((transaction.gtid, name), None)  # repro-lint: disable=REP008 (per-commit, not per-event)
        # The finished transaction may have been the in-flight write that
        # deferred a recovered copy's readability (see _refresh_copies):
        # retry those copies now that the write either stamped fresher
        # peers to catch up from or was aborted.
        if written:
            for site in self.router.sites:
                if site.status.is_up and site.unreadable & written:
                    self._refresh_copies(site)

    def on_site_recovered(self, site: "Site") -> None:
        self._refresh_copies(site)
        # This recovery may be exactly the fresher source a PEER's stranded
        # copies were waiting for (it recovered earlier, when no live site
        # could teach it): retry catch-up at every other live site that
        # still has unreadable copies, or they would stay unreadable until
        # a write happens to land on them.
        for other in self.router.sites:
            if other is not site and other.status.is_up and other.unreadable:
                self._refresh_copies(other)

    def _refresh_copies(self, site: "Site") -> None:
        self._catch_up(site)
        # Copies no live peer can improve keep their own durable state —
        # but only a copy whose version has caught the object's highest
        # committed version may serve reads.  A copy behind a reported
        # commit (crash dropped its pseudo-committed branch before the
        # stamp landed) stays unreadable until a fresher peer or a new
        # committed write refreshes it.  A copy with an in-flight peer
        # write it missed (issued while this site was down — committed
        # versions cannot see it yet) also defers: it is refreshed when
        # that transaction finishes.
        for name in sorted(site.unreadable):
            if self.version_of(site.site_id, name) < self._latest.get(name, 0):
                continue
            if self._missed_inflight_write(site, name):
                continue
            site.mark_readable(name)

    def _missed_inflight_write(self, site: "Site", object_name: str) -> bool:
        """True when a live peer holds an uncommitted write this copy missed.

        Such a write was necessarily issued while this site was down (a
        write that reached the site died with its volatile state, aborting
        the writer), so when it commits this copy will be behind the new
        version without the version bookkeeping showing it yet.
        """
        for sid in self.router.placement.sites_for(object_name):
            if sid == site.site_id:
                continue
            other = self.router.sites[sid]
            if not other.status.is_up or not other.has_uncommitted(object_name):
                continue
            for event in other.scheduler.object(object_name).uncommitted:
                if not self.router._is_read_only(object_name, event.invocation):
                    return True
        return False

    def _catchup_source(self, site: "Site", object_name: str) -> Optional[int]:
        """The freshest live copy — only if fresher than the recovering one.

        Highest version wins, lowest site id ties; a peer at or below the
        recovering copy's own (durable, crash-surviving) version has nothing
        to teach it and must never overwrite it.
        """
        best: Optional[int] = None
        best_version = self.version_of(site.site_id, object_name)
        for sid in self.router.placement.sites_for(object_name):
            if sid == site.site_id:
                continue
            other = self.router.sites[sid]
            if not other.readable(object_name):
                continue
            version = self.version_of(sid, object_name)
            if version > best_version:
                best, best_version = sid, version
        return best

    def _on_caught_up(self, site: "Site", source_id: int, object_name: str) -> None:
        self._version[(site.site_id, object_name)] = self.version_of(
            source_id, object_name
        )


class QuorumConsensus(_VersionedCatchUp):
    """Version-numbered read/write quorums (``R + W > N``, ``2W > N``).

    Reads contact ``R`` readable copies and serve the highest-version one;
    writes land at ``W`` live copies, all stamped with the same new version
    at durable commit.  Because any read quorum intersects any write
    quorum, a stale copy can participate in reads immediately — recovery
    needs no unreadable window, only the catch-up that makes the copy a
    useful quorum member again.  ``read_quorum``/``write_quorum`` default
    to majorities of each object's copy count.
    """

    name = "quorum"

    def __init__(
        self,
        read_quorum: Optional[int] = None,
        write_quorum: Optional[int] = None,
    ):
        super().__init__()
        self.read_quorum = read_quorum
        self.write_quorum = write_quorum

    def _quorums(self, object_name: str, placed: Sequence[int]) -> Tuple[int, int]:
        """Effective (R, W) for one object — rejected, never clamped.

        Explicit sizes outside ``[1, N]`` raise instead of being silently
        rewritten, so direct router users get exactly the same validation
        as :meth:`SimulationParameters.validate`; ``None`` defaults to a
        majority of the object's copy count.
        """
        n = len(placed)
        majority = n // 2 + 1
        r = self.read_quorum if self.read_quorum is not None else majority
        w = self.write_quorum if self.write_quorum is not None else majority
        if not 1 <= r <= n or not 1 <= w <= n:
            raise SimulationError(
                f"quorum R={r}/W={w} must lie in [1, {n}] for {object_name!r} "
                f"({n} copies)"
            )
        if r + w <= n:
            raise SimulationError(
                f"quorum R={r} + W={w} must exceed the copy count N={n} "
                f"of {object_name!r}"
            )
        if 2 * w <= n:
            # Write quorums must intersect each other too, or two
            # concurrent writers can land on disjoint copies with no
            # scheduler seeing both — an unserialized lost update.
            raise SimulationError(
                f"write quorum W={w} must exceed half the copy count N={n} "
                f"of {object_name!r} (write quorums must intersect)"
            )
        return r, w

    # ------------------------------------------------------------------
    def select_read(
        self, object_name: str, placed: Sequence[int], request: "GlobalRequest"
    ) -> List[int]:
        r, _ = self._quorums(object_name, placed)
        candidates = self._readable_candidates(object_name, placed)
        # Read-your-writes: copies holding the reading transaction's own
        # uncommitted writes go first, so the quorum is guaranteed to
        # contain one (committed versions cannot rank a pending write).
        # Within each segment, quorum members are picked least-loaded-first
        # (like the available-copies read-one), hash-rotation position
        # breaking ties — a no-op without per-site hardware, so pinned
        # streams are unchanged.
        own = self._own_write_sites(request.transaction_id, object_name)
        if own:
            candidates = self._load_ranked(
                [sid for sid in candidates if sid in own]
            ) + self._load_ranked([sid for sid in candidates if sid not in own])
        else:
            candidates = self._load_ranked(candidates)
        if len(candidates) < r:
            return []
        selected = candidates[:r]
        # Serve the value from the member that sees the transaction's own
        # writes, then from the freshest committed version (earlier
        # rotation position breaks ties deterministically).
        best = min(
            range(len(selected)),
            # One key allocation per quorum read, dwarfed by version_of.
            key=lambda index: (  # repro-lint: disable=REP009
                selected[index] not in own,
                -self.version_of(selected[index], object_name),
                index,
            ),
        )
        request.value_site = selected[best]
        self.stats.messages += r - 1
        return selected

    def _own_write_sites(self, transaction_id: int, object_name: str) -> Set[int]:
        """Sites where this transaction's own writes of the object landed."""
        transaction = self.router.transactions.get(transaction_id)
        if transaction is None:
            return set()
        return {
            site_id
            for site_id, names in transaction.written_at.items()
            if object_name in names
        }

    def select_write(
        self,
        object_name: str,
        placed: Sequence[int],
        transaction: Optional["GlobalTransaction"] = None,
    ) -> List[int]:
        _, w = self._quorums(object_name, placed)
        if transaction is not None:
            # Sticky W-set: a repeat write of the same object must land on
            # the same copies as the transaction's earlier ones (they are
            # necessarily still alive — a site failure aborts its writers).
            # Re-selecting from current liveness could route the new write
            # past a copy the commit will nonetheless stamp as fresh,
            # breaking "version equality implies state equality".
            prior = self._own_write_sites(transaction.gtid, object_name)
            if prior:
                targets = [
                    sid
                    for sid in self._rotated(object_name, placed)
                    if sid in prior
                ]
                self.stats.messages += len(targets) - 1
                return targets
        sites = self.router.sites
        candidates = [
            sid
            for sid in self._rotated(object_name, placed)
            if sites[sid].writable(object_name)
        ]
        if len(candidates) < w:
            return []
        self.stats.messages += w - 1
        return candidates[:w]

    # ------------------------------------------------------------------
    # Write durability (the 2PC commit protocol's W-ack condition)
    # ------------------------------------------------------------------
    def effective_write_quorum(self, object_name: str) -> int:
        """The ``W`` one object's writes must stamp to be fully replicated."""
        placed = self.router.placement.sites_for(object_name)
        _, w = self._quorums(object_name, placed)
        return w

    def live_stamped_count(self, object_name: str, version: int) -> int:
        """Live copies stamped at (or past) ``version``.

        A copy caught up beyond the version carries the write's effects
        too — versions only move through states that include their
        predecessors — so ``>=`` is the durable-coverage test.
        """
        return sum(
            1
            for sid in self.router.placement.sites_for(object_name)
            if self.router.sites[sid].status.is_up
            and self.version_of(sid, object_name) >= version
        )

    def write_stamp_deficit(self, object_name: str, gtid: int) -> int:
        """Live stamped copies a transaction's write is short of ``W``.

        Zero means the write is durably ``W``-replicated.  A write whose
        commit target has not been assigned yet (no branch drained — every
        stamped copy died before draining) counts as fully missing.
        """
        w = self.effective_write_quorum(object_name)
        target = self._commit_targets.get((gtid, object_name))  # repro-lint: disable=REP008 (per-commit, not per-event)
        if target is None:
            return w
        return max(0, w - self.live_stamped_count(object_name, target))

    def restore_write_replication(self, names: Optional[Sequence[str]] = None) -> int:
        """Copy stamped committed state onto spare live replicas.

        For every (requested) object whose latest stamped version has
        fewer than ``W`` live stamped copies, the freshest live stamp is
        copied — committed state only, exactly like recovery catch-up — to
        additional live replicas (rotation order) until ``W`` is restored.
        A spare holding in-flight work is skipped (installing over
        uncommitted operations is unsafe); the restore is retried when
        that work finishes.  Returns the number of copies installed.
        """
        copied = 0
        targets = sorted(self._latest) if names is None else names
        for name in targets:
            latest = self._latest.get(name, 0)
            if latest == 0:
                continue
            placed = self.router.placement.sites_for(name)
            if len(placed) <= 1:
                continue
            stamped = [
                sid
                for sid in placed
                if self.router.sites[sid].status.is_up
                and self.version_of(sid, name) >= latest
            ]
            w = self.effective_write_quorum(name)
            if not stamped or len(stamped) >= w:
                continue  # nothing live to copy from, or already replicated
            source = self.router.sites[stamped[0]]
            state = source.committed_snapshot([name]).get(name)
            source_version = self.version_of(stamped[0], name)
            for sid in self._rotated(name, placed):
                if len(stamped) >= w:
                    break
                site = self.router.sites[sid]
                if (
                    sid in stamped
                    or not site.status.is_up
                    or site.has_uncommitted(name)
                ):
                    continue
                site.install_committed(name, state)
                self._version[(sid, name)] = source_version
                stamped.append(sid)
                copied += 1
        if copied:
            self.stats.messages += copied
        return copied

    def on_transaction_finished(self, transaction: "GlobalTransaction") -> None:
        # Audit the reported commit before the targets are released: each
        # written object below W live stamped copies at report time is one
        # opening of the under-replication window (the number the commit
        # protocols trade against latency).
        if transaction.status is TransactionStatus.COMMITTED:
            for name in sorted(transaction.written_objects()):
                if self.write_stamp_deficit(name, transaction.gtid) > 0:
                    self.stats.under_replicated_window += 1
        super().on_transaction_finished(transaction)


class PrimaryCopy(_VersionedCatchUp):
    """Writes funnel through a primary, reads come from any live replica.

    Each placement (set of sites holding an object) has one primary at a
    time, elected lazily as the lowest live site id and re-elected — the
    *failover* — the moment a sitting primary crashes.  Writes execute at
    the primary first and propagate eagerly to every live backup, so any
    live replica can serve reads; recovery catch-up copies committed state
    from the freshest live replica, and a recovered copy whose own durable
    state already matches the highest committed version (no writes landed
    while it was down) is readable immediately even with no live peer.
    """

    name = "primary-copy"

    def __init__(self) -> None:
        super().__init__()
        #: Placement tuple -> currently elected primary site id.
        self._primaries: Dict[Tuple[int, ...], int] = {}

    def reset(self) -> None:
        super().reset()
        self._primaries.clear()

    def primary_of(self, object_name: str) -> Optional[int]:
        """The current primary for an object (electing one if needed)."""
        placed = tuple(self.router.placement.sites_for(object_name))
        live = [sid for sid in placed if self.router.sites[sid].status.is_up]
        return self._primary_for(placed, live)

    def _primary_for(
        self, placed: Tuple[int, ...], live: Sequence[int]
    ) -> Optional[int]:
        current = self._primaries.get(placed)
        if current is not None and self.router.sites[current].status.is_up:
            return current
        if not live:
            self._primaries.pop(placed, None)
            return None
        # Initial (or post-outage) election; not counted as a failover —
        # those are re-elections forced by a sitting primary's crash.
        elected = min(live)
        self._primaries[placed] = elected
        return elected

    # ------------------------------------------------------------------
    def select_write(
        self,
        object_name: str,
        placed: Sequence[int],
        transaction: Optional["GlobalTransaction"] = None,
    ) -> List[int]:
        sites = self.router.sites
        live = [sid for sid in placed if sites[sid].writable(object_name)]
        if not live:
            return []
        primary = self._primary_for(tuple(placed), live)
        if primary is None or not sites[primary].writable(object_name):
            return []
        # The primary orders the write, then propagates to every live backup.
        targets = [primary] + [sid for sid in live if sid != primary]
        self.stats.messages += len(targets) - 1
        return targets

    def on_site_failed(self, site_id: int) -> None:
        """Deterministic failover: re-elect where the dead site was primary."""
        for placed, primary in list(self._primaries.items()):
            if primary != site_id:
                continue
            live = [sid for sid in placed if self.router.sites[sid].status.is_up]
            if live:
                self._primaries[placed] = min(live)
                self.stats.failovers += 1
                self.stats.messages += max(0, len(live) - 1)
            else:
                del self._primaries[placed]


_PROTOCOLS = {
    protocol.name: protocol
    for protocol in (AvailableCopies, QuorumConsensus, PrimaryCopy)
}


def make_replication_protocol(
    kind: str,
    read_quorum: Optional[int] = None,
    write_quorum: Optional[int] = None,
) -> ReplicationProtocol:
    """Construct the replication protocol named by ``kind``.

    ``kind`` is one of ``"available-copies"``, ``"quorum"`` or
    ``"primary-copy"`` (the value of the ``replication_protocol`` simulation
    parameter and of the CLI's ``--replication-protocol`` flag); the quorum
    sizes only apply to — and are only accepted for — the quorum protocol.
    """
    try:
        protocol = _PROTOCOLS[kind]
    except KeyError:
        raise SimulationError(
            f"unknown replication protocol {kind!r} "
            f"(expected one of {sorted(_PROTOCOLS)})"
        ) from None
    if protocol is QuorumConsensus:
        return QuorumConsensus(read_quorum=read_quorum, write_quorum=write_quorum)
    if read_quorum is not None or write_quorum is not None:
        raise SimulationError(
            f"read/write quorum sizes only apply to the 'quorum' protocol, "
            f"not {kind!r}"
        )
    return protocol()
