"""Command-line interface for the reproduction.

The CLI exposes the experiment harness without writing any Python:

``python -m repro list``
    list every reproducible experiment (figures and tables);
``python -m repro tables [--type stack]``
    regenerate the compatibility tables (Tables I-VIII) and the parameter
    table (Tables IX-X), comparing declared and derived entries;
``python -m repro figure figure-4 [--scale smoke|bench|paper] [--output DIR]``
    run one figure's experiment and print (and optionally save) the
    paper-style series and summary;
``python -m repro figures [--list] [--only ID ...] [--workers N] [--out DIR]``
    drive the experiment registry (figures, ablations, tables) through the
    parallel runner; every worker count produces byte-identical results;
``python -m repro profile [--mpl 50 --completions 400 --top 25]``
    cProfile one simulation point and print the deterministic top-N call
    counts (the hot-loop perf trajectory, diffable PR-over-PR); ``--save
    baseline.json`` keeps the counts for later;
``python -m repro profile --compare baseline.json current.json``
    diff two saved profiles — per-function call-count deltas plus the
    calls/event change — exiting non-zero when the regression exceeds
    ``--regress-pct`` (the CI perf gate);
``python -m repro simulate [--mpl 50 --policy recoverability ...]``
    run a single simulation point and print its metrics; ``--policy 2pl``
    selects the strict two-phase-locking baseline backend;
``python -m repro simulate --sites 4 --replication copies --fail-at 2:1 --recover-at 6:1``
    run the multi-site system: four sites with available-copies replication,
    site 1 crashing at t=2 s and recovering at t=6 s of simulated time;
``python -m repro simulate --sites 4 --resource-units 1 --resource-placement per_site --msg-time 0.001``
    give each site its own hardware (one CPU + two disks here) and charge
    1 ms of network delay to work routed away from a transaction's home
    site, so replicated reads scale with the site count;
``python -m repro simulate --sites 3 --replication-protocol quorum --quorum-r 2 --quorum-w 2``
    keep the replicas consistent with version-numbered read/write quorums
    (``R + W > N``) instead of available-copies; ``--replication-protocol
    primary-copy`` funnels writes through an elected primary instead;
``python -m repro simulate --sites 3 --replication-protocol quorum --quorum-r 2 --quorum-w 2 --commit-protocol two-phase``
    report each commit durable only after certification and ``W`` live
    stamped copies per written object (2PC), re-replicating under-stamped
    objects when a site crashes; ``--prepare-timeout 0.5`` bounds how long
    a held commit may wait for its stamps before being force-reported;
``python -m repro simulate --sites 4 --resource-placement per_site --site-units 2,1,1,4``
    heterogeneous hardware: per-site resource-unit counts;
``python -m repro simulate --json``
    emit the run's deterministic metrics and raw counters as JSON (for
    scripting and CI gating).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence, Tuple

from .analysis import (
    BENCH_SCALE,
    EXPERIMENT_REGISTRY,
    PAPER_SCALE,
    SMOKE_SCALE,
    all_figure_ids,
    compare_profiles,
    compare_tables,
    figure_spec,
    load_profile,
    paper_table_reports,
    parameter_table,
    profile_simulation,
    render_result,
    run_experiment,
)
from .adts import paper_types
from .core.errors import SimulationError
from .core.policy import ConflictPolicy
from .sim.params import SimulationParameters
from .sim.simulator import Simulation

_SCALES = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "paper": PAPER_SCALE}
_POLICIES = {policy.value: policy for policy in ConflictPolicy}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Semantics-Based Concurrency Control: Beyond Commutativity'.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible experiments")

    tables = subparsers.add_parser("tables", help="regenerate Tables I-X")
    tables.add_argument(
        "--type",
        dest="type_name",
        choices=paper_types(),
        default=None,
        help="restrict to one data type (default: all four)",
    )

    figure = subparsers.add_parser("figure", help="run one figure's experiment")
    figure.add_argument("figure_id", choices=all_figure_ids())
    figure.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    figure.add_argument("--output", type=pathlib.Path, default=None,
                        help="directory to save the report into")

    figures = subparsers.add_parser(
        "figures",
        help="run registry experiments through the parallel runner",
    )
    figures.add_argument("--list", action="store_true", dest="list_only",
                         help="list every registered experiment and exit")
    figures.add_argument("--only", nargs="+", metavar="ID", default=None,
                         help="restrict to these experiment ids "
                              "(default: every parameter-sweep experiment)")
    figures.add_argument("--workers", type=int, default=1,
                         help="worker processes for the point fan-out; the "
                              "results are identical for every worker count "
                              "(default 1: the serial path)")
    figures.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    figures.add_argument("--out", type=pathlib.Path, default=None,
                         help="directory to save one report per experiment into")

    profile = subparsers.add_parser(
        "profile",
        help="cProfile one simulation point (deterministic call counts)",
    )
    profile.add_argument("--workload", choices=["readwrite", "adt"], default="readwrite")
    profile.add_argument("--policy", choices=sorted(_POLICIES), default="recoverability")
    profile.add_argument("--mpl", type=int, default=50)
    profile.add_argument("--completions", type=int, default=400)
    profile.add_argument("--database-size", type=int, default=200)
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument("--top", type=int, default=25,
                         help="functions to show, most-called first")
    profile.add_argument("--raw", action="store_true",
                         help="append the raw pstats table (wall-clock "
                              "times; not deterministic)")
    profile.add_argument("--save", type=pathlib.Path, default=None,
                         metavar="PATH",
                         help="also write the deterministic profile as JSON "
                              "(the input format of --compare)")
    profile.add_argument("--compare", nargs=2, type=pathlib.Path, default=None,
                         metavar=("A.json", "B.json"),
                         help="diff two profiles saved with --save instead of "
                              "running a simulation; exits non-zero when B's "
                              "calls/event exceeds A's by more than "
                              "--regress-pct")
    profile.add_argument("--regress-pct", type=float, default=3.0,
                         metavar="PCT",
                         help="calls/event regression tolerated by --compare "
                              "before the exit code turns non-zero "
                              "(default: 3.0)")

    lint = subparsers.add_parser(
        "lint", help="run the repo's determinism/conformance static analyzer"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable output (per-rule counts + violations)",
    )

    simulate = subparsers.add_parser("simulate", help="run a single simulation point")
    simulate.add_argument("--workload", choices=["readwrite", "adt"], default="readwrite")
    simulate.add_argument("--policy", choices=sorted(_POLICIES), default="recoverability")
    simulate.add_argument("--mpl", type=int, default=50)
    simulate.add_argument("--completions", type=int, default=500)
    simulate.add_argument("--database-size", type=int, default=1000)
    simulate.add_argument("--resource-units", type=int, default=None,
                          help="number of resource units (omit for infinite); "
                               "under --resource-placement per_site this is "
                               "the hardware of each site")
    simulate.add_argument("--resource-placement", choices=["global", "per_site"],
                          default="global",
                          help="one shared CPU/disk pool (global, the paper's "
                               "model) or one pool per site (per_site)")
    simulate.add_argument("--msg-time", type=float, default=0.0,
                          help="cross-site network cost in seconds charged to "
                               "work routed away from a transaction's home "
                               "site (default 0: no network model)")
    simulate.add_argument("--write-probability", type=float, default=0.3)
    simulate.add_argument("--pc", type=int, default=4)
    simulate.add_argument("--pr", type=int, default=4)
    simulate.add_argument("--unfair", action="store_true",
                          help="disable fair scheduling at the object managers")
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--sites", type=int, default=1,
                          help="number of sites (default 1: the centralized system)")
    simulate.add_argument("--replication", choices=["single", "hash", "copies"],
                          default=None,
                          help="object placement across sites (default: 'single' "
                               "with one site, 'copies' with several)")
    simulate.add_argument("--replication-protocol",
                          choices=["available-copies", "quorum", "primary-copy"],
                          default="available-copies",
                          help="how replicas are selected and recovered: "
                               "available-copies (read-one/write-all, "
                               "unreadable window after recovery), quorum "
                               "(versioned R/W quorums with catch-up) or "
                               "primary-copy (writes through an elected "
                               "primary, catch-up)")
    simulate.add_argument("--quorum-r", type=int, default=None, metavar="R",
                          help="read quorum size for --replication-protocol "
                               "quorum (default: a majority of the copies)")
    simulate.add_argument("--quorum-w", type=int, default=None, metavar="W",
                          help="write quorum size for --replication-protocol "
                               "quorum (default: a majority of the copies)")
    simulate.add_argument("--commit-protocol",
                          choices=["one-phase", "two-phase"],
                          default="one-phase",
                          help="when a distributed commit reports durable: "
                               "one-phase (one fan-out, durable once every "
                               "branch drained) or two-phase (commit-time "
                               "cycle certification, W-ack durability under "
                               "quorum, re-replication on site failure)")
    simulate.add_argument("--prepare-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="force-report a two-phase commit still below "
                               "its W-stamp condition after this much "
                               "simulated time (default: wait indefinitely)")
    simulate.add_argument("--site-units", default=None, metavar="U0,U1,...",
                          help="heterogeneous per-site hardware: one "
                               "resource-unit count per site (comma-"
                               "separated, requires --resource-placement "
                               "per_site and one entry per --sites)")
    simulate.add_argument("--fail-at", action="append", default=[], metavar="TIME:SITE",
                          help="crash SITE at simulated TIME seconds (repeatable)")
    simulate.add_argument("--recover-at", action="append", default=[], metavar="TIME:SITE",
                          help="recover SITE at simulated TIME seconds (repeatable)")
    simulate.add_argument("--json", action="store_true",
                          help="emit machine-readable deterministic metrics as JSON")
    return parser


def _parse_site_events(
    fail_at: List[str], recover_at: List[str], site_count: int, error
) -> Tuple[Tuple[float, str, int], ...]:
    """Turn repeated ``TIME:SITE`` flags into a sorted failure schedule.

    ``error`` is :meth:`argparse.ArgumentParser.error`: every malformed entry
    — bad syntax, unparsable numbers, negative times, sites outside the
    ``--sites`` range — exits with a usage message instead of a traceback.
    """
    events: List[Tuple[float, str, int]] = []
    for action, entries in (("fail", fail_at), ("recover", recover_at)):
        for entry in entries:
            try:
                time_text, site_text = entry.split(":", 1)
                time, site = float(time_text), int(site_text)
            except ValueError:
                error(f"--{action}-at expects TIME:SITE (e.g. 2.5:1), got {entry!r}")
            if time < 0:
                error(f"--{action}-at time must be non-negative, got {entry!r}")
            if not 0 <= site < site_count:
                error(
                    f"--{action}-at site {site} is outside [0, {site_count}) "
                    f"for --sites {site_count}"
                )
            events.append((time, action, site))
    events.sort(key=lambda event: (event[0], event[2], event[1]))
    return tuple(events)


def _command_list(out) -> int:
    out.write("figures:\n")
    for figure_id in all_figure_ids():
        spec = figure_spec(figure_id, SMOKE_SCALE)
        out.write(f"  {figure_id:10s} {spec.title}\n")
    out.write("tables:\n")
    for type_name in paper_types():
        out.write(f"  tables ({type_name})\n")
    out.write("  tables (parameters)\n")
    return 0


def _command_tables(type_name: Optional[str], out) -> int:
    names = [type_name] if type_name else paper_types()
    for name in names:
        out.write(compare_tables(name).render() + "\n\n")
    if type_name is None:
        out.write(parameter_table() + "\n")
    return 0


def _command_figure(figure_id: str, scale_name: str, output: Optional[pathlib.Path], out) -> int:
    spec = figure_spec(figure_id, _SCALES[scale_name])
    result = run_experiment(spec, progress=lambda line: out.write("  " + line + "\n"))
    report = render_result(result)
    out.write(report + "\n")
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{figure_id}.txt").write_text(report + "\n")
    return 0


def _render_tables_report() -> str:
    """The full Tables I-X report the registry's ``tables`` entry produces."""
    sections = [report.render() for report in paper_table_reports()]
    sections.append(parameter_table())
    return "\n\n".join(sections)


def _command_figures(arguments, out, error) -> int:
    """Drive the experiment registry through the parallel runner."""
    if arguments.list_only:
        width = max(len(entry.experiment_id) for entry in EXPERIMENT_REGISTRY)
        for entry in EXPERIMENT_REGISTRY:
            out.write(
                f"{entry.experiment_id.ljust(width)}  "
                f"[{entry.kind}] {entry.summary}\n"
            )
        return 0
    if arguments.workers < 1:
        error(f"--workers must be >= 1, got {arguments.workers}")
    experiment_ids = arguments.only or EXPERIMENT_REGISTRY.runnable_ids()
    unknown = [i for i in experiment_ids if i not in EXPERIMENT_REGISTRY]
    if unknown:
        error(
            f"unknown experiments {unknown}; known: "
            f"{sorted(EXPERIMENT_REGISTRY.ids())}"
        )
    scale = _SCALES[arguments.scale]
    for experiment_id in experiment_ids:
        entry = EXPERIMENT_REGISTRY.entry(experiment_id)
        if entry.builder is None:
            report = _render_tables_report()
        else:
            spec = EXPERIMENT_REGISTRY.spec(experiment_id, scale)
            result = run_experiment(
                spec,
                progress=lambda line: out.write("  " + line + "\n"),
                workers=arguments.workers,
            )
            report = render_result(result)
        out.write(report + "\n")
        if arguments.out is not None:
            arguments.out.mkdir(parents=True, exist_ok=True)
            (arguments.out / f"{experiment_id}.txt").write_text(report + "\n")
    return 0


def _command_profile(arguments, out, error) -> int:
    """Profile one simulation point; call counts are deterministic."""
    if arguments.top < 1:
        error(f"--top must be >= 1, got {arguments.top}")
    if arguments.compare is not None:
        path_a, path_b = arguments.compare
        try:
            comparison = compare_profiles(
                load_profile(path_a),
                load_profile(path_b),
                label_a=str(path_a),
                label_b=str(path_b),
            )
        except (OSError, ValueError, KeyError) as exc:
            error(f"--compare could not load profiles: {exc}")
        out.write(comparison.render(top=arguments.top) + "\n")
        if comparison.regressed(arguments.regress_pct):
            out.write(
                f"REGRESSION: calls/event {comparison.delta_pct:+.2f}% exceeds "
                f"the --regress-pct {arguments.regress_pct:g}% tolerance\n"
            )
            return 1
        return 0
    try:
        params = SimulationParameters(
            database_size=arguments.database_size,
            mpl_level=arguments.mpl,
            total_completions=arguments.completions,
            policy=_POLICIES[arguments.policy],
            seed=arguments.seed,
        )
    except SimulationError as exc:
        error(str(exc))
    report = profile_simulation(params, workload_kind=arguments.workload)
    out.write(report.render(top=arguments.top, raw=arguments.raw) + "\n")
    if arguments.save is not None:
        report.save(arguments.save)
    return 0


def _parse_site_units(text: Optional[str], site_count: int, error):
    """Parse ``--site-units 2,1,1,4`` into a per-site tuple (or ``None``).

    Malformed entries and length mismatches exit with a usage message: a
    silently truncated or padded hardware list would misattribute every
    per-site measurement after it.
    """
    if text is None:
        return None
    try:
        units = tuple(int(entry) for entry in text.split(","))
    except ValueError:
        error(f"--site-units expects comma-separated integers (e.g. 2,1,1,4), "
              f"got {text!r}")
    if len(units) != site_count:
        error(f"--site-units lists {len(units)} sites but --sites is "
              f"{site_count}; give exactly one unit count per site")
    return units


def _command_lint(paths, as_json: bool, out) -> int:
    """Run the REP static analyzer; exit 1 when violations remain."""
    from .lint import lint_paths, render_json, render_text
    from .lint.runner import collect_files

    if not paths:
        # Default target: the installed repro package tree itself.
        paths = [str(pathlib.Path(__file__).resolve().parent)]
    violations = lint_paths(paths)
    if as_json:
        out.write(render_json(violations, checked_files=len(collect_files(paths))))
    else:
        out.write(render_text(violations))
    return 1 if violations else 0


def _command_simulate(arguments, out, error) -> int:
    replication = arguments.replication
    if replication is None:
        replication = "single" if arguments.sites == 1 else "copies"
    try:
        params = SimulationParameters(
            database_size=arguments.database_size,
            mpl_level=arguments.mpl,
            total_completions=arguments.completions,
            policy=_POLICIES[arguments.policy],
            resource_units=arguments.resource_units,
            resource_placement=arguments.resource_placement,
            msg_time=arguments.msg_time,
            write_probability=arguments.write_probability,
            pc=arguments.pc,
            pr=arguments.pr,
            fair_scheduling=not arguments.unfair,
            seed=arguments.seed,
            site_count=arguments.sites,
            replication=replication,
            replication_protocol=arguments.replication_protocol,
            quorum_read=arguments.quorum_r,
            quorum_write=arguments.quorum_w,
            commit_protocol=arguments.commit_protocol,
            prepare_timeout=arguments.prepare_timeout,
            site_units=_parse_site_units(
                arguments.site_units, arguments.sites, error
            ),
            failure_schedule=_parse_site_events(
                arguments.fail_at, arguments.recover_at, arguments.sites, error
            ),
        )
    except SimulationError as exc:
        error(str(exc))
    simulation = Simulation(params, workload_kind=arguments.workload)
    metrics = simulation.run()
    if arguments.json:
        router_stats = simulation.router.router_stats
        payload = {
            "params": params.describe(),
            "workload": arguments.workload,
            "metrics": metrics.as_dict(),
            "counters": metrics.counters(),
            "resources": simulation.resources.utilisation_summary(),
            "sites": {
                "count": params.site_count,
                "replication": params.replication,
                "replication_protocol": params.replication_protocol,
                "commit_protocol": params.commit_protocol,
                # Echo the scripted crash/recover schedule so a JSON run is
                # fully self-describing (the schedule shapes every counter
                # below; re-running without it would not reproduce them).
                "failure_schedule": [list(event) for event in params.failure_schedule],
                # Router-level transaction accounting (global ids; per-site
                # scheduler counters are aggregated separately in the
                # metrics block above).
                "begins": router_stats.begins,
                "commits": router_stats.commits,
                "pseudo_commits": router_stats.pseudo_commits,
                "aborts": router_stats.aborts,
                "cross_site_cycle_checks": router_stats.cross_site_cycle_checks,
                "failures": router_stats.site_failures,
                "recoveries": router_stats.site_recoveries,
                "site_failure_aborts": router_stats.site_failure_aborts,
                "unavailable_aborts": router_stats.unavailable_aborts,
                "read_unavailable_aborts": router_stats.read_unavailable_aborts,
                "write_unavailable_aborts": router_stats.write_unavailable_aborts,
                "cross_site_deadlock_aborts": router_stats.cross_site_deadlock_aborts,
                "cycle_sweeps": router_stats.cycle_sweeps,
                "replication_counters": simulation.router.replication_summary(),
                "commit_counters": simulation.router.commit_summary(),
            },
        }
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return 0
    for key, value in metrics.as_dict().items():
        out.write(f"{key:20s} {value:.4f}\n")
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return _command_list(out)
    if arguments.command == "tables":
        return _command_tables(arguments.type_name, out)
    if arguments.command == "figure":
        return _command_figure(arguments.figure_id, arguments.scale, arguments.output, out)
    if arguments.command == "figures":
        return _command_figures(arguments, out, parser.error)
    if arguments.command == "profile":
        return _command_profile(arguments, out, parser.error)
    if arguments.command == "lint":
        return _command_lint(arguments.paths, arguments.as_json, out)
    if arguments.command == "simulate":
        return _command_simulate(arguments, out, parser.error)
    return 2  # pragma: no cover - argparse enforces the choices above


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
