"""Experiment harness, per-figure definitions, table regeneration, reporting."""

from .ablations import ABLATION_BUILDERS, ablation_pseudo_commit_slot, ablation_write_probability
from .experiments import (
    AveragedMetrics,
    ExperimentResult,
    ExperimentSpec,
    Variant,
    run_experiment,
)
from .figures import (
    BENCH_SCALE,
    FIGURE_BUILDERS,
    PAPER_SCALE,
    SMOKE_SCALE,
    ReproductionScale,
    all_figure_ids,
    figure_spec,
)
from .profiling import (
    ProfileComparison,
    ProfileReport,
    compare_profiles,
    load_profile,
    profile_simulation,
)
from .registry import EXPERIMENT_REGISTRY, ExperimentRegistry, RegisteredExperiment
from .reporting import render_result, render_series, render_summary
from .tables import (
    PAPER_TABLE_NUMBERS,
    TableComparison,
    TableReport,
    compare_tables,
    paper_table_reports,
    parameter_table,
)

__all__ = [
    "ABLATION_BUILDERS",
    "ablation_pseudo_commit_slot",
    "ablation_write_probability",
    "AveragedMetrics",
    "EXPERIMENT_REGISTRY",
    "ExperimentRegistry",
    "ExperimentResult",
    "ExperimentSpec",
    "ProfileComparison",
    "ProfileReport",
    "RegisteredExperiment",
    "Variant",
    "compare_profiles",
    "load_profile",
    "profile_simulation",
    "run_experiment",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "SMOKE_SCALE",
    "FIGURE_BUILDERS",
    "ReproductionScale",
    "all_figure_ids",
    "figure_spec",
    "render_result",
    "render_series",
    "render_summary",
    "PAPER_TABLE_NUMBERS",
    "TableComparison",
    "TableReport",
    "compare_tables",
    "paper_table_reports",
    "parameter_table",
]
