"""The central experiment registry: every reproducible experiment, by id.

The figure builders (:mod:`repro.analysis.figures`), the ablation builders
(:mod:`repro.analysis.ablations`) and the table regeneration all used to be
reachable only through their own module-level entry points; the registry
gives them one declarative index — id → builder — that the ``repro figures``
subcommand, the benchmark harness and ``tools/bench_summary.py`` all drive.
Iteration order is registration order (paper order), which is what makes
"reassembled in deterministic registry order" a meaningful guarantee for the
parallel runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from ..core.errors import ExperimentError
from .ablations import ABLATION_BUILDERS
from .experiments import ExperimentSpec
from .figures import BENCH_SCALE, FIGURE_BUILDERS, SMOKE_SCALE, ReproductionScale

__all__ = [
    "RegisteredExperiment",
    "ExperimentRegistry",
    "EXPERIMENT_REGISTRY",
]

#: The four multi-site experiments layered on Figure 4's workload.
_DISTRIBUTED_IDS = frozenset(
    {
        "figure-4-sites",
        "figure-4-sites-scaling",
        "figure-4-protocols",
        "figure-4-commit",
    }
)


@dataclass(frozen=True)
class RegisteredExperiment:
    """One registry entry: an experiment id, its category, and its builder.

    ``builder`` is ``None`` for entries that are not parameter sweeps (the
    table regeneration); the CLI handles those through their own harness.
    """

    experiment_id: str
    kind: str  # "figure" | "baseline" | "distributed" | "ablation" | "tables"
    summary: str
    builder: Optional[Callable[[ReproductionScale], ExperimentSpec]] = None


class ExperimentRegistry:
    """Ordered id → :class:`RegisteredExperiment` index."""

    def __init__(self, entries: Optional[List[RegisteredExperiment]] = None):
        self._entries: Dict[str, RegisteredExperiment] = {}
        for entry in entries or []:
            self.register(entry)

    def register(self, entry: RegisteredExperiment) -> None:
        """Add one entry; duplicate ids are a programming error."""
        if entry.experiment_id in self._entries:
            raise ExperimentError(
                f"experiment {entry.experiment_id!r} is already registered"
            )
        self._entries[entry.experiment_id] = entry

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, experiment_id: object) -> bool:
        return experiment_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RegisteredExperiment]:
        return iter(self._entries.values())

    def ids(self, kind: Optional[str] = None) -> List[str]:
        """Every registered id in registration (paper) order."""
        return [
            entry.experiment_id
            for entry in self._entries.values()
            if kind is None or entry.kind == kind
        ]

    def runnable_ids(self) -> List[str]:
        """Ids with a spec builder (everything the parallel runner can run)."""
        return [
            entry.experiment_id
            for entry in self._entries.values()
            if entry.builder is not None
        ]

    def entry(self, experiment_id: str) -> RegisteredExperiment:
        """Look one entry up, with the known ids in the error message."""
        try:
            return self._entries[experiment_id]
        except KeyError:
            raise ExperimentError(
                f"unknown experiment {experiment_id!r}; known: {sorted(self._entries)}"
            ) from None

    def spec(
        self, experiment_id: str, scale: ReproductionScale = BENCH_SCALE
    ) -> ExperimentSpec:
        """Build the spec of one runnable experiment at the given scale."""
        entry = self.entry(experiment_id)
        if entry.builder is None:
            raise ExperimentError(
                f"{experiment_id!r} is not a parameter sweep (kind "
                f"{entry.kind!r}); it has no ExperimentSpec"
            )
        return entry.builder(scale)


def _figure_kind(experiment_id: str) -> str:
    if experiment_id in _DISTRIBUTED_IDS:
        return "distributed"
    if experiment_id == "figure-4-2pl":
        return "baseline"
    return "figure"


def _default_registry() -> ExperimentRegistry:
    registry = ExperimentRegistry()
    for experiment_id, builder in FIGURE_BUILDERS.items():
        registry.register(
            RegisteredExperiment(
                experiment_id=experiment_id,
                kind=_figure_kind(experiment_id),
                summary=builder(SMOKE_SCALE).title,
                builder=builder,
            )
        )
    for experiment_id, builder in ABLATION_BUILDERS.items():
        registry.register(
            RegisteredExperiment(
                experiment_id=experiment_id,
                kind="ablation",
                summary=builder(SMOKE_SCALE).title,
                builder=builder,
            )
        )
    registry.register(
        RegisteredExperiment(
            experiment_id="tables",
            kind="tables",
            summary="Tables I-X: declared vs derived compatibility + parameters",
            builder=None,
        )
    )
    return registry


#: The default registry: all 20 figure experiments (paper figures, the
#: strict-2PL baseline, the four distributed experiments), the two
#: simulation ablations, and the table regeneration.
EXPERIMENT_REGISTRY = _default_registry()
