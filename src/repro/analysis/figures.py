"""Per-figure experiment definitions (Figures 4-18 of the paper).

Each ``figure_N`` function returns the :class:`~repro.analysis.experiments.ExperimentSpec`
that regenerates the corresponding figure's series.  The specs differ only in
workload (read/write vs abstract data type), resource units, fairness, and the
variants plotted, exactly as in Section 5.5.

Every builder takes a :class:`ReproductionScale`, which controls how much
simulated work each point performs:

* ``SMOKE_SCALE`` — a few hundred completions, two mpl levels; used by tests;
* ``BENCH_SCALE`` — the default for the benchmark harness: the full mpl sweep
  at a run length that keeps the whole suite in the order of a minute;
* ``PAPER_SCALE`` — the paper's own settings (50 000 completions per point,
  10 runs, mpl 10-200); hours of simulation, provided for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.errors import ExperimentError
from ..core.policy import ConflictPolicy
from ..sim.params import SimulationParameters
from .experiments import ExperimentSpec, Variant

__all__ = [
    "ReproductionScale",
    "SMOKE_SCALE",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "FIGURE_BUILDERS",
    "figure_spec",
    "all_figure_ids",
]


@dataclass(frozen=True)
class ReproductionScale:
    """How much work each experiment point performs."""

    name: str
    total_completions: int
    runs: int
    mpl_levels: Tuple[int, ...]
    warmup_completions: int = 0


#: Tiny scale used by the test-suite (seconds for the full figure set).
SMOKE_SCALE = ReproductionScale(
    name="smoke", total_completions=150, runs=1, mpl_levels=(10, 50)
)
#: Default scale of the benchmark harness.
BENCH_SCALE = ReproductionScale(
    name="bench", total_completions=400, runs=1, mpl_levels=(10, 25, 50, 100, 200)
)
#: The paper's own scale (Section 5.5: 50 000 completions, 10 runs).
PAPER_SCALE = ReproductionScale(
    name="paper",
    total_completions=50_000,
    runs=10,
    mpl_levels=(10, 25, 50, 100, 150, 200),
    warmup_completions=500,
)


# ----------------------------------------------------------------------
# Shared building blocks
# ----------------------------------------------------------------------
_POLICY_VARIANTS: Tuple[Variant, ...] = (
    Variant(label="commutativity", overrides={"policy": ConflictPolicy.COMMUTATIVITY}),
    Variant(label="recoverability", overrides={"policy": ConflictPolicy.RECOVERABILITY}),
)

_BACKEND_VARIANTS: Tuple[Variant, ...] = (
    Variant(label="2pl", overrides={"policy": ConflictPolicy.TWO_PHASE_LOCKING}),
    Variant(label="recoverability", overrides={"policy": ConflictPolicy.RECOVERABILITY}),
)


def _adt_variants(pc: int) -> Tuple[Variant, ...]:
    return tuple(
        Variant(label=f"Pc={pc},Pr={pr}", overrides={"pc": pc, "pr": pr})
        for pr in (0, 4, 8)
    )


def _base_params(scale: ReproductionScale, **overrides: object) -> SimulationParameters:
    params = SimulationParameters(
        total_completions=scale.total_completions,
        warmup_completions=scale.warmup_completions,
    )
    return params.replace(**overrides) if overrides else params


def _rw_spec(
    scale: ReproductionScale,
    experiment_id: str,
    title: str,
    metrics: Sequence[str],
    description: str,
    **param_overrides: object,
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id=experiment_id,
        title=title,
        workload="readwrite",
        base_params=_base_params(scale, **param_overrides),
        mpl_levels=scale.mpl_levels,
        variants=_POLICY_VARIANTS,
        metrics=tuple(metrics),
        runs=scale.runs,
        description=description,
    )


def _adt_spec(
    scale: ReproductionScale,
    experiment_id: str,
    title: str,
    metrics: Sequence[str],
    description: str,
    pc: int,
    **param_overrides: object,
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id=experiment_id,
        title=title,
        workload="adt",
        base_params=_base_params(scale, policy=ConflictPolicy.RECOVERABILITY, **param_overrides),
        mpl_levels=scale.mpl_levels,
        variants=_adt_variants(pc),
        metrics=tuple(metrics),
        runs=scale.runs,
        description=description,
    )


# ----------------------------------------------------------------------
# Read/write model (Figures 4-13)
# ----------------------------------------------------------------------
def figure_4(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Throughput vs multiprogramming level; RW model, infinite resources."""
    return _rw_spec(
        scale,
        "figure-4",
        "Throughput (infinite resources, read/write model)",
        ["throughput"],
        "Recoverability should beat commutativity at every level, by roughly "
        "two thirds at the commutativity peak, and degrade far less at high mpl.",
    )


def figure_5(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Response time vs mpl; RW model, infinite resources."""
    return _rw_spec(
        scale,
        "figure-5",
        "Response time (infinite resources, read/write model)",
        ["response_time"],
        "Response time first falls then rises with mpl; recoverability stays below "
        "commutativity once data contention matters.",
    )


def figure_6(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Blocking and restart ratios; RW model, infinite resources."""
    return _rw_spec(
        scale,
        "figure-6",
        "Conflict ratios (infinite resources, read/write model)",
        ["blocking_ratio", "restart_ratio"],
        "Blocking ratio is lower under recoverability at every level; restart ratios "
        "are comparable until thrashing, then lower under recoverability.",
    )


def figure_7(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Cycle-check ratio and abort length; RW model, infinite resources."""
    return _rw_spec(
        scale,
        "figure-7",
        "Cycle-check ratio and abort length (infinite resources, read/write model)",
        ["cycle_check_ratio", "abort_length"],
        "Recoverability performs more cycle checks (every recoverable execute needs "
        "one); abort length falls once the system starts to thrash.",
    )


def _capped_scale(scale: ReproductionScale, cap: int) -> ReproductionScale:
    """A copy of ``scale`` with the mpl sweep capped at ``cap``."""
    capped = tuple(level for level in scale.mpl_levels if level <= cap)
    return ReproductionScale(
        name=scale.name,
        total_completions=scale.total_completions,
        runs=scale.runs,
        mpl_levels=capped or scale.mpl_levels,
        warmup_completions=scale.warmup_completions,
    )


def _unfair_scale(scale: ReproductionScale) -> ReproductionScale:
    """Cap the unfair-scheduling sweeps at mpl <= 50 below paper scale.

    Without fairness, writers starve behind the read stream at very high
    multiprogramming levels, which makes those points disproportionately
    expensive to simulate (hundreds of blocks per completion).  The paper's
    qualitative claim for Figures 8-9 — higher peaks and lower conflict ratios
    than the fair-scheduling Figures 4 and 6 — is already visible at mpl <= 50,
    so the reduced sweep is used unless the full paper scale is requested.
    """
    if scale.name == "paper":
        return scale
    return _capped_scale(scale, 50)


def figure_8(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Throughput without fair scheduling; RW model, infinite resources."""
    return _rw_spec(
        _unfair_scale(scale),
        "figure-8",
        "Throughput without fair scheduling (infinite resources, read/write model)",
        ["throughput"],
        "Without fairness, non-conflicting incoming requests overtake blocked ones; "
        "peak throughput is higher than Figure 4 for both policies.",
        fair_scheduling=False,
    )


def figure_9(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Conflict ratios without fair scheduling; RW model, infinite resources."""
    return _rw_spec(
        _unfair_scale(scale),
        "figure-9",
        "Conflict ratios without fair scheduling (infinite resources, read/write model)",
        ["blocking_ratio", "restart_ratio"],
        "Blocking and restart ratios are lower than under fair scheduling (Figure 6).",
        fair_scheduling=False,
    )


def figure_10(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Throughput with 5 resource units; RW model."""
    return _rw_spec(
        scale,
        "figure-10",
        "Throughput (5 resource units, read/write model)",
        ["throughput"],
        "Resource contention lowers the peak versus infinite resources and shrinks "
        "the recoverability advantage to the order of 15 percent; commutativity "
        "thrashes at a lower mpl.",
        resource_units=5,
    )


def figure_11(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Throughput with 1 resource unit; RW model."""
    return _rw_spec(
        scale,
        "figure-11",
        "Throughput (1 resource unit, read/write model)",
        ["throughput"],
        "With a single resource unit transactions queue for hardware, not data; "
        "overall throughput is very low and the policies are nearly indistinguishable "
        "until the system thrashes.",
        resource_units=1,
    )


def figure_12(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Conflict ratios with 5 resource units; RW model."""
    return _rw_spec(
        scale,
        "figure-12",
        "Conflict ratios (5 resource units, read/write model)",
        ["blocking_ratio", "restart_ratio"],
        "Blocking ratio stays lower under recoverability, with the gap growing "
        "with the multiprogramming level.",
        resource_units=5,
    )


def figure_13(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Cycle-check ratio and abort length with 5 resource units; RW model."""
    return _rw_spec(
        scale,
        "figure-13",
        "Cycle-check ratio and abort length (5 resource units, read/write model)",
        ["cycle_check_ratio", "abort_length"],
        "Same qualitative behaviour as the infinite-resource case (Figure 7).",
        resource_units=5,
    )


def figure_4_2pl(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Figure 4's workload under the strict-2PL backend vs recoverability.

    Not a figure of the paper itself: it pits the paper's protocol against
    the classical page-level strict two-phase-locking baseline end-to-end.
    The expected shape is the paper's qualitative claim — 2PL completes no
    more transactions per simulated second than recoverability, and the gap
    widens with the multiprogramming level.
    """
    return ExperimentSpec(
        experiment_id="figure-4-2pl",
        title="Throughput: strict 2PL baseline vs recoverability (RW model)",
        workload="readwrite",
        base_params=_base_params(scale),
        mpl_levels=scale.mpl_levels,
        variants=_BACKEND_VARIANTS,
        metrics=("throughput",),
        runs=scale.runs,
        description="The page-level strict-2PL backend reproduces the classical "
        "baseline: its throughput should match the commutativity curve of "
        "Figure 4 and stay at or below recoverability at every mpl level.",
    )


#: Scripted crash of site 1 early in the run, recovering shortly after —
#: every multi-site variant of figure-4-sites exercises the available-copies
#: failure path (writer aborts, unreadable-until-committed-write).  The times
#: sit well inside even the fastest smoke-scale run (~1.8 simulated seconds),
#: so the scenario fires at every scale and multiprogramming level.
_SITE_FAILURE_SCENARIO: Tuple[Tuple[float, str, int], ...] = (
    (0.5, "fail", 1),
    (1.25, "recover", 1),
)


def figure_4_sites(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Figure 4's workload on the multi-site execution layer.

    Not a figure of the paper: it measures what the transaction router costs
    and tolerates.  The Figure 4 read/write workload runs on 1, 2 and 4 sites
    with available-copies replication (read-one / write-all-available) under
    both the semantic backend and the strict-2PL baseline; every multi-site
    variant includes a scripted crash and recovery of site 1.  The one-site
    variants are the centralized curves of Figures 4 / figure-4-2pl,
    bit-identical to the pre-multi-site system.
    """
    variants: List[Variant] = []
    for backend_label, policy in (
        ("semantic", ConflictPolicy.RECOVERABILITY),
        ("2pl", ConflictPolicy.TWO_PHASE_LOCKING),
    ):
        for sites in (1, 2, 4):
            overrides: Dict[str, object] = {"policy": policy}
            if sites > 1:
                overrides.update(
                    site_count=sites,
                    replication="copies",
                    failure_schedule=_SITE_FAILURE_SCENARIO,
                )
            variants.append(
                Variant(label=f"{sites}-site/{backend_label}", overrides=overrides)
            )
    return ExperimentSpec(
        experiment_id="figure-4-sites",
        title="Throughput across 1/2/4 sites (available-copies, site 1 crash at t=0.5 s)",
        workload="readwrite",
        base_params=_base_params(scale),
        mpl_levels=scale.mpl_levels,
        variants=tuple(variants),
        metrics=("throughput", "restart_ratio"),
        runs=scale.runs,
        description="Replication trades throughput for availability: write-all "
        "fan-out adds blocking and the scripted crash aborts in-flight writers, "
        "so multi-site curves sit at or below their centralized counterparts "
        "while the system keeps completing work through the failure; the "
        "semantic backend should stay ahead of strict 2PL at every site count.",
    )


def figure_4_sites_scaling(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Replication's read-scaling upside under finite per-site resources.

    Not a figure of the paper: it is the experiment per-site resource
    domains exist for.  Every site owns one resource unit
    (``resource_placement="per_site"``), objects are fully replicated, and
    cross-site work pays a 1 ms network cost.  A read-heavy workload (10 %
    writes) and a write-heavy one (70 % writes) each run on 1, 2 and 4
    sites: reads execute at one (least-loaded) replica, so read-heavy
    throughput grows with the site count — each site added is hardware
    added — while write-all-available fan-out consumes every site's
    hardware at once, so write-heavy throughput stays roughly flat.
    """
    variants: List[Variant] = []
    for workload_label, write_probability in (
        ("read-heavy", 0.1),
        ("write-heavy", 0.7),
    ):
        for sites in (1, 2, 4):
            overrides: Dict[str, object] = {
                "write_probability": write_probability,
                "resource_units": 1,
                "resource_placement": "per_site",
                "msg_time": 0.001,
            }
            if sites > 1:
                overrides.update(site_count=sites, replication="copies")
            variants.append(
                Variant(label=f"{sites}-site/{workload_label}", overrides=overrides)
            )
    return ExperimentSpec(
        experiment_id="figure-4-sites-scaling",
        title="Read scaling across 1/2/4 replicated sites (per-site resources)",
        workload="readwrite",
        base_params=_base_params(scale),
        mpl_levels=scale.mpl_levels,
        variants=tuple(variants),
        metrics=("throughput", "response_time"),
        runs=scale.runs,
        description="With hardware owned per site, replication finally shows "
        "its benefit and not just its cost: read-one routing spreads the "
        "read-heavy workload over the added capacity (throughput grows with "
        "the site count), while write-all-available fan-out charges every "
        "site for every write, pinning write-heavy throughput near the "
        "centralized level.",
    )


#: Scripted crash/recover sequence for the protocol comparison: site 1
#: crashes and comes back, then site 0 crashes while site 1's copies are —
#: under available-copies — still mostly unreadable.  That second crash is
#: where the protocols diverge: available-copies loses reads (the unreadable
#: window is the only readable copy's crash away from an outage), quorum and
#: primary-copy caught site 1 up at t=1.0 and keep serving them.  All times
#: sit inside even the fastest smoke-scale run (~1.8 simulated seconds).
_PROTOCOL_FAILURE_SCENARIO: Tuple[Tuple[float, str, int], ...] = (
    (0.5, "fail", 1),
    (1.0, "recover", 1),
    (1.3, "fail", 0),
    (1.6, "recover", 0),
)


def figure_4_protocols(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Figure 4's workload under the three replication protocols.

    Not a figure of the paper: it makes the availability trade-offs of the
    replication literature measurable.  Two fully replicated sites run the
    read/write workload through a scripted double crash (site 1, then —
    after site 1 recovered — site 0) under available-copies, quorum
    consensus (R=1, W=2: read-one quorums with versioned write-all) and
    primary-copy with failover.  The ``replication_*`` counters record who
    lost what: available-copies aborts reads during the unreadable window,
    the quorum loses writes whenever fewer than W copies are up, and
    primary-copy rides through both crashes on catch-up plus a failover
    election.

    The workload is smaller and writier than Figure 4's (100 objects, 4-8
    operations, 50 % writes) so the available-copies window is *measured*
    rather than absorbing: committed writes are what make stale copies
    readable again, and at the nominal 1000-object read-heavy settings a
    double crash leaves most objects with no readable copy anywhere for
    most of the run.  The mpl sweep is capped at 50 at every scale — the
    small hot database data-thrashes far earlier than Figure 4's, and the
    protocols' availability behaviour, this figure's subject, is fully
    visible below the cap.
    """
    scale = _capped_scale(scale, 50)
    common: Dict[str, object] = {
        "site_count": 2,
        "replication": "copies",
        "failure_schedule": _PROTOCOL_FAILURE_SCENARIO,
    }
    variants = (
        Variant(
            label="available-copies",
            overrides=dict(common, replication_protocol="available-copies"),
        ),
        Variant(
            label="quorum(R=1,W=2)",
            overrides=dict(
                common,
                replication_protocol="quorum",
                quorum_read=1,
                quorum_write=2,
            ),
        ),
        Variant(
            label="primary-copy",
            overrides=dict(common, replication_protocol="primary-copy"),
        ),
    )
    return ExperimentSpec(
        experiment_id="figure-4-protocols",
        title="Replication protocols through a double crash (2 sites, RW model)",
        workload="readwrite",
        base_params=_base_params(
            scale,
            database_size=100,
            min_length=4,
            max_length=8,
            write_probability=0.5,
        ),
        mpl_levels=scale.mpl_levels,
        variants=variants,
        metrics=("throughput", "restart_ratio"),
        runs=scale.runs,
        description="Availability is a protocol property, not a replication "
        "property: available-copies shows a read-unavailability window when "
        "the only fresh copy crashes, quorum consensus trades write "
        "availability (W=2 needs both sites) for window-free reads, and "
        "primary-copy sustains both through catch-up recovery and a "
        "deterministic failover election.",
    )


def figure_4_commit(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """The two commit protocols through the scripted double crash.

    Not a figure of the paper: it prices *when a commit may report
    durable*.  Three fully replicated sites run the writier protocol
    workload under quorum consensus (R=2, W=2) with a 2 ms network cost,
    through the double crash of figure-4-protocols — site 1 crashes and
    recovers, then site 0 crashes with a pseudo-committed population in
    flight.  The one-phase baseline drops a crashed site's pseudo-committed
    branches from the commit-outstanding set, so commits report durable
    with fewer than W stamped live copies: the under-replication window the
    ROADMAP documented, counted per under-stamped object of a reported
    commit in ``replication_under_replicated_window``.  Two-phase commit (2PC) pays a
    prepare round per commit (one extra ``msg_time`` of latency, visible in
    the response-time series) and certification DFS work, but reports
    durable only at W live stamps, re-replicating under-stamped objects to
    the spare site the moment a member crashes — its window is exactly
    zero.
    """
    scale = _capped_scale(scale, 50)
    common: Dict[str, object] = {
        "site_count": 3,
        "replication": "copies",
        "replication_protocol": "quorum",
        "quorum_read": 2,
        "quorum_write": 2,
        "msg_time": 0.002,
        "failure_schedule": _PROTOCOL_FAILURE_SCENARIO,
    }
    variants = (
        Variant(label="one-phase", overrides=dict(common, commit_protocol="one-phase")),
        Variant(label="two-phase", overrides=dict(common, commit_protocol="two-phase")),
    )
    return ExperimentSpec(
        experiment_id="figure-4-commit",
        title="Commit protocols through a double crash (3 sites, quorum R=2/W=2)",
        workload="readwrite",
        base_params=_base_params(
            scale,
            database_size=100,
            min_length=4,
            max_length=8,
            write_probability=0.5,
        ),
        mpl_levels=scale.mpl_levels,
        variants=variants,
        metrics=("throughput", "response_time"),
        runs=scale.runs,
        description="Durability reporting is a protocol property: the "
        "one-phase fan-out keeps latency at one message round but lets a "
        "crash finalize commits below W stamped copies (a nonzero "
        "under-replication window), while 2PC charges a prepare round and "
        "certification work to guarantee every reported commit is fully "
        "W-replicated, re-replicating to the spare site on failure.",
    )


# ----------------------------------------------------------------------
# Abstract-data-type model (Figures 14-18)
# ----------------------------------------------------------------------
def figure_14(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Throughput; ADT model, infinite resources, Pc=4, Pr in {0, 4, 8}."""
    return _adt_spec(
        scale,
        "figure-14",
        "Throughput (infinite resources, ADT model, Pc=4)",
        ["throughput"],
        "More recoverable entries give higher throughput and delay thrashing; at "
        "mpl=50 the Pr=8 curve should be roughly double the Pr=0 curve.",
        pc=4,
    )


def figure_15(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Throughput; ADT model, infinite resources, Pc=2, Pr in {0, 4, 8}."""
    return _adt_spec(
        scale,
        "figure-15",
        "Throughput (infinite resources, ADT model, Pc=2)",
        ["throughput"],
        "Pc=2, Pr=8 approximates a stack-like object; its peak throughput should be "
        "about double the commutativity-only (Pr=0) curve.",
        pc=2,
    )


def figure_16(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Conflict ratios; ADT model, infinite resources, Pc=4."""
    return _adt_spec(
        scale,
        "figure-16",
        "Conflict ratios (infinite resources, ADT model, Pc=4)",
        ["blocking_ratio", "restart_ratio"],
        "Blocking ratio grows with mpl but more slowly for larger Pr; restart ratios "
        "are similar except at mpl=200 where larger Pr restarts less.",
        pc=4,
    )


def figure_17(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Throughput; ADT model, 5 resource units, Pc=4."""
    return _adt_spec(
        scale,
        "figure-17",
        "Throughput (5 resource units, ADT model, Pc=4)",
        ["throughput"],
        "Peaks are lower than with infinite resources; Pr=8 still clearly wins and "
        "delays thrashing to a higher mpl.",
        pc=4,
        resource_units=5,
    )


def figure_18(scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Throughput; ADT model, 1 resource unit, Pc=4."""
    return _adt_spec(
        scale,
        "figure-18",
        "Throughput (1 resource unit, ADT model, Pc=4)",
        ["throughput"],
        "With a single resource unit throughput is low for every Pr; recoverability "
        "only helps visibly once the system thrashes.",
        pc=4,
        resource_units=1,
    )


#: Registry mapping experiment ids to builder functions.
FIGURE_BUILDERS: Dict[str, Callable[[ReproductionScale], ExperimentSpec]] = {
    "figure-4": figure_4,
    "figure-4-2pl": figure_4_2pl,
    "figure-4-sites": figure_4_sites,
    "figure-4-sites-scaling": figure_4_sites_scaling,
    "figure-4-protocols": figure_4_protocols,
    "figure-4-commit": figure_4_commit,
    "figure-5": figure_5,
    "figure-6": figure_6,
    "figure-7": figure_7,
    "figure-8": figure_8,
    "figure-9": figure_9,
    "figure-10": figure_10,
    "figure-11": figure_11,
    "figure-12": figure_12,
    "figure-13": figure_13,
    "figure-14": figure_14,
    "figure-15": figure_15,
    "figure-16": figure_16,
    "figure-17": figure_17,
    "figure-18": figure_18,
}


def all_figure_ids() -> List[str]:
    """Every figure id, in paper order."""
    return list(FIGURE_BUILDERS)


def figure_spec(experiment_id: str, scale: ReproductionScale = BENCH_SCALE) -> ExperimentSpec:
    """Look a figure's spec up by id (e.g. ``"figure-4"``)."""
    try:
        builder = FIGURE_BUILDERS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(FIGURE_BUILDERS)}"
        ) from None
    return builder(scale)
