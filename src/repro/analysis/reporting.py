"""Text rendering of experiment results in the paper's row/series format.

The paper presents each figure as a set of curves over the multiprogramming
level.  :func:`render_result` prints the same information as an aligned text
table — one row per mpl level, one column per (variant, metric) pair — plus a
short summary of the headline comparisons (peak throughput per variant and
relative improvement), which is what EXPERIMENTS.md records as
"paper vs measured".
"""

from __future__ import annotations

from typing import List, Tuple

from .experiments import ExperimentResult

__all__ = ["render_result", "render_summary", "render_series"]

_METRIC_SHORT_NAMES = {
    "throughput": "thr",
    "response_time": "resp",
    "blocking_ratio": "BR",
    "restart_ratio": "RR",
    "cycle_check_ratio": "CCR",
    "abort_length": "AL",
    "pseudo_commit_fraction": "pseudo",
    "completions": "done",
}


def _column_label(variant: str, metric: str) -> str:
    return f"{variant}:{_METRIC_SHORT_NAMES.get(metric, metric)}"


def render_series(result: ExperimentResult) -> str:
    """The per-level table of every (variant, metric) series."""
    spec = result.spec
    columns: List[Tuple[str, str]] = [
        (variant.label, metric) for variant in spec.variants for metric in spec.metrics
    ]
    header_cells = ["mpl"] + [_column_label(v, m) for v, m in columns]
    widths = [max(len(cell), 10) for cell in header_cells]
    lines = ["".join(cell.ljust(width + 2) for cell, width in zip(header_cells, widths))]
    for level in sorted(spec.mpl_levels):
        row_cells = [str(level)]
        for variant_label, metric in columns:
            value = dict(result.series(variant_label, metric))[level]
            row_cells.append(f"{value:.3f}")
        lines.append(
            "".join(cell.ljust(width + 2) for cell, width in zip(row_cells, widths))
        )
    return "\n".join(lines)


def render_summary(result: ExperimentResult) -> str:
    """Peak values per variant plus improvements over the first variant."""
    spec = result.spec
    primary_metric = spec.metrics[0]
    lines = [f"summary ({primary_metric}):"]
    baseline_label = spec.variants[0].label
    for variant in spec.variants:
        peak_level, peak_value = result.peak(variant.label, primary_metric)
        lines.append(
            f"  {variant.label}: peak {peak_value:.3f} at mpl={peak_level}"
        )
    for variant in spec.variants[1:]:
        improvement = result.improvement(
            better=variant.label, baseline=baseline_label, metric=primary_metric
        )
        lines.append(
            f"  {variant.label} vs {baseline_label} at the {baseline_label} peak: "
            f"{improvement * 100:+.1f}%"
        )
    return "\n".join(lines)


def render_result(result: ExperimentResult, include_summary: bool = True) -> str:
    """Full report for one experiment: header, series table, summary."""
    spec = result.spec
    lines = [
        f"{spec.experiment_id}: {spec.title}",
        f"workload={spec.workload}  runs/point={spec.runs}  "
        f"completions/run={spec.base_params.total_completions}",
    ]
    if spec.description:
        lines.append(spec.description)
    lines.append("")
    lines.append(render_series(result))
    if include_summary:
        lines.append("")
        lines.append(render_summary(result))
    return "\n".join(lines)
