"""Reproduction of the paper's compatibility tables (Tables I-VIII) and the
parameter tables (Tables IX-X).

Tables I-VIII are not measurements: they are statements about the semantics of
the four example data types.  This module regenerates each of them two ways —

* the **declared** tables shipped with the ADT implementations (typed in from
  the paper), and
* the **derived** tables computed from the executable specifications by
  :mod:`repro.core.derivation` —

and reports, entry by entry, whether the declared entry is sound with respect
to the semantics and whether the two agree exactly.  The handful of places
where the derived table is strictly *more* permissive than the paper's
(e.g. two writes of the same value commute) are reported as such rather than
as errors.

Tables IX and X are simply the parameter schema and its nominal values, which
live in :class:`~repro.sim.params.SimulationParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..adts import get_type, paper_types
from ..core.compatibility import Answer, CompatibilitySpec
from ..core.derivation import derive_compatibility
from ..sim.params import SimulationParameters

__all__ = [
    "TableComparison",
    "TableReport",
    "compare_tables",
    "paper_table_reports",
    "PAPER_TABLE_NUMBERS",
    "parameter_table",
]

#: Which paper table numbers correspond to which bundled data type.
PAPER_TABLE_NUMBERS: Dict[str, Tuple[str, str]] = {
    "page": ("Table I", "Table II"),
    "stack": ("Table III", "Table IV"),
    "set": ("Table V", "Table VI"),
    "table": ("Table VII", "Table VIII"),
}


@dataclass(frozen=True)
class TableComparison:
    """Comparison of one declared table entry with its derived counterpart."""

    relation: str
    requested: str
    executed: str
    declared: Answer
    derived: Answer

    @property
    def agrees(self) -> bool:
        """True when the declared and derived entries are identical."""
        return self.declared is self.derived

    @property
    def declared_is_sound(self) -> bool:
        """True when the declared entry admits no pair the semantics rejects."""
        return self.declared.implies(self.derived)


@dataclass
class TableReport:
    """Full regeneration of one data type's pair of tables."""

    type_name: str
    commutativity_table_name: str
    recoverability_table_name: str
    declared: CompatibilitySpec
    derived: CompatibilitySpec
    comparisons: List[TableComparison]

    @property
    def all_sound(self) -> bool:
        return all(comparison.declared_is_sound for comparison in self.comparisons)

    @property
    def exact_matches(self) -> int:
        return sum(1 for comparison in self.comparisons if comparison.agrees)

    @property
    def refinements(self) -> List[TableComparison]:
        """Entries where derivation is strictly more permissive than the paper."""
        return [c for c in self.comparisons if c.declared_is_sound and not c.agrees]

    def render(self) -> str:
        """Text rendering: declared tables, derived tables, and the diff."""
        lines = [
            f"=== {self.type_name} "
            f"({self.commutativity_table_name} / {self.recoverability_table_name}) ===",
            "",
            "Declared (as published):",
            self.declared.render(),
            "",
            "Derived from the executable specification:",
            self.derived.render(),
            "",
            f"entries: {len(self.comparisons)}, exact matches: {self.exact_matches}, "
            f"sound: {self.all_sound}",
        ]
        refinements = self.refinements
        if refinements:
            lines.append("derivation is finer for:")
            for comparison in refinements:
                lines.append(
                    f"  {comparison.relation}({comparison.requested}, {comparison.executed}): "
                    f"declared {comparison.declared}, derived {comparison.derived}"
                )
        return "\n".join(lines)


def compare_tables(type_name: str) -> TableReport:
    """Regenerate and compare the declared and derived tables of one type."""
    spec = get_type(type_name)
    declared = spec.compatibility()
    derived = derive_compatibility(spec)
    comparisons: List[TableComparison] = []
    for relation, declared_table, derived_table in (
        ("commutativity", declared.commutativity, derived.commutativity),
        ("recoverability", declared.recoverability, derived.recoverability),
    ):
        for requested in declared.operations:
            for executed in declared.operations:
                comparisons.append(
                    TableComparison(
                        relation=relation,
                        requested=requested,
                        executed=executed,
                        declared=declared_table.answer(requested, executed),
                        derived=derived_table.answer(requested, executed),
                    )
                )
    commutativity_name, recoverability_name = PAPER_TABLE_NUMBERS.get(
        type_name, ("commutativity", "recoverability")
    )
    return TableReport(
        type_name=type_name,
        commutativity_table_name=commutativity_name,
        recoverability_table_name=recoverability_name,
        declared=declared,
        derived=derived,
        comparisons=comparisons,
    )


def paper_table_reports() -> List[TableReport]:
    """Reports for the four data types of Tables I-VIII, in paper order."""
    return [compare_tables(type_name) for type_name in paper_types()]


def parameter_table() -> str:
    """Render Tables IX-X: every simulation parameter and its nominal value."""
    params = SimulationParameters()
    description = params.describe()
    width = max(len(key) for key in description) + 2
    lines = ["Simulation parameters (Tables IX-X nominal values)", "-" * 52]
    for key in sorted(description):
        lines.append(f"{key.ljust(width)}{description[key]}")
    return "\n".join(lines)
