"""Deterministic cProfile harness for the simulator's hot loop.

``repro profile`` wraps one seeded simulation point in :mod:`cProfile` and
reports the *call counts* — which, unlike the timing columns, are fully
determined by ``(parameters, seed)``: the same invocation on any machine
produces the same total calls, the same per-function counts, and therefore
the same report.  That is what makes the output diffable PR-over-PR: a
hot-loop refactor shows up as a drop in calls/event, not as wall-clock noise.

The raw pstats rendering (timings included) is available behind
``render(raw=True)`` for interactive tuning sessions.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import List, Tuple

from ..sim.metrics import RunMetrics
from ..sim.params import SimulationParameters
from ..sim.simulator import run_simulation

__all__ = ["ProfileReport", "profile_simulation"]


def _shorten(filename: str) -> str:
    """Machine-independent location: anchor paths at the ``repro`` package."""
    normalized = filename.replace("\\", "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        return "repro/" + normalized[index + len(marker):]
    return normalized.rsplit("/", 1)[-1]


@dataclass(frozen=True)
class ProfileReport:
    """One profiled simulation point: deterministic counts + raw pstats."""

    params: SimulationParameters
    workload: str
    metrics: RunMetrics
    #: Total Python-level calls during the run (primitive + recursive).
    total_calls: int
    #: ``(ncalls, "repro/...:lineno(function)")`` rows, most-called first
    #: (ties broken by location) — deterministic for a seeded run.
    rows: Tuple[Tuple[int, str], ...]
    #: Full pstats text sorted by cumulative time.  Wall-clock: NOT
    #: deterministic; excluded from the default rendering.
    raw_stats: str

    @property
    def calls_per_event(self) -> float:
        """Python-level calls per simulation-engine event."""
        if self.metrics.events_processed == 0:
            return 0.0
        return self.total_calls / self.metrics.events_processed

    def render(self, top: int = 25, raw: bool = False) -> str:
        """The report text: header, top-N call counts, optional raw pstats."""
        lines = [
            f"profile: workload={self.workload} policy={self.params.policy.value} "
            f"mpl={self.params.mpl_level} "
            f"completions={self.params.total_completions} "
            f"database_size={self.params.database_size} seed={self.params.seed}",
            f"events_processed={self.metrics.events_processed}  "
            f"total_calls={self.total_calls}  "
            f"calls/event={self.calls_per_event:.2f}",
            "",
            f"top {min(top, len(self.rows))} functions by call count "
            "(deterministic for a seeded run):",
        ]
        width = max((len(str(ncalls)) for ncalls, _ in self.rows[:top]), default=1)
        for ncalls, location in self.rows[:top]:
            lines.append(f"  {str(ncalls).rjust(width)}  {location}")
        if raw:
            lines += ["", "raw pstats (wall-clock times; not deterministic):",
                      self.raw_stats.rstrip()]
        return "\n".join(lines)


def profile_simulation(
    params: SimulationParameters, workload_kind: str = "readwrite"
) -> ProfileReport:
    """Profile one simulation point and return its deterministic report."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        metrics = run_simulation(params, workload_kind=workload_kind)
    finally:
        profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats()

    rows: List[Tuple[int, str]] = []
    for (filename, lineno, funcname), entry in stats.stats.items():  # type: ignore[attr-defined]
        ncalls = entry[1]  # (cc, nc, tt, ct, callers): nc = total call count
        rows.append((ncalls, f"{_shorten(filename)}:{lineno}({funcname})"))
    rows.sort(key=lambda row: (-row[0], row[1]))

    return ProfileReport(
        params=params,
        workload=workload_kind,
        metrics=metrics,
        total_calls=int(stats.total_calls),  # type: ignore[attr-defined]
        rows=tuple(rows),
        raw_stats=buffer.getvalue(),
    )
