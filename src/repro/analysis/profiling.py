"""Deterministic cProfile harness for the simulator's hot loop.

``repro profile`` wraps one seeded simulation point in :mod:`cProfile` and
reports the *call counts* — which, unlike the timing columns, are fully
determined by ``(parameters, seed)``: the same invocation on any machine
produces the same total calls, the same per-function counts, and therefore
the same report.  That is what makes the output diffable PR-over-PR: a
hot-loop refactor shows up as a drop in calls/event, not as wall-clock noise.

The raw pstats rendering (timings included) is available behind
``render(raw=True)`` for interactive tuning sessions.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pathlib
import platform
import pstats
import re
import sys
import sysconfig
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from ..sim.metrics import RunMetrics
from ..sim.params import SimulationParameters
from ..sim.simulator import run_simulation

__all__ = [
    "ProfileReport",
    "ProfileComparison",
    "interpreter_features",
    "profile_simulation",
    "load_profile",
    "compare_profiles",
]


def interpreter_features() -> Dict[str, Any]:
    """Interpreter build facts that shape wall-clock (never call counts).

    Call counts are pinned per minor version; *wall-clock* additionally
    depends on how the interpreter was built, so the profile records the
    features that matter for reading its informational timing column:

    - ``jit`` — whether the experimental CPython JIT is present and on.
      3.14+ exposes a ``sys._jit`` probe; on 3.13 (which can be built with
      ``--enable-experimental-jit`` but predates the probe) the build
      flags are consulted instead, with ``PYTHON_JIT=0`` respected.
    - ``gil_disabled`` — a free-threaded (``--disable-gil``) build.
    """
    jit_probe = getattr(sys, "_jit", None)
    if jit_probe is not None:
        jit_available = bool(getattr(jit_probe, "is_available", lambda: False)())
        jit_enabled = bool(getattr(jit_probe, "is_enabled", lambda: False)())
        jit_source = "sys._jit"
    else:
        flags = " ".join(
            str(sysconfig.get_config_var(name) or "")
            for name in ("PY_CORE_CFLAGS", "CONFIG_ARGS")
        )
        jit_available = "_Py_JIT" in flags or "enable-experimental-jit" in flags
        jit_enabled = jit_available and os.environ.get("PYTHON_JIT", "1") != "0"
        jit_source = "build-flags"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "jit_available": jit_available,
        "jit_enabled": jit_enabled,
        "jit_source": jit_source,
        "gil_disabled": bool(sysconfig.get_config_var("Py_GIL_DISABLED") or 0),
    }


def _interpreter_line(features: Dict[str, Any]) -> str:
    """One-line rendering of :func:`interpreter_features`."""
    jit = "on" if features["jit_enabled"] else (
        "available" if features["jit_available"] else "off"
    )
    gil = "disabled" if features["gil_disabled"] else "enabled"
    return (
        f"interpreter: {features['implementation'].lower()} "
        f"{features['python']}  jit={jit} "
        f"(probe: {features['jit_source']})  gil={gil}"
    )

#: Format tag written into saved profiles, checked on load.
_PROFILE_SCHEMA = "repro-profile-v1"


#: ``repr``-style object addresses cProfile embeds in some builtin-call
#: entries (``<function Random.seed at 0x7f...>``) — per-process noise that
#: would keep a saved baseline from ever row-matching a fresh run.
_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _shorten(filename: str) -> str:
    """Machine-independent location: anchor paths at the ``repro`` package."""
    normalized = filename.replace("\\", "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        return "repro/" + normalized[index + len(marker):]
    return normalized.rsplit("/", 1)[-1]


@dataclass(frozen=True)
class ProfileReport:
    """One profiled simulation point: deterministic counts + raw pstats."""

    params: SimulationParameters
    workload: str
    metrics: RunMetrics
    #: Total Python-level calls during the run (primitive + recursive).
    total_calls: int
    #: ``(ncalls, "repro/...:lineno(function)")`` rows, most-called first
    #: (ties broken by location) — deterministic for a seeded run.
    rows: Tuple[Tuple[int, str], ...]
    #: Full pstats text sorted by cumulative time.  Wall-clock: NOT
    #: deterministic; excluded from the default rendering.
    raw_stats: str
    #: Wall-clock seconds of the profiled run.  Informational only — it
    #: varies with the host (and with cProfile overhead), so nothing gates
    #: on it; it rides along so the machine-local speed trajectory can be
    #: read next to the deterministic call counts.
    wall_seconds: float = 0.0

    @property
    def calls_per_event(self) -> float:
        """Python-level calls per simulation-engine event."""
        if self.metrics.events_processed == 0:
            return 0.0
        return self.total_calls / self.metrics.events_processed

    def render(self, top: int = 25, raw: bool = False) -> str:
        """The report text: header, top-N call counts, optional raw pstats."""
        lines = [
            f"profile: workload={self.workload} policy={self.params.policy.value} "
            f"mpl={self.params.mpl_level} "
            f"completions={self.params.total_completions} "
            f"database_size={self.params.database_size} seed={self.params.seed}",
            f"events_processed={self.metrics.events_processed}  "
            f"total_calls={self.total_calls}  "
            f"calls/event={self.calls_per_event:.2f}",
            _interpreter_line(interpreter_features()),
            "",
            f"top {min(top, len(self.rows))} functions by call count "
            "(deterministic for a seeded run):",
        ]
        width = max((len(str(ncalls)) for ncalls, _ in self.rows[:top]), default=1)
        for ncalls, location in self.rows[:top]:
            lines.append(f"  {str(ncalls).rjust(width)}  {location}")
        if raw:
            # Wall-clock output rides with the other host-dependent data so
            # the default rendering stays byte-identical run over run.
            lines += ["",
                      f"wall-clock: {self.wall_seconds:.3f}s under the "
                      "profiler (host-dependent; the gate is calls/event)",
                      "", "raw pstats (wall-clock times; not deterministic):",
                      self.raw_stats.rstrip()]
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """The deterministic portion of the report as a JSON-safe dict.

        Everything here is reproducible from ``(parameters, seed, python
        minor version)`` except ``wall_seconds``, which records the
        host-dependent duration of the profiled run for context — comparisons
        show it but never gate on it.  The wall-clock pstats table is
        deliberately left out.  The interpreter version is recorded because
        builtin-call counts shift between minor versions —
        ``compare_profiles`` flags mismatched baselines instead of reporting
        a phantom regression.
        """
        return {
            "schema": _PROFILE_SCHEMA,
            "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
            "interpreter": interpreter_features(),
            "workload": self.workload,
            "policy": self.params.policy.value,
            "mpl": self.params.mpl_level,
            "completions": self.params.total_completions,
            "database_size": self.params.database_size,
            "seed": self.params.seed,
            "events_processed": self.metrics.events_processed,
            "total_calls": self.total_calls,
            "calls_per_event": round(self.calls_per_event, 4),
            "wall_seconds": round(self.wall_seconds, 3),
            "functions": [[ncalls, location] for ncalls, location in self.rows],
        }

    def save(self, path: Union[str, "pathlib.Path"]) -> None:
        """Write :meth:`to_json_dict` to ``path`` (for later ``--compare``)."""
        pathlib.Path(path).write_text(
            json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"
        )


@dataclass(frozen=True)
class ProfileComparison:
    """A deterministic call-count diff of two saved profiles (A -> B)."""

    label_a: str
    label_b: str
    python_a: str
    python_b: str
    events_a: int
    events_b: int
    total_calls_a: int
    total_calls_b: int
    #: ``(delta, calls_a, calls_b, location)`` rows over the union of
    #: functions, largest absolute delta first (ties by location).
    rows: Tuple[Tuple[int, int, int, str], ...]
    #: Wall-clock seconds of each profiled run, when the saved profile
    #: recorded them (older baselines predate the field).  Informational
    #: only: :meth:`regressed` gates exclusively on the calls/event delta.
    wall_a: Optional[float] = None
    wall_b: Optional[float] = None

    @property
    def calls_per_event_a(self) -> float:
        return self.total_calls_a / self.events_a if self.events_a else 0.0

    @property
    def calls_per_event_b(self) -> float:
        return self.total_calls_b / self.events_b if self.events_b else 0.0

    @property
    def delta_pct(self) -> float:
        """Relative change of calls/event from A to B (positive = regression)."""
        if self.calls_per_event_a == 0.0:
            return 0.0
        return (
            (self.calls_per_event_b - self.calls_per_event_a)
            / self.calls_per_event_a
            * 100.0
        )

    def regressed(self, regress_pct: float) -> bool:
        """True when B's calls/event exceeds A's by more than ``regress_pct``."""
        return self.delta_pct > regress_pct

    def render(self, top: int = 25) -> str:
        """Header plus the top-N per-function delta table."""
        lines = [
            f"A: {self.label_a}  (python {self.python_a})",
            f"B: {self.label_b}  (python {self.python_b})",
            f"calls/event: {self.calls_per_event_a:.2f} -> "
            f"{self.calls_per_event_b:.2f}  ({self.delta_pct:+.2f}%)",
            f"total calls: {self.total_calls_a} -> {self.total_calls_b}  "
            f"(events {self.events_a} -> {self.events_b})",
            "wall-clock: "
            f"{'n/a' if self.wall_a is None else f'{self.wall_a:.3f}s'} -> "
            f"{'n/a' if self.wall_b is None else f'{self.wall_b:.3f}s'}  "
            "(host-dependent; informational only, never gates)",
        ]
        if self.python_a != self.python_b:
            lines.append(
                "warning: profiles were recorded on different interpreter "
                "versions; builtin call counts are not comparable"
            )
        shown = [row for row in self.rows if row[0] != 0][:top]
        if not shown:
            lines += ["", "no per-function call-count changes"]
            return "\n".join(lines)
        lines += ["", f"top {len(shown)} call-count deltas (B - A):"]
        width = max(len(f"{delta:+d}") for delta, _, _, _ in shown)
        for delta, calls_a, calls_b, location in shown:
            lines.append(
                f"  {f'{delta:+d}'.rjust(width)}  "
                f"{calls_a} -> {calls_b}  {location}"
            )
        return "\n".join(lines)


def load_profile(path: Union[str, "pathlib.Path"]) -> Dict[str, Any]:
    """Load a profile saved by ``repro profile --save`` and validate it."""
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict) or data.get("schema") != _PROFILE_SCHEMA:
        raise ValueError(
            f"{path} is not a saved repro profile "
            f"(expected schema {_PROFILE_SCHEMA!r})"
        )
    return data


def compare_profiles(
    profile_a: Dict[str, Any],
    profile_b: Dict[str, Any],
    label_a: str = "A",
    label_b: str = "B",
) -> ProfileComparison:
    """Diff two loaded profiles into a :class:`ProfileComparison`."""

    def wall(profile: Dict[str, Any]) -> Optional[float]:
        value = profile.get("wall_seconds")
        return float(value) if isinstance(value, (int, float)) else None

    calls_a = {location: int(ncalls) for ncalls, location in profile_a["functions"]}
    calls_b = {location: int(ncalls) for ncalls, location in profile_b["functions"]}
    rows = [
        (
            calls_b.get(location, 0) - calls_a.get(location, 0),
            calls_a.get(location, 0),
            calls_b.get(location, 0),
            location,
        )
        for location in set(calls_a) | set(calls_b)
    ]
    rows.sort(key=lambda row: (-abs(row[0]), row[3]))
    return ProfileComparison(
        label_a=label_a,
        label_b=label_b,
        python_a=str(profile_a.get("python", "?")),
        python_b=str(profile_b.get("python", "?")),
        events_a=int(profile_a["events_processed"]),
        events_b=int(profile_b["events_processed"]),
        total_calls_a=int(profile_a["total_calls"]),
        total_calls_b=int(profile_b["total_calls"]),
        rows=tuple(rows),
        wall_a=wall(profile_a),
        wall_b=wall(profile_b),
    )


def profile_simulation(
    params: SimulationParameters, workload_kind: str = "readwrite"
) -> ProfileReport:
    """Profile one simulation point and return its deterministic report."""
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        metrics = run_simulation(params, workload_kind=workload_kind)
    finally:
        profiler.disable()
        wall_seconds = time.perf_counter() - started

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats()

    # Aggregate by normalized location: stripping the per-process object
    # addresses can merge entries that differ only by address.
    by_location: Dict[str, int] = {}
    for (filename, lineno, funcname), entry in stats.stats.items():  # type: ignore[attr-defined]
        ncalls = entry[1]  # (cc, nc, tt, ct, callers): nc = total call count
        name = _ADDRESS.sub("", funcname)
        location = f"{_shorten(filename)}:{lineno}({name})"
        by_location[location] = by_location.get(location, 0) + ncalls
    rows = [(ncalls, location) for location, ncalls in by_location.items()]
    rows.sort(key=lambda row: (-row[0], row[1]))

    return ProfileReport(
        params=params,
        workload=workload_kind,
        metrics=metrics,
        total_calls=int(stats.total_calls),  # type: ignore[attr-defined]
        rows=tuple(rows),
        raw_stats=buffer.getvalue(),
        wall_seconds=wall_seconds,
    )
