"""Experiment harness: parameter sweeps, multi-run averaging, result objects.

The paper's figures all have the same shape: one or more *variants* (e.g.
commutativity vs recoverability, or P_r = 0/4/8) swept over a range of
multiprogramming levels, each point averaged over several runs.  An
:class:`ExperimentSpec` captures that shape declaratively; :func:`run_experiment`
executes it and returns an :class:`ExperimentResult` that the reporting module
renders as the paper-style series.

Every ``(variant, mpl_level, run_index)`` point is an independent seeded
simulation, so :func:`run_experiment` can fan the points out over a
``ProcessPoolExecutor`` (``workers > 1``) and reassemble the results in the
deterministic spec order — the :class:`ExperimentResult` is identical, point
for point and byte for byte, to the serial ``workers=1`` path.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ExperimentError
from ..sim.metrics import RunMetrics
from ..sim.params import SimulationParameters
from ..sim.simulator import Simulation

__all__ = [
    "Variant",
    "AveragedMetrics",
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
]


@dataclass(frozen=True)
class Variant:
    """One curve of a figure: a label plus parameter overrides."""

    label: str
    overrides: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class AveragedMetrics:
    """Metrics of one (variant, mpl) point averaged over the runs."""

    runs: int
    throughput: float
    response_time: float
    blocking_ratio: float
    restart_ratio: float
    cycle_check_ratio: float
    abort_length: float
    completions: float
    pseudo_commit_fraction: float
    #: Simulated seconds summed over the point's runs — deterministic, like
    #: the counters; ``tools/bench_summary.py`` records it per point.
    simulated_time: float = 0.0
    #: Raw deterministic counters summed over the point's runs (the
    #: :meth:`~repro.sim.metrics.RunMetrics.counters` set, including the
    #: ``resource_*`` and ``replication_*`` families), frozen as sorted
    #: pairs; benchmark shape assertions read protocol overheads from here.
    counters: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def from_runs(cls, metrics: Sequence[RunMetrics]) -> "AveragedMetrics":
        """Average the derived metrics of several runs (plain mean)."""
        if not metrics:
            raise ExperimentError("cannot average zero runs")
        count = len(metrics)

        def mean(values: Sequence[float]) -> float:
            return sum(values) / count

        summed: Dict[str, float] = {}
        for run in metrics:
            for name, value in run.counters().items():
                summed[name] = summed.get(name, 0) + value

        return cls(
            counters=tuple(sorted(summed.items())),
            simulated_time=sum(m.simulated_time for m in metrics),
            runs=count,
            throughput=mean([m.throughput for m in metrics]),
            response_time=mean([m.response_time for m in metrics]),
            blocking_ratio=mean([m.blocking_ratio for m in metrics]),
            restart_ratio=mean([m.restart_ratio for m in metrics]),
            cycle_check_ratio=mean([m.cycle_check_ratio for m in metrics]),
            abort_length=mean([m.abort_length for m in metrics]),
            completions=mean([float(m.completions) for m in metrics]),
            pseudo_commit_fraction=mean(
                [
                    (m.pseudo_commits / m.completions) if m.completions else 0.0
                    for m in metrics
                ]
            ),
        )

    def metric(self, name: str) -> float:
        """Look a metric up by its report name."""
        try:
            return float(getattr(self, name))
        except (AttributeError, TypeError):
            raise ExperimentError(f"unknown metric {name!r}") from None

    def counter(self, name: str, default: float = 0.0) -> float:
        """One raw counter summed over the point's runs (0.0 if absent)."""
        for key, value in self.counters:
            if key == name:
                return value
        return default


@dataclass
class ExperimentSpec:
    """Declarative description of one figure-style experiment."""

    experiment_id: str
    title: str
    workload: str
    base_params: SimulationParameters
    mpl_levels: Sequence[int]
    variants: Sequence[Variant]
    #: Metric names (attributes of :class:`AveragedMetrics`) the report shows.
    metrics: Sequence[str] = ("throughput",)
    #: Number of independent runs (different seeds) per point.
    runs: int = 1
    #: Free-text description shown at the top of the report.
    description: str = ""

    def validate(self) -> None:
        if not self.mpl_levels:
            raise ExperimentError(f"{self.experiment_id}: no multiprogramming levels")
        if not self.variants:
            raise ExperimentError(f"{self.experiment_id}: no variants")
        if self.runs <= 0:
            raise ExperimentError(f"{self.experiment_id}: runs must be positive")
        labels = [variant.label for variant in self.variants]
        if len(labels) != len(set(labels)):
            raise ExperimentError(f"{self.experiment_id}: duplicate variant labels")


@dataclass
class ExperimentResult:
    """All points of one experiment, keyed by variant label and mpl level."""

    spec: ExperimentSpec
    points: Dict[str, Dict[int, AveragedMetrics]]

    def series(self, variant_label: str, metric: str) -> List[Tuple[int, float]]:
        """The (mpl, value) series of one variant for one metric."""
        try:
            per_level = self.points[variant_label]
        except KeyError:
            raise ExperimentError(
                f"{self.spec.experiment_id}: unknown variant {variant_label!r}"
            ) from None
        return [(level, per_level[level].metric(metric)) for level in sorted(per_level)]

    def peak(self, variant_label: str, metric: str = "throughput") -> Tuple[int, float]:
        """The (mpl, value) point where the metric peaks for a variant."""
        series = self.series(variant_label, metric)
        return max(series, key=lambda pair: pair[1])

    def variant_labels(self) -> List[str]:
        return [variant.label for variant in self.spec.variants]

    def counter_total(self, variant_label: str, counter: str) -> float:
        """One raw counter summed over every mpl level of a variant."""
        try:
            per_level = self.points[variant_label]
        except KeyError:
            raise ExperimentError(
                f"{self.spec.experiment_id}: unknown variant {variant_label!r}"
            ) from None
        return sum(point.counter(counter) for point in per_level.values())

    def improvement(
        self, better: str, baseline: str, metric: str = "throughput", mpl: Optional[int] = None
    ) -> float:
        """Relative improvement ``(better - baseline) / baseline`` at one mpl
        level (default: the level where the baseline peaks)."""
        if mpl is None:
            mpl = self.peak(baseline, metric)[0]
        better_value = dict(self.series(better, metric))[mpl]
        baseline_value = dict(self.series(baseline, metric))[mpl]
        if baseline_value == 0:
            return 0.0
        return (better_value - baseline_value) / baseline_value


#: Per-process cache of constructed simulations, keyed by everything that
#: shapes the constructed system — the workload kind plus every parameter
#: except the sweep knobs :attr:`Simulation._RESET_OVERRIDABLE` normalizes
#: away.  A sweep's points differ only in those knobs, so each hit replaces
#: a full rebuild (object registration, table compilation, router wiring)
#: with :meth:`Simulation.reset`.  The seed is part of the key: a different
#: seed derives different random streams at construction time (the ADT
#: tables among them), which ``reset`` deliberately never changes.  Bounded
#: FIFO so long heterogeneous sweeps cannot hoard managers.
_SIMULATION_CACHE: Dict[Tuple, Simulation] = {}
_SIMULATION_CACHE_LIMIT = 16


def _simulate_point(task: Tuple[SimulationParameters, str]) -> RunMetrics:
    """Run one ``(params, workload)`` point; module-level so it pickles."""
    params, workload_kind = task
    normalized = params.replace(
        mpl_level=1, total_completions=1, warmup_completions=0
    )
    key = (workload_kind, dataclasses.astuple(normalized))
    simulation = _SIMULATION_CACHE.get(key)
    if simulation is None:
        simulation = Simulation(params, workload_kind=workload_kind)
        if len(_SIMULATION_CACHE) >= _SIMULATION_CACHE_LIMIT:
            _SIMULATION_CACHE.pop(next(iter(_SIMULATION_CACHE)))
        _SIMULATION_CACHE[key] = simulation
    else:
        simulation.reset(params)
    return simulation.run()


def _point_tasks(spec: ExperimentSpec) -> List[Tuple[SimulationParameters, str]]:
    """Every (variant, mpl, run) point in deterministic spec order."""
    tasks: List[Tuple[SimulationParameters, str]] = []
    for variant in spec.variants:
        for mpl_level in spec.mpl_levels:
            for run_index in range(spec.runs):
                params = spec.base_params.replace(
                    mpl_level=mpl_level,
                    seed=spec.base_params.seed + run_index,
                    **dict(variant.overrides),
                )
                tasks.append((params, spec.workload))
    return tasks


def run_experiment(
    spec: ExperimentSpec,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
) -> ExperimentResult:
    """Execute every (variant, mpl, run) point of an experiment.

    ``progress`` (if given) is called with a human-readable string after each
    completed point; the benchmark harness uses it to stream status lines.

    ``workers`` fans the points out over a ``ProcessPoolExecutor``.  Every
    point is an independent simulation fully determined by ``(parameters,
    seed)``, and the results are reassembled in the deterministic spec order,
    so the returned :class:`ExperimentResult` is identical for every worker
    count; ``workers=1`` (the default) runs the exact serial path with no
    executor and no pickling.
    """
    spec.validate()
    if workers < 1:
        raise ExperimentError(f"{spec.experiment_id}: workers must be >= 1")
    tasks = _point_tasks(spec)
    if workers == 1:
        metrics_iter: Iterator[RunMetrics] = (_simulate_point(task) for task in tasks)
        return _assemble(spec, metrics_iter, progress)
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return _assemble(spec, executor.map(_simulate_point, tasks), progress)


def _assemble(
    spec: ExperimentSpec,
    metrics_iter: Iterator[RunMetrics],
    progress: Optional[Callable[[str], None]],
) -> ExperimentResult:
    """Fold the per-point metrics stream back into an :class:`ExperimentResult`.

    ``metrics_iter`` must yield one :class:`RunMetrics` per (variant, mpl,
    run) point in the order :func:`_point_tasks` produced them; consuming it
    lazily keeps the serial path's interleaving of simulation work and
    progress callbacks.
    """
    points: Dict[str, Dict[int, AveragedMetrics]] = {}
    for variant in spec.variants:
        per_level: Dict[int, AveragedMetrics] = {}
        for mpl_level in spec.mpl_levels:
            run_results = [next(metrics_iter) for _ in range(spec.runs)]
            per_level[mpl_level] = AveragedMetrics.from_runs(run_results)
            if progress is not None:
                progress(
                    f"{spec.experiment_id} {variant.label} mpl={mpl_level} "
                    f"throughput={per_level[mpl_level].throughput:.2f}"
                )
        points[variant.label] = per_level
    return ExperimentResult(spec=spec, points=points)
