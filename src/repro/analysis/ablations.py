"""Ablation experiments for the design choices called out in DESIGN.md.

These are not figures of the paper; each isolates one design decision of the
reproduction as a regular :class:`~repro.analysis.experiments.ExperimentSpec`
so the registry, the parallel runner and the benchmark harness treat them
exactly like the figure experiments:

* **pseudo-commit slot policy** — whether a pseudo-committed transaction
  keeps occupying a multiprogramming slot until its durable commit (the
  paper's reading) or releases it at completion;
* **write probability** — how the recoverability advantage grows with the
  fraction of writes in the read/write workload.

The scheduler-overhead ablation (raw operations/second of the scheduler with
no simulation underneath) is not a parameter sweep and stays a plain
benchmark in ``benchmarks/test_ablations.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..core.policy import ConflictPolicy
from ..sim.params import SimulationParameters
from .experiments import ExperimentSpec, Variant
from .figures import BENCH_SCALE, ReproductionScale

__all__ = [
    "ABLATION_BUILDERS",
    "ablation_pseudo_commit_slot",
    "ablation_write_probability",
]

#: Write probabilities swept by the write-probability ablation.
WRITE_PROBABILITIES: Tuple[float, ...] = (0.1, 0.3, 0.5)


def ablation_pseudo_commit_slot(
    scale: ReproductionScale = BENCH_SCALE,
) -> ExperimentSpec:
    """Pseudo-commit slot policy at mpl=50 (RW model, infinite resources)."""
    return ExperimentSpec(
        experiment_id="ablation-pseudo-commit-slot",
        title="Ablation: pseudo-commit slot policy (RW model, mpl=50)",
        workload="readwrite",
        base_params=SimulationParameters(
            total_completions=scale.total_completions,
            warmup_completions=scale.warmup_completions,
            policy=ConflictPolicy.RECOVERABILITY,
            seed=17,
        ),
        mpl_levels=(50,),
        variants=(
            Variant(label="holds-slot", overrides={"pseudo_commit_holds_slot": True}),
            Variant(label="releases-slot", overrides={"pseudo_commit_holds_slot": False}),
        ),
        metrics=("throughput", "response_time", "pseudo_commit_fraction"),
        runs=scale.runs,
        description="Does a pseudo-committed transaction hold its "
        "multiprogramming slot until the durable commit (the paper's "
        "reading) or release it at completion?  The slot policy shapes the "
        "effective multiprogramming level, so throughput and response time "
        "are the metrics of interest.",
    )


def ablation_write_probability(
    scale: ReproductionScale = BENCH_SCALE,
) -> ExperimentSpec:
    """Semantic-policy gain vs write probability at mpl=100 (RW model)."""
    variants = tuple(
        Variant(
            label=f"Pw={probability}/{policy.value}",
            overrides={"write_probability": probability, "policy": policy},
        )
        for probability in WRITE_PROBABILITIES
        # Only the two table-driven policies run: 2PL at mpl=100 thrashes
        # and would dominate the suite's wall-clock without informing this
        # comparison.
        for policy in (ConflictPolicy.COMMUTATIVITY, ConflictPolicy.RECOVERABILITY)
    )
    return ExperimentSpec(
        experiment_id="ablation-write-probability",
        title="Ablation: recoverability gain vs write probability (RW model, mpl=100)",
        workload="readwrite",
        base_params=SimulationParameters(
            total_completions=scale.total_completions,
            warmup_completions=scale.warmup_completions,
            seed=23,
        ),
        mpl_levels=(100,),
        variants=variants,
        metrics=("throughput",),
        runs=scale.runs,
        description="More writes means more non-commuting pairs, which is "
        "exactly where recoverability helps: the relative gain over "
        "commutativity should not shrink as the write probability grows.",
    )


#: Ablation builders in presentation order, keyed by experiment id.
ABLATION_BUILDERS: Dict[str, Callable[[ReproductionScale], ExperimentSpec]] = {
    "ablation-pseudo-commit-slot": ablation_pseudo_commit_slot,
    "ablation-write-probability": ablation_write_probability,
}
