"""repro — Semantics-Based Concurrency Control: Beyond Commutativity.

A full reproduction of Badrinath & Ramamritham's recoverability-based
concurrency control (ICDE 1987 / ACM TODS 17(1), 1992): the formal model of
operations on atomic data types, commutativity and recoverability tables, the
scheduler with commit-dependency tracking and pseudo-commit, the bundled data
types (Page, Stack, Set, Table, and extras), the closed-queuing simulation
model of Section 5, and the experiment harness that regenerates every table
and figure of the paper's evaluation.

Quick start::

    from repro import Scheduler, ConflictPolicy
    from repro.adts import StackType

    scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
    scheduler.register_object("S", StackType())
    t1, t2 = scheduler.begin(), scheduler.begin()
    scheduler.perform(t1.tid, "S", "push", 4)
    scheduler.perform(t2.tid, "S", "push", 2)   # recoverable: executes now
    scheduler.commit(t2.tid)                     # pseudo-commits behind T1
    scheduler.commit(t1.tid)                     # both durably commit
"""

from .core import (
    AbortReason,
    Answer,
    CompatibilitySpec,
    ConcurrencyControlBackend,
    ConflictClass,
    ConflictPolicy,
    DependencyGraph,
    EdgeKind,
    Event,
    ExecutionLog,
    Invocation,
    ObjectManager,
    ObjectUniverse,
    OperationResult,
    OperationSpec,
    RelationTable,
    RequestHandle,
    RequestStatus,
    Scheduler,
    SchedulerListener,
    SchedulerStatistics,
    SemanticBackend,
    Transaction,
    TransactionStatus,
    TwoPhaseLockingBackend,
    TypeSpecification,
    check_declared_sound,
    derive_compatibility,
    is_free_of_cascading_aborts,
    is_log_sound,
    is_serializable,
)
from .distributed import (
    GlobalRequest,
    GlobalTransaction,
    PlacementPolicy,
    Site,
    SiteStatus,
    TransactionRouter,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "AbortReason",
    "Answer",
    "CompatibilitySpec",
    "ConcurrencyControlBackend",
    "ConflictClass",
    "ConflictPolicy",
    "DependencyGraph",
    "EdgeKind",
    "Event",
    "ExecutionLog",
    "GlobalRequest",
    "GlobalTransaction",
    "Invocation",
    "ObjectManager",
    "ObjectUniverse",
    "OperationResult",
    "OperationSpec",
    "PlacementPolicy",
    "RelationTable",
    "RequestHandle",
    "RequestStatus",
    "Scheduler",
    "SchedulerListener",
    "SchedulerStatistics",
    "SemanticBackend",
    "Site",
    "SiteStatus",
    "Transaction",
    "TransactionRouter",
    "TransactionStatus",
    "TwoPhaseLockingBackend",
    "TypeSpecification",
    "check_declared_sound",
    "derive_compatibility",
    "is_free_of_cascading_aborts",
    "is_log_sound",
    "is_serializable",
]
