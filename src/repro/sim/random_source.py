"""Deterministic random-variate generation for the simulator.

All stochastic choices of the closed-queuing model — think times, transaction
lengths, object selection, read/write choice, operation selection, disk
selection, and the random compatibility tables of the ADT workload — go
through one seeded :class:`RandomSource` so that a run is exactly
reproducible from ``(parameters, seed)`` and so that tests can pin specific
decision sequences.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence, TypeVar

__all__ = ["RandomSource"]

T = TypeVar("T")


class RandomSource:
    """A thin, documented wrapper around :class:`random.Random`."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._random = random.Random(seed)

    # ------------------------------------------------------------------
    # Distributions used by the model
    # ------------------------------------------------------------------
    def exponential(self, mean: float) -> float:
        """An exponential variate with the given mean (0.0 if the mean is 0)."""
        if mean <= 0:
            return 0.0
        return self._random.expovariate(1.0 / mean)

    def uniform_int(self, low: int, high: int) -> int:
        """A uniform integer in the inclusive range ``[low, high]``.

        Inlines :meth:`random.Random.randint`'s ``low + _randbelow(width)``
        rejection sampling.  The ``getrandbits`` consumption is bit-identical
        to the stdlib's on every supported interpreter (randint delegates to
        the same loop on 3.11–3.13), so seeded streams are unchanged, minus
        three interpreter frames and three index conversions per draw — this
        is the hottest rng entry point (object/length selection per
        workload step).
        """
        width = high - low + 1
        if width <= 0:
            raise ValueError(f"empty range for uniform_int({low}, {high})")
        getrandbits = self._random.getrandbits
        k = width.bit_length()
        r = getrandbits(k)
        while r >= width:
            r = getrandbits(k)
        return low + r

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """A uniform float in ``[low, high)``."""
        return self._random.uniform(low, high)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        """A uniformly random element of a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        """``count`` distinct elements drawn without replacement."""
        return self._random.sample(list(items), count)

    def shuffle(self, items: List[T]) -> List[T]:
        """Return a new list with the items in random order."""
        shuffled = list(items)
        self._random.shuffle(shuffled)
        return shuffled

    def spawn(self, label: str) -> "RandomSource":
        """Derive an independent, reproducible child stream.

        Distinct labels give distinct streams; the same ``(seed, label)`` pair
        always gives the same stream — including *across* processes, which is
        why the derivation uses CRC32 rather than :func:`hash` (string hashing
        is salted per process, which silently made every run irreproducible
        from one interpreter to the next).  Used to decouple e.g. the workload
        stream from the think-time stream so changing one parameter does not
        perturb every other random decision of the run.
        """
        child_seed = zlib.crc32(f"{self.seed}/{label}".encode("utf-8")) & 0x7FFFFFFF
        return RandomSource(child_seed)
