"""Terminals: the closed part of the closed queuing model.

A fixed population of terminals issues transactions.  Each terminal has at
most one outstanding transaction: after its current transaction *completes*
(pseudo-commits or commits — the user-visible completion of Section 4.3), the
terminal thinks for an exponentially distributed time and then submits the
next one.  This is what makes the model *closed*: the offered load adapts to
how fast the system completes work.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterator

from .engine import EventEngine
from .random_source import RandomSource

__all__ = ["Terminal", "TerminalPool"]


@dataclass(slots=True)
class Terminal:
    """One interactive terminal."""

    terminal_id: int
    #: Number of transactions this terminal has submitted so far.
    submitted: int = 0
    #: Number of its transactions that have completed.
    completed: int = 0

    def think_then_submit(
        self,
        engine: EventEngine,
        rng: RandomSource,
        mean_think_time: float,
        submit: Callable[["Terminal"], None],
    ) -> None:
        """Schedule the terminal's next submission after a think time."""
        delay = rng.exponential(mean_think_time)
        engine.schedule(delay, partial(submit, self))

    def think_then_submit_typed(
        self,
        engine: EventEngine,
        rng: RandomSource,
        mean_think_time: float,
        kind: int,
    ) -> None:
        """Typed-member variant of :meth:`think_then_submit`.

        Schedules the tuple ``(kind, self)`` instead of a partial: the
        simulator registered its submission handler under ``kind`` once at
        construction, so each think expiration allocates no function object
        and drains through the engine's kind dispatch table.  The rng draw
        and the scheduled delay are exactly :meth:`think_then_submit`'s.
        """
        engine.schedule(rng.exponential(mean_think_time), (kind, self))


class TerminalPool:
    """The population of terminals for one simulation run."""

    def __init__(self, count: int):
        self.terminals = [Terminal(terminal_id=i) for i in range(1, count + 1)]

    def __iter__(self) -> Iterator[Terminal]:
        return iter(self.terminals)

    def __len__(self) -> int:
        return len(self.terminals)

    @property
    def total_submitted(self) -> int:
        return sum(t.submitted for t in self.terminals)

    @property
    def total_completed(self) -> int:
        return sum(t.completed for t in self.terminals)
