"""Simulation parameters (the paper's Tables IX and X).

:class:`SimulationParameters` bundles every knob of the closed-queuing model.
The defaults are the *nominal values* of Table X: a 1000-object database, 200
terminals, transactions of 4-12 operations, 0.05 s per operation (0.015 s CPU
plus 0.035 s disk when resources are finite), 1 s mean think time, and a write
probability of 0.3 for the read/write workload.

The only deliberate departure from the paper is the run length: the paper
simulates until 50 000 transactions complete and averages 10 runs; that scale
is a parameter here (``total_completions``, ``runs`` in the experiment layer)
so that the benchmark suite finishes in seconds while the full-scale settings
remain one assignment away.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.errors import SimulationError
from ..core.policy import ConflictPolicy

__all__ = ["INFINITE_RESOURCES", "SimulationParameters"]

#: Sentinel for the infinite-resources configuration (no CPU/disk queueing;
#: each operation simply takes ``step_time`` of simulated time).
INFINITE_RESOURCES: Optional[int] = None


@dataclass
class SimulationParameters:
    """All parameters of one simulation run (Tables IX and X)."""

    # ----- database and workload shape -------------------------------------
    #: Number of objects in the database.
    database_size: int = 1000
    #: Number of terminals issuing transactions.
    num_terminals: int = 200
    #: Minimum number of operations in a transaction.
    min_length: int = 4
    #: Maximum number of operations in a transaction.
    max_length: int = 12
    #: Level of multiprogramming (maximum concurrently active transactions).
    mpl_level: int = 50

    # ----- timing ------------------------------------------------------------
    #: Execution time of each operation under infinite resources (seconds).
    step_time: float = 0.05
    #: CPU service time per operation when resources are finite (seconds).
    cpu_time: float = 0.015
    #: Disk service time per operation when resources are finite (seconds).
    io_time: float = 0.035
    #: Mean of the exponential think time between a terminal's transactions.
    ext_think_time: float = 1.0

    # ----- resources ----------------------------------------------------------
    #: Number of resource units (1 CPU + 2 disks each); ``None`` = infinite.
    #: Under ``resource_placement="per_site"`` this is the hardware of *each*
    #: site, so the system's total capacity grows with ``site_count``.
    resource_units: Optional[int] = INFINITE_RESOURCES
    #: Where the hardware lives: ``"global"`` (the paper's model: one shared
    #: CPU/disk pool charged once per granted operation, however many replica
    #: branches executed it) or ``"per_site"`` (each site owns a pool of
    #: ``resource_units`` units and every executing replica is charged to the
    #: hardware of its site).
    resource_placement: str = "global"
    #: Cross-site network cost in seconds: work routed to a site other than
    #: the transaction's home site is delayed by ``msg_time`` (submit and
    #: commit fan-out); site-local work pays nothing.  Zero disables the
    #: network model entirely (no extra events, preserving pinned streams).
    msg_time: float = 0.0
    #: Heterogeneous per-site hardware: one ``resource_units`` value per
    #: site (requires ``resource_placement="per_site"``); ``None`` gives
    #: every site the homogeneous ``resource_units``.
    site_units: Optional[Tuple[int, ...]] = None

    # ----- read/write workload -------------------------------------------------
    #: Probability that an operation of the read/write workload is a write.
    write_probability: float = 0.3

    # ----- abstract-data-type workload ------------------------------------------
    #: Number of operations defined on each object of the ADT workload.
    operations_per_object: int = 4
    #: Number of commutative entries per object compatibility table (P_c).
    pc: int = 4
    #: Number of recoverable entries per object compatibility table (P_r).
    pr: int = 4

    # ----- multi-site execution ---------------------------------------------------
    #: Number of sites (each a scheduler + backend of its own); 1 = the
    #: centralized system of the paper, bit-identical to the original model.
    site_count: int = 1
    #: Placement of object copies across sites: ``"single"`` (everything on
    #: site 0), ``"hash"`` (each object sharded to one site by a stable hash),
    #: or ``"copies"`` (every object replicated at every site).
    replication: str = "single"
    #: How the replicas are kept consistent and selected:
    #: ``"available-copies"`` (read-one / write-all-available with the
    #: recovering-copy unreadable window), ``"quorum"`` (version-numbered
    #: read/write quorums, ``R + W > N``, catch-up recovery) or
    #: ``"primary-copy"`` (writes funnel through an elected primary with
    #: deterministic failover, reads from any live replica, catch-up
    #: recovery).
    replication_protocol: str = "available-copies"
    #: Read/write quorum sizes for the quorum protocol; ``None`` defaults
    #: each to a majority of the copy count.
    quorum_read: Optional[int] = None
    quorum_write: Optional[int] = None
    #: When a distributed commit may report durable: ``"one-phase"`` (one
    #: commit fan-out, durable once every branch drained; a branch lost
    #: with its site is dropped) or ``"two-phase"`` (commit-time cycle
    #: certification, durability only at the replication protocol's write
    #: condition — ``W`` live stamped copies under quorum — and
    #: failure-triggered re-replication of under-stamped objects).
    commit_protocol: str = "one-phase"
    #: Upper bound, in simulated seconds, on how long a two-phase commit
    #: may stay held below its W-stamp condition before being force-reported
    #: (``None``: wait indefinitely — never report under-replicated).
    prepare_timeout: Optional[float] = None
    #: Scripted site crashes and recoveries: ``(time, action, site_id)``
    #: entries with ``action`` in {"fail", "recover"}, executed as simulation
    #: events at the given simulated times.
    failure_schedule: Tuple[Tuple[float, str, int], ...] = ()

    # ----- concurrency control ----------------------------------------------------
    #: Conflict policy (commutativity baseline vs recoverability).
    policy: ConflictPolicy = ConflictPolicy.RECOVERABILITY
    #: Fair scheduling at the object managers (Section 5.2).
    fair_scheduling: bool = True
    #: Whether a pseudo-committed transaction keeps occupying an mpl slot
    #: until it durably commits (the paper counts it as active).
    pseudo_commit_holds_slot: bool = True

    # ----- run control -----------------------------------------------------------
    #: Number of transaction completions after which the run stops.
    total_completions: int = 2000
    #: Completions ignored before metrics start accumulating (warm-up).
    warmup_completions: int = 0
    #: Random seed for the run.
    seed: int = 1

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        # Normalize the schedule so callers can pass lists interchangeably.
        self.failure_schedule = tuple(
            (float(time), str(action), int(site)) for time, action, site in self.failure_schedule
        )
        if self.site_units is not None:
            self.site_units = tuple(int(units) for units in self.site_units)
        self.validate()

    def validate(self) -> None:
        """Raise :class:`~repro.core.errors.SimulationError` on nonsense values."""
        if self.database_size <= 0:
            raise SimulationError("database_size must be positive")
        if self.num_terminals <= 0:
            raise SimulationError("num_terminals must be positive")
        if self.mpl_level <= 0:
            raise SimulationError("mpl_level must be positive")
        if not 0 < self.min_length <= self.max_length:
            raise SimulationError("transaction length bounds must satisfy 0 < min <= max")
        if self.step_time <= 0 or self.cpu_time <= 0 or self.io_time <= 0:
            raise SimulationError("service times must be positive")
        if self.ext_think_time < 0:
            raise SimulationError("think time must be non-negative")
        if self.resource_units is not None and self.resource_units <= 0:
            raise SimulationError("resource_units must be positive (or None for infinite)")
        if self.resource_placement not in ("global", "per_site"):
            raise SimulationError(
                "resource_placement must be 'global' or 'per_site'"
            )
        if self.msg_time < 0:
            raise SimulationError("msg_time must be non-negative")
        if not 0.0 <= self.write_probability <= 1.0:
            raise SimulationError("write_probability must lie in [0, 1]")
        if self.operations_per_object <= 0:
            raise SimulationError("operations_per_object must be positive")
        table_cells = self.operations_per_object * self.operations_per_object
        if self.pc < 0 or self.pc % 2 != 0:
            raise SimulationError("pc must be a non-negative even integer")
        if self.pr < 0:
            raise SimulationError("pr must be non-negative")
        if self.pc + self.pr > table_cells:
            raise SimulationError("pc + pr cannot exceed the number of table entries")
        if self.site_count < 1:
            raise SimulationError("site_count must be at least 1")
        if self.replication not in ("single", "hash", "copies"):
            raise SimulationError(
                "replication must be one of 'single', 'hash', 'copies'"
            )
        if self.replication_protocol not in (
            "available-copies", "quorum", "primary-copy"
        ):
            raise SimulationError(
                "replication_protocol must be one of 'available-copies', "
                "'quorum', 'primary-copy'"
            )
        if self.commit_protocol not in ("one-phase", "two-phase"):
            raise SimulationError(
                "commit_protocol must be one of 'one-phase', 'two-phase'"
            )
        if self.prepare_timeout is not None:
            if self.commit_protocol != "two-phase":
                raise SimulationError(
                    "prepare_timeout requires commit_protocol='two-phase'"
                )
            if self.prepare_timeout <= 0:
                raise SimulationError("prepare_timeout must be positive")
        if self.quorum_read is not None or self.quorum_write is not None:
            if self.replication_protocol != "quorum":
                raise SimulationError(
                    "quorum_read/quorum_write require replication_protocol='quorum'"
                )
            if self.replication != "copies":
                # Hash/single placement gives every object one copy, so any
                # explicit quorum would be silently clamped to 1/1 — reject
                # rather than pretend the requested quorums are in force.
                raise SimulationError(
                    "explicit quorum_read/quorum_write require "
                    "replication='copies'; hash/single placement puts one "
                    "copy per object, which would clamp any quorum to 1"
                )
        for label, size in (("quorum_read", self.quorum_read),
                            ("quorum_write", self.quorum_write)):
            if size is not None and not 1 <= size <= self.site_count:
                raise SimulationError(
                    f"{label} must lie in [1, {self.site_count}] "
                    f"for site_count={self.site_count}"
                )
        if self.replication_protocol == "quorum" and self.replication == "copies":
            majority = self.site_count // 2 + 1
            read = self.quorum_read if self.quorum_read is not None else majority
            write = self.quorum_write if self.quorum_write is not None else majority
            if read + write <= self.site_count:
                raise SimulationError(
                    f"quorum R={read} + W={write} must exceed the copy count "
                    f"N={self.site_count} (every read quorum must intersect "
                    "every write quorum)"
                )
            if 2 * write <= self.site_count:
                raise SimulationError(
                    f"write quorum W={write} must exceed half the copy count "
                    f"N={self.site_count} (write quorums must intersect each "
                    "other, or concurrent writers go unserialized)"
                )
        if self.site_units is not None:
            if self.resource_placement != "per_site":
                raise SimulationError(
                    "site_units requires resource_placement='per_site'"
                )
            if self.resource_units is not None:
                # Ambiguous hardware description: the per-site list is the
                # unit count, so a homogeneous resource_units alongside it
                # would be silently ignored (and misreported).
                raise SimulationError(
                    "site_units replaces resource_units; set one, not both"
                )
            if len(self.site_units) != self.site_count:
                raise SimulationError(
                    f"site_units lists {len(self.site_units)} sites, "
                    f"site_count is {self.site_count}"
                )
            if any(units <= 0 for units in self.site_units):
                raise SimulationError("site_units entries must be positive")
        for entry in self.failure_schedule:
            time, action, site = entry
            if time < 0:
                raise SimulationError(f"failure_schedule time {time} is negative")
            if action not in ("fail", "recover"):
                raise SimulationError(
                    f"failure_schedule action {action!r} must be 'fail' or 'recover'"
                )
            if not 0 <= site < self.site_count:
                raise SimulationError(
                    f"failure_schedule site {site} outside [0, {self.site_count})"
                )
        if self.total_completions <= 0:
            raise SimulationError("total_completions must be positive")
        if not 0 <= self.warmup_completions < self.total_completions:
            raise SimulationError("warmup_completions must be in [0, total_completions)")

    # ------------------------------------------------------------------
    @property
    def mean_transaction_length(self) -> float:
        """Average number of operations per transaction."""
        return (self.min_length + self.max_length) / 2.0

    @property
    def infinite_resources(self) -> bool:
        """True when the run models no CPU/disk contention.

        A heterogeneous ``site_units`` list is finite hardware even while
        ``resource_units`` stays ``None`` (the per-site list replaces it).
        """
        return self.resource_units is None and self.site_units is None

    @staticmethod
    def units_to_hardware(units: Optional[int]) -> Tuple[int, int]:
        """``(num_cpus, num_disks)`` of one pool of ``units`` resource units.

        A resource unit is one CPU plus two disks (Table IX); ``None`` is
        the infinite-resource configuration, encoded as zero hardware.
        This is the single source of the mapping — the shared-pool charger
        applies it to ``resource_units``, the per-site charger to each
        entry of ``site_units``.
        """
        return (0, 0) if units is None else (units, 2 * units)

    @property
    def num_cpus(self) -> int:
        """Number of CPUs (one per resource unit); 0 under infinite resources."""
        return self.units_to_hardware(self.resource_units)[0]

    @property
    def num_disks(self) -> int:
        """Number of disks (two per resource unit); 0 under infinite resources."""
        return self.units_to_hardware(self.resource_units)[1]

    def replace(self, **overrides: object) -> "SimulationParameters":
        """Return a copy with some fields overridden (validated)."""
        return dataclasses.replace(self, **overrides)

    def describe(self) -> Dict[str, object]:
        """A flat dict of the parameter values (used by the report renderer)."""
        description = dataclasses.asdict(self)
        description["policy"] = str(self.policy)
        if self.resource_units is not None:
            description["resource_units"] = self.resource_units
        elif self.site_units is not None:
            # Finite hardware, just heterogeneous: the per-site list (also
            # echoed under "site_units") is the authoritative unit count.
            description["resource_units"] = "per-site"
        else:
            description["resource_units"] = "infinite"
        return description
