"""A minimal discrete-event simulation engine.

The closed-queuing model of Section 5.1 is driven by a classic event loop: a
priority queue of ``(time, sequence, callback)`` entries, a simulation clock,
and a stop predicate.  Nothing here is specific to concurrency control; the
engine is reused by the resource model (CPU/disk service completions), the
terminals (think-time expirations), and the simulator itself.

The heap stores the bare callback in the tuple — no wrapper object is
allocated on the (very hot) schedule path, and the heap sift compares plain
``(float, int)`` prefixes at C speed.  Cancellation is the exception, not the
rule: callers that need it use :meth:`EventEngine.schedule_cancellable`, which
pushes a :class:`ScheduledEvent` wrapper the pop loop knows to unwrap.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..core.errors import SimulationError

__all__ = ["ScheduledEvent", "EventEngine"]


class ScheduledEvent:
    """A cancellable entry of the event queue.

    Only cancellable events pay for this wrapper; plain :meth:`EventEngine.
    schedule` calls push their callback straight into the heap tuple.
    Ordering is by time, then by insertion sequence (FIFO among simultaneous
    events), which keeps runs deterministic.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled")

    def __init__(self, time: float, sequence: int, callback: Callable[[], None]):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True

    def __call__(self) -> None:
        self.callback()


class EventEngine:
    """Priority-queue driven simulation clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time} before the current time {self.now}"
            )
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, callback))

    def schedule_cancellable(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        time = self.now + delay
        self._sequence += 1
        event = ScheduledEvent(time=time, sequence=self._sequence, callback=callback)
        heapq.heappush(self._queue, (time, self._sequence, event))
        return event

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _, callback = heapq.heappop(queue)
            if callback.__class__ is ScheduledEvent:
                if callback.cancelled:  # type: ignore[attr-defined]
                    continue
                callback = callback.callback  # type: ignore[attr-defined]
            self.now = time
            self.events_processed += 1
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the stop predicate holds or the queue drains.

        ``max_events`` is a safety valve against configuration errors (it
        raises rather than looping forever).
        """
        # The pop loop is inlined (rather than calling ``step`` per event)
        # and the hot attributes are hoisted into locals: this method *is*
        # the simulation's innermost loop.
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        while until is None or not until():
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded the safety limit of {max_events} events"
                )
            stepped = False
            while queue:
                time, _, callback = heappop(queue)
                if callback.__class__ is ScheduledEvent:
                    if callback.cancelled:  # type: ignore[attr-defined]
                        continue
                    callback = callback.callback  # type: ignore[attr-defined]
                self.now = time
                self.events_processed += 1
                callback()
                stepped = True
                break
            if not stepped:
                if until is not None and not until():
                    raise SimulationError(
                        "event queue drained before the stop condition was met"
                    )
                return
            processed += 1

    def pending(self) -> int:
        """Number of (non-cancelled) events still queued."""
        return sum(
            1
            for _, _, callback in self._queue
            if not (callback.__class__ is ScheduledEvent and callback.cancelled)  # type: ignore[attr-defined]
        )
