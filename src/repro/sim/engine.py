"""A minimal discrete-event simulation engine.

The closed-queuing model of Section 5.1 is driven by a classic event loop: a
priority queue of ``(time, sequence, callback)`` entries, a simulation clock,
and a stop predicate.  Nothing here is specific to concurrency control; the
engine is reused by the resource model (CPU/disk service completions), the
terminals (think-time expirations), and the simulator itself.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..core.errors import SimulationError

__all__ = ["ScheduledEvent", "EventEngine"]


class ScheduledEvent:
    """An entry of the event queue.

    Ordering is by time, then by insertion sequence (FIFO among simultaneous
    events), which keeps runs deterministic.  The heap itself stores plain
    ``(time, sequence, event)`` tuples so that the (very hot) heap sift
    compares tuples at C speed instead of calling back into Python.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled")

    def __init__(self, time: float, sequence: int, callback: Callable[[], None]):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True


class EventEngine:
    """Priority-queue driven simulation clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, ScheduledEvent]] = []
        self._sequence = 0
        self.now = 0.0
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time} before the current time {self.now}"
            )
        self._sequence += 1
        event = ScheduledEvent(time=time, sequence=self._sequence, callback=callback)
        heapq.heappush(self._queue, (time, self._sequence, event))
        return event

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event.  Returns False when the queue is empty."""
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the stop predicate holds or the queue drains.

        ``max_events`` is a safety valve against configuration errors (it
        raises rather than looping forever).
        """
        processed = 0
        while until is None or not until():
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded the safety limit of {max_events} events"
                )
            if not self.step():
                if until is not None and not until():
                    raise SimulationError(
                        "event queue drained before the stop condition was met"
                    )
                return
            processed += 1

    def pending(self) -> int:
        """Number of (non-cancelled) events still queued."""
        return sum(1 for _, _, event in self._queue if not event.cancelled)
