"""A minimal discrete-event simulation engine.

The closed-queuing model of Section 5.1 is driven by a classic event loop: a
priority queue of ``(time, sequence, payload)`` entries, a simulation clock,
and a stop predicate.  Nothing here is specific to concurrency control; the
engine is reused by the resource model (CPU/disk service completions), the
terminals (think-time expirations), and the simulator itself.

Events sharing one exact timestamp are **batched**: a run of consecutively
scheduled events landing on the same time — a burst of simultaneous resource
grants after a termination cascade, a round of unblock retries — shares one
heap entry whose payload is the list of callbacks in scheduling order.  The
global sequence counter is monotonic and a batch only ever receives appends
while it is the most recently created entry, so list position *is* sequence
order and the execution order is identical to a heap of individual
``(time, sequence)`` entries; the burst costs one heap push/pop total
instead of one each, and a solitary event costs exactly what it used to.
Cancellation is the exception, not the rule: callers that need it use
:meth:`EventEngine.schedule_cancellable`, which appends a
:class:`ScheduledEvent` wrapper the pop loop knows to skip.

Recurring event producers additionally get **typed members**: a producer
registers an integer event *kind* with a bound handler once, at
construction (:meth:`EventEngine.register_kind`), and then schedules plain
tuples ``(kind, *payload)`` instead of callables.  The drain loops route a
tuple member through the kind-indexed dispatch table — one handler call
that receives the whole member and unpacks its payload in the same frame,
where the callable path needs a ``functools.partial``/closure allocation
per event plus its trampoline.  Dispatch happens at exactly the point the
generic ``callback()`` call would have happened, with the stop-flag /
``max_events`` checks at the same inter-event points, so the event stream
is provably unchanged; generic callables remain fully supported (kind 0 is
reserved to mean "not typed" and never allocated to a producer).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple, Union

from ..core.errors import SimulationError

__all__ = ["ScheduledEvent", "EventEngine"]

#: A typed member's handler: receives the whole ``(kind, *payload)`` tuple.
KindHandler = Callable[[tuple], None]


class ScheduledEvent:
    """A cancellable entry of the event queue.

    Only cancellable events pay for this wrapper; plain :meth:`EventEngine.
    schedule` calls append their callback straight into the timestamp batch.
    Ordering is by time, then by insertion sequence (FIFO among simultaneous
    events), which keeps runs deterministic.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled")

    def __init__(self, time: float, sequence: int, callback: Callable[[], None]):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True

    def __call__(self) -> None:
        self.callback()


#: A batch member: a bare callback, a typed ``(kind, *payload)`` tuple, or a
#: cancellable wrapper.
_Member = Union[Callable[[], None], tuple, ScheduledEvent]

#: What callers may schedule: a callback or a typed member.
Schedulable = Union[Callable[[], None], tuple]


class EventEngine:
    """Priority-queue driven simulation clock."""

    def __init__(self) -> None:
        #: One heap entry per batch; the payload list holds the batch's
        #: events in scheduling (= sequence) order.
        self._queue: List[Tuple[float, int, List[_Member]]] = []
        #: The most recently created batch and its timestamp.  A schedule
        #: call landing on the same time appends here (no heap traffic);
        #: anything else — including a pop of this very batch — retires it,
        #: so a batch is never appended to out of sequence order.
        self._open_batch: Optional[List[_Member]] = None
        self._open_time = 0.0
        #: The batch currently being drained (popped from the heap but not
        #: fully run — the stop predicate is consulted between members,
        #: exactly as it was between heap pops).
        self._batch: Optional[List[_Member]] = None
        self._batch_index = 0
        self._batch_time = 0.0
        self._sequence = 0
        self.now = 0.0
        self.events_processed = 0
        #: Cooperative stop flag for :meth:`run_until_stop` (set by
        #: :meth:`request_stop` from inside a callback).
        self._stop = False
        #: Kind-indexed dispatch table for typed members.  Index 0 is the
        #: reserved "generic callable" kind and never holds a handler;
        #: registrations survive :meth:`reset` (producers register once, at
        #: construction, and a reset run reuses the same kinds).
        self._handlers: List[Optional[KindHandler]] = [None]

    # ------------------------------------------------------------------
    # Typed-member registration
    # ------------------------------------------------------------------
    def register_kind(self, handler: KindHandler) -> int:
        """Register a recurring producer's handler; returns its event kind.

        The returned integer identifies the producer in every typed member
        it schedules: a member ``(kind, *payload)`` is drained as
        ``handler(member)``.  Registration order must be deterministic
        (construction order is), since the kind integers travel inside
        pinned event streams.
        """
        self._handlers.append(handler)
        return len(self._handlers) - 1

    def dispatch(self, member: tuple) -> None:
        """Invoke one typed member synchronously (outside the drain loop).

        For producers whose completion callbacks may fire from a non-engine
        frame (a FIFO server grant, a branch-join countdown) with a typed
        member as the continuation.
        """
        handler = self._handlers[member[0]]
        assert handler is not None, f"no handler registered for kind {member[0]}"
        handler(member)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Schedulable) -> None:
        """Schedule ``callback`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        time = self.now + delay
        self._sequence += 1
        batch = self._open_batch
        if batch is not None and time == self._open_time:
            batch.append(callback)
        else:
            batch = [callback]
            self._open_batch = batch
            self._open_time = time
            heapq.heappush(self._queue, (time, self._sequence, batch))

    def schedule_at(self, time: float, callback: Schedulable) -> None:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at {time} before the current time {self.now}"
            )
        self._sequence += 1
        batch = self._open_batch
        if batch is not None and time == self._open_time:
            batch.append(callback)
        else:
            batch = [callback]
            self._open_batch = batch
            self._open_time = time
            heapq.heappush(self._queue, (time, self._sequence, batch))

    def schedule_cancellable(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        time = self.now + delay
        self._sequence += 1
        event = ScheduledEvent(time=time, sequence=self._sequence, callback=callback)
        batch = self._open_batch
        if batch is not None and time == self._open_time:
            batch.append(event)
        else:
            batch = [event]
            self._open_batch = batch
            self._open_time = time
            heapq.heappush(self._queue, (time, self._sequence, batch))
        return event

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event.  Returns False when the queue is empty."""
        queue = self._queue
        batch = self._batch
        index = self._batch_index
        while True:
            if batch is None:
                if not queue:
                    self._batch = None
                    self._batch_index = 0
                    return False
                time, _, batch = heapq.heappop(queue)
                if batch is self._open_batch:
                    self._open_batch = None
                self._batch_time = time
                index = 0
            try:
                callback = batch[index]
            except IndexError:
                batch = None
                continue
            index += 1
            if callback.__class__ is ScheduledEvent:
                if callback.cancelled:  # type: ignore[union-attr]
                    continue
                callback = callback.callback  # type: ignore[union-attr]
            self._batch = batch
            self._batch_index = index
            self.now = self._batch_time
            self.events_processed += 1
            if callback.__class__ is tuple:
                self._handlers[callback[0]](callback)  # type: ignore[misc, index]
            else:
                callback()  # type: ignore[operator]
            return True

    def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the stop predicate holds or the queue drains.

        ``max_events`` is a safety valve against configuration errors (it
        raises rather than looping forever).  The stop predicate runs between
        every two events — batching never processes past it.
        """
        # The pop loop is inlined (rather than calling ``step`` per event)
        # and the hot attributes are hoisted into locals: this method *is*
        # the simulation's innermost loop.
        queue = self._queue
        heappop = heapq.heappop
        handlers = self._handlers
        batch = self._batch
        index = self._batch_index
        batch_time = self._batch_time
        processed = 0
        while until is None or not until():
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded the safety limit of {max_events} events"
                )
            ran = False
            while not ran:
                if batch is None:
                    if not queue:
                        break
                    batch_time, _, batch = heappop(queue)
                    if batch is self._open_batch:
                        self._open_batch = None
                    index = 0
                try:
                    callback = batch[index]
                except IndexError:
                    batch = None
                    continue
                index += 1
                if callback.__class__ is ScheduledEvent:
                    if callback.cancelled:  # type: ignore[union-attr]
                        continue
                    callback = callback.callback  # type: ignore[union-attr]
                self._batch = batch
                self._batch_index = index
                self._batch_time = batch_time
                self.now = batch_time
                self.events_processed += 1
                if callback.__class__ is tuple:
                    handlers[callback[0]](callback)  # type: ignore[misc, index]
                else:
                    callback()  # type: ignore[operator]
                ran = True
            if not ran:
                self._batch = None
                self._batch_index = 0
                if until is not None and not until():
                    raise SimulationError(
                        "event queue drained before the stop condition was met"
                    )
                return
            processed += 1
            # A drained batch is never appended to (it was retired from
            # ``_open_batch`` at pop time), so the local view stays exact.

    def request_stop(self) -> None:
        """Make the active :meth:`run_until_stop` return before the next event."""
        self._stop = True

    def run_until_stop(self, max_events: Optional[int] = None) -> None:
        """Process events until :meth:`request_stop` fires or the queue drains.

        The flag is consulted between every two events — exactly where
        :meth:`run`'s predicate would be — so a callback requesting a stop
        halts the run before the next event and the event stream is identical
        to ``run(until=...)`` with a predicate flipping at the same moment.
        Unlike the predicate, checking the flag costs an attribute load
        instead of two interpreter calls per event.  Draining the queue
        without a stop request returns normally; the caller decides whether
        that is an error.
        """
        self._stop = False
        queue = self._queue
        heappop = heapq.heappop
        handlers = self._handlers
        batch = self._batch
        index = self._batch_index
        batch_time = self._batch_time
        processed = 0
        while not self._stop:
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded the safety limit of {max_events} events"
                )
            ran = False
            while not ran:
                if batch is None:
                    if not queue:
                        break
                    batch_time, _, batch = heappop(queue)
                    if batch is self._open_batch:
                        self._open_batch = None
                    index = 0
                try:
                    callback = batch[index]
                except IndexError:
                    batch = None
                    continue
                index += 1
                if callback.__class__ is ScheduledEvent:
                    if callback.cancelled:  # type: ignore[union-attr]
                        continue
                    callback = callback.callback  # type: ignore[union-attr]
                self._batch = batch
                self._batch_index = index
                self._batch_time = batch_time
                self.now = batch_time
                self.events_processed += 1
                if callback.__class__ is tuple:
                    handlers[callback[0]](callback)  # type: ignore[misc, index]
                else:
                    callback()  # type: ignore[operator]
                ran = True
            if not ran:
                self._batch = None
                self._batch_index = 0
                return
            processed += 1

    # ------------------------------------------------------------------
    # Reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the engine to its just-constructed state, in place.

        In place because long-lived components hold references to this
        engine and its bound methods (the resource domains, the commit
        protocol's clock): replacing the instance would silently orphan
        them, while clearing it keeps every reference valid.  Registered
        kind handlers are deliberately preserved: producers register once,
        at construction, and the reset run reuses the same kind integers.
        """
        self._queue.clear()
        self._open_batch = None
        self._open_time = 0.0
        self._batch = None
        self._batch_index = 0
        self._batch_time = 0.0
        self._sequence = 0
        self.now = 0.0
        self.events_processed = 0
        self._stop = False

    def pending(self) -> int:
        """Number of (non-cancelled) events still queued."""
        count = 0
        if self._batch is not None:
            for member in self._batch[self._batch_index:]:
                if not (member.__class__ is ScheduledEvent and member.cancelled):  # type: ignore[union-attr]
                    count += 1
        for _, _, members in self._queue:
            for member in members:
                if not (member.__class__ is ScheduledEvent and member.cancelled):  # type: ignore[union-attr]
                    count += 1
        return count
