"""The router seam between the simulator and the multi-site layer.

Layering rule (enforced by ``repro lint`` as REP004): :mod:`repro.sim` never
imports :mod:`repro.distributed`.  The simulator still needs a
``TransactionRouter``, so the dependency is inverted — the distributed
package registers its router constructor here when it is imported (which
importing :mod:`repro` always does), and the simulator asks this module to
build one.  The registry holds a single factory: the router *implementation*
is not pluggable, only its location in the import graph is.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core.errors import SimulationError

__all__ = ["RouterFactory", "register_router_factory", "create_router"]

#: Anything that builds a router from the keyword arguments the simulator
#: passes (site_count, replication, policy, protocol selections, ...).
RouterFactory = Callable[..., Any]

_router_factory: Optional[RouterFactory] = None


def register_router_factory(factory: RouterFactory) -> None:
    """Install the router constructor (called by ``repro.distributed``)."""
    global _router_factory
    _router_factory = factory


def create_router(**kwargs: Any) -> Any:
    """Build a router with the registered factory."""
    if _router_factory is None:
        raise SimulationError(
            "no router factory is registered; import repro.distributed "
            "(importing the repro package does this) before building a "
            "Simulation"
        )
    return _router_factory(**kwargs)
