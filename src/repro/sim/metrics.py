"""Performance metrics of the simulation study (Section 5.4).

The paper evaluates each configuration with:

* **throughput** — transactions completed per simulated second (completions
  include pseudo-commits: the transaction is done from the user's viewpoint);
* **response time** — seconds from terminal submission to completion,
  including ready-queue time and time lost to restarts;
* **blocking ratio** — transaction blocks per completion;
* **restart ratio** — restarts per completion;
* **cycle-check ratio** — invocations of the cycle-detection algorithm per
  completion;
* **abort length** — average number of operations a transaction had executed
  when it was aborted.

:class:`MetricsCollector` accumulates the raw counters during the measurement
window (after the optional warm-up) and freezes them into a :class:`RunMetrics`
value at the end of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..core.scheduler import SchedulerStatistics

__all__ = ["RunMetrics", "MetricsCollector"]


@dataclass(frozen=True)
class RunMetrics:
    """Frozen results of one simulation run (one parameter point, one seed)."""

    simulated_time: float
    completions: int
    commits: int
    pseudo_commits: int
    response_time_total: float
    blocks: int
    restarts: int
    cycle_checks: int
    aborts: int
    abort_length_total: int
    commit_dependency_edges: int
    events_processed: int
    #: The resource charger's utilisation summary at the end of the run
    #: (cpu/disk served and waits, per-site breakdowns, network messages),
    #: frozen as sorted pairs.  Counters only — deterministic ints; the
    #: infinite-resource marker string is dropped.
    resource_summary: Tuple[Tuple[str, int], ...] = ()
    #: The router's replication-protocol summary (protocol messages,
    #: failovers, catch-up events, read/write unavailability, cycle
    #: sweeps, the under-replication window), frozen as sorted pairs;
    #: empty for single-site runs.
    replication_summary: Tuple[Tuple[str, int], ...] = ()
    #: The router's commit-protocol summary (prepare rounds/messages/acks,
    #: certifications and their aborts, re-replication work, forced
    #: reports), frozen as sorted pairs; empty for single-site runs.
    commit_summary: Tuple[Tuple[str, int], ...] = ()

    # ------------------------------------------------------------------
    # The paper's derived metrics
    # ------------------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Completed transactions per simulated second."""
        if self.simulated_time <= 0:
            return 0.0
        return self.completions / self.simulated_time

    @property
    def response_time(self) -> float:
        """Mean seconds from submission to completion."""
        if self.completions == 0:
            return 0.0
        return self.response_time_total / self.completions

    @property
    def blocking_ratio(self) -> float:
        """Blocks per completed transaction."""
        if self.completions == 0:
            return 0.0
        return self.blocks / self.completions

    @property
    def restart_ratio(self) -> float:
        """Restarts per completed transaction."""
        if self.completions == 0:
            return 0.0
        return self.restarts / self.completions

    @property
    def cycle_check_ratio(self) -> float:
        """Cycle-detection invocations per completed transaction."""
        if self.completions == 0:
            return 0.0
        return self.cycle_checks / self.completions

    @property
    def abort_length(self) -> float:
        """Average operations executed by a transaction at abort time."""
        if self.aborts == 0:
            return 0.0
        return self.abort_length_total / self.aborts

    def counters(self) -> Dict[str, int]:
        """The raw deterministic counters of the run.

        Everything here derives only from ``(parameters, seed)`` — no
        wall-clock, no host dependence.  This is the single source of truth
        for the CLI's ``--json`` counter block and for
        ``tools/bench_summary.py``; add new counters here, not there.
        """
        counters = {
            "completions": self.completions,
            "commits": self.commits,
            "pseudo_commits": self.pseudo_commits,
            "blocks": self.blocks,
            "restarts": self.restarts,
            "cycle_checks": self.cycle_checks,
            "aborts": self.aborts,
            "abort_length_total": self.abort_length_total,
            "commit_dependency_edges": self.commit_dependency_edges,
            "events_processed": self.events_processed,
        }
        # Resource saturation rides along so the perf trajectory shows *why*
        # a configuration slowed down, not just that it did.  Finite runs
        # contribute cpu/disk served+waits (per site under per-site
        # placement); infinite runs contribute nothing.
        for name, value in self.resource_summary:
            counters[f"resource_{name}"] = value
        # Replication-protocol overhead (messages, failovers, catch-ups,
        # read/write unavailability) rides along the same way; single-site
        # runs contribute nothing, keeping their pinned counter sets closed.
        for name, value in self.replication_summary:
            counters[f"replication_{name}"] = value
        # Commit-protocol overhead (prepare traffic, certification,
        # re-replication) likewise; empty for single-site runs.
        for name, value in self.commit_summary:
            counters[f"commit_{name}"] = value
        return counters

    def as_dict(self) -> Dict[str, float]:
        """Flat mapping of every metric the reports print."""
        return {
            "throughput": self.throughput,
            "response_time": self.response_time,
            "blocking_ratio": self.blocking_ratio,
            "restart_ratio": self.restart_ratio,
            "cycle_check_ratio": self.cycle_check_ratio,
            "abort_length": self.abort_length,
            "completions": float(self.completions),
            "commits": float(self.commits),
            "pseudo_commits": float(self.pseudo_commits),
            "simulated_time": self.simulated_time,
        }


class MetricsCollector:
    """Mutable accumulator used by the simulator during a run."""

    def __init__(self) -> None:
        self.started_at: float = 0.0
        self.completions = 0
        self.commits = 0
        self.pseudo_commits = 0
        self.response_time_total = 0.0
        self.restarts = 0
        # Scheduler-side and resource counters are snapshotted at the start
        # of the measurement window and subtracted at the end.
        self._scheduler_snapshot: Dict[str, int] = {}
        self._resource_snapshot: Dict[str, int] = {}
        self._replication_snapshot: Dict[str, int] = {}
        self._commit_snapshot: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def begin_measurement(
        self,
        now: float,
        scheduler_stats: SchedulerStatistics,
        resource_summary: Optional[Mapping[str, object]] = None,
        replication_summary: Optional[Mapping[str, int]] = None,
        commit_summary: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Start (or restart) the measurement window at simulated time ``now``."""
        self.started_at = now
        self.completions = 0
        self.commits = 0
        self.pseudo_commits = 0
        self.response_time_total = 0.0
        self.restarts = 0
        # Like the scheduler counters, resource utilisation and replication
        # overhead accumulated before the window (warm-up) are snapshotted
        # and subtracted at freeze time, so both are reported per measured
        # work.
        self._resource_snapshot = {
            name: value
            for name, value in (resource_summary or {}).items()
            if isinstance(value, int)
        }
        self._replication_snapshot = dict(replication_summary or {})
        self._commit_snapshot = dict(commit_summary or {})
        # Snapshot *every* scheduler counter, not just the ones freeze()
        # subtracts today, so adding a counter to the window later cannot
        # silently measure warm-up work.
        self._scheduler_snapshot = scheduler_stats.as_dict()

    def record_completion(self, response_time: float, pseudo: bool) -> None:
        """Record one user-visible completion."""
        self.completions += 1
        self.response_time_total += response_time
        if pseudo:
            self.pseudo_commits += 1
        else:
            self.commits += 1

    def record_restart(self) -> None:
        """Record one restart (a scheduler abort followed by re-submission)."""
        self.restarts += 1

    # ------------------------------------------------------------------
    def freeze(
        self,
        now: float,
        scheduler_stats: SchedulerStatistics,
        events_processed: int,
        resource_summary: Optional[Mapping[str, object]] = None,
        replication_summary: Optional[Mapping[str, int]] = None,
        commit_summary: Optional[Mapping[str, int]] = None,
    ) -> RunMetrics:
        """Produce the immutable :class:`RunMetrics` for the window."""
        snapshot = self._scheduler_snapshot or {
            "blocks": 0,
            "cycle_checks": 0,
            "aborts": 0,
            "abort_length_total": 0,
            "commit_dependency_edges": 0,
        }
        return RunMetrics(
            simulated_time=max(now - self.started_at, 0.0),
            completions=self.completions,
            commits=self.commits,
            pseudo_commits=self.pseudo_commits,
            response_time_total=self.response_time_total,
            blocks=scheduler_stats.blocks - snapshot["blocks"],
            restarts=self.restarts,
            cycle_checks=scheduler_stats.cycle_checks - snapshot["cycle_checks"],
            aborts=scheduler_stats.aborts - snapshot["aborts"],
            abort_length_total=scheduler_stats.abort_length_total
            - snapshot["abort_length_total"],
            commit_dependency_edges=scheduler_stats.commit_dependency_edges
            - snapshot["commit_dependency_edges"],
            events_processed=events_processed,
            resource_summary=tuple(
                sorted(
                    (name, value - self._resource_snapshot.get(name, 0))
                    for name, value in (resource_summary or {}).items()
                    if isinstance(value, int)
                )
            ),
            replication_summary=tuple(
                sorted(
                    (name, value - self._replication_snapshot.get(name, 0))
                    for name, value in (replication_summary or {}).items()
                )
            ),
            commit_summary=tuple(
                sorted(
                    (name, value - self._commit_snapshot.get(name, 0))
                    for name, value in (commit_summary or {}).items()
                )
            ),
        )
