"""The resource model: CPUs and disks with FIFO queues (Section 5.1).

The paper's model attaches a physical-resource phase to every operation once
the concurrency-control request is granted:

* under **infinite resources** each operation simply takes ``step_time`` of
  simulated time — there is never any waiting for hardware;
* under **finite resources** the system owns ``resource_units`` units, each a
  CPU plus two disks.  An operation first needs a CPU from the shared pool
  (waiting in a FIFO queue if none is free) for ``cpu_time`` seconds, then a
  randomly chosen disk (each disk has its own FIFO queue) for ``io_time``
  seconds.

:class:`ResourceModel` hides the two cases behind a single
``perform_step(done_callback)`` call so the simulator does not care which
configuration is active.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from .engine import EventEngine
from .params import SimulationParameters
from .random_source import RandomSource

__all__ = ["FifoServer", "ResourceModel"]


class FifoServer:
    """A pool of identical servers with a single FIFO wait queue.

    With ``capacity=1`` this is a single server (one disk); with a larger
    capacity it models the shared CPU pool.
    """

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.capacity = capacity
        self.free = capacity
        self.queue: Deque[Callable[[], None]] = deque()
        #: Total number of acquisitions that had to wait (utilisation metric).
        self.waits = 0
        #: Total number of acquisitions served.
        self.served = 0

    def acquire(self, callback: Callable[[], None]) -> None:
        """Hand a server to ``callback`` now, or queue the request."""
        if self.free > 0:
            self.free -= 1
            self.served += 1
            callback()
        else:
            self.waits += 1
            self.queue.append(callback)

    def release(self) -> None:
        """Return a server; the longest-waiting request (if any) gets it."""
        if self.queue:
            callback = self.queue.popleft()
            self.served += 1
            callback()
        else:
            self.free += 1

    @property
    def busy(self) -> int:
        """Number of servers currently in use."""
        return self.capacity - self.free

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FifoServer {self.name!r} busy={self.busy}/{self.capacity} queued={len(self.queue)}>"


class ResourceModel:
    """CPU/disk service for operation steps."""

    def __init__(
        self,
        engine: EventEngine,
        params: SimulationParameters,
        rng: RandomSource,
    ):
        self.engine = engine
        self.params = params
        self.rng = rng
        if params.infinite_resources:
            self.cpus: Optional[FifoServer] = None
            self.disks: List[FifoServer] = []
        else:
            self.cpus = FifoServer("cpus", params.num_cpus)
            self.disks = [FifoServer(f"disk{i}", 1) for i in range(params.num_disks)]

    # ------------------------------------------------------------------
    def perform_step(self, done: Callable[[], None]) -> None:
        """Run the resource phase of one operation, then call ``done``.

        Under infinite resources this is a single delay of ``step_time``;
        under finite resources it is CPU service followed by disk service,
        each with possible queueing.
        """
        if self.cpus is None:
            self.engine.schedule(self.params.step_time, done)
            return
        self._acquire_cpu(done)

    # ------------------------------------------------------------------
    # Finite-resource pipeline
    # ------------------------------------------------------------------
    def _acquire_cpu(self, done: Callable[[], None]) -> None:
        def got_cpu() -> None:
            self.engine.schedule(self.params.cpu_time, cpu_finished)

        def cpu_finished() -> None:
            assert self.cpus is not None
            self.cpus.release()
            self._acquire_disk(done)

        assert self.cpus is not None
        self.cpus.acquire(got_cpu)

    def _acquire_disk(self, done: Callable[[], None]) -> None:
        disk = self.rng.choice(self.disks)

        def got_disk() -> None:
            self.engine.schedule(self.params.io_time, io_finished)

        def io_finished() -> None:
            disk.release()
            done()

        disk.acquire(got_disk)

    # ------------------------------------------------------------------
    def utilisation_summary(self) -> dict:
        """Rough utilisation counters (served / waited) for reporting."""
        if self.cpus is None:
            return {"resources": "infinite"}
        summary = {
            "cpu_served": self.cpus.served,
            "cpu_waits": self.cpus.waits,
            "disk_served": sum(d.served for d in self.disks),
            "disk_waits": sum(d.waits for d in self.disks),
        }
        return summary
