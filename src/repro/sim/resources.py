"""The resource model: CPUs and disks with FIFO queues (Section 5.1).

The paper's model attaches a physical-resource phase to every operation once
the concurrency-control request is granted:

* under **infinite resources** each operation simply takes ``step_time`` of
  simulated time — there is never any waiting for hardware;
* under **finite resources** the system owns ``resource_units`` units, each a
  CPU plus two disks.  An operation first needs a CPU from the shared pool
  (waiting in a FIFO queue if none is free) for ``cpu_time`` seconds, then a
  randomly chosen disk (each disk has its own FIFO queue) for ``io_time``
  seconds.

The module models *where* that hardware lives as well as what it is:

* :class:`ResourceDomain` — one pool of hardware (a CPU pool plus disks, or
  an infinite-resource stand-in) with a ``perform_step(done)`` interface;
* :class:`GlobalResourceModel` — the paper's centralized configuration: one
  domain shared by every site, charged once per granted operation regardless
  of how many replicas executed it.  This is the pre-refactor
  ``ResourceModel`` (the name is kept as an alias) and its event/rng stream
  is bit-identical to it;
* :class:`PerSiteResources` — one :class:`ResourceDomain` per site, so each
  replica of a write is charged to the hardware of the site that executed it
  and a read only loads the one replica that served it.  Remote work
  additionally pays the network cost ``msg_time`` (zero for site-local
  work), which gives read-one/write-all-available routing its asymmetry.

Both placements implement the :class:`ResourceCharger` interface the
:class:`~repro.distributed.router.TransactionRouter` charges operations
through; :func:`make_resource_charger` picks the placement from
``SimulationParameters.resource_placement``.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Union

from .engine import EventEngine
from .params import SimulationParameters
from .random_source import RandomSource

#: An operation-phase continuation: a plain callback, or a typed engine
#: member ``(kind, *payload)`` registered via ``EventEngine.register_kind``.
Done = Union[Callable[[], None], tuple]

__all__ = [
    "FifoServer",
    "ResourceDomain",
    "ResourceCharger",
    "GlobalResourceModel",
    "PerSiteResources",
    "ResourceModel",
    "make_resource_charger",
]


class FifoServer:
    """A pool of identical servers with a single FIFO wait queue.

    With ``capacity=1`` this is a single server (one disk); with a larger
    capacity it models the shared CPU pool.
    """

    __slots__ = ("name", "capacity", "free", "queue", "waits", "served")

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.capacity = capacity
        self.free = capacity
        self.queue: Deque[Callable[[], None]] = deque()
        #: Total number of acquisitions that had to wait (utilisation metric).
        self.waits = 0
        #: Total number of acquisitions served.
        self.served = 0

    def acquire(self, callback: Callable[[], None]) -> None:
        """Hand a server to ``callback`` now, or queue the request."""
        if self.free > 0:
            self.free -= 1
            self.served += 1
            callback()
        else:
            self.waits += 1
            self.queue.append(callback)

    def release(self) -> None:
        """Return a server; the longest-waiting request (if any) gets it."""
        if self.queue:
            callback = self.queue.popleft()
            self.served += 1
            callback()
        else:
            self.free += 1

    @property
    def busy(self) -> int:
        """Number of servers currently in use."""
        return self.capacity - self.free

    @property
    def load(self) -> int:
        """Work at this server pool: in service plus queued."""
        return self.capacity - self.free + len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FifoServer {self.name!r} busy={self.busy}/{self.capacity} queued={len(self.queue)}>"


class _StepCharge:
    """The finite-resource phase of one operation: CPU service, then disk.

    One per-operation object batches the whole charge pipeline; its bound
    methods are the engine/server callbacks, replacing the four closures
    (and their cells) the pipeline used to allocate per granted operation.
    The acquire/schedule/release sequence — including the point at which the
    disk rng draw happens — is exactly the closure pipeline's, so event and
    rng streams are unchanged.
    """

    __slots__ = ("domain", "done", "disk")

    def __init__(self, domain: "ResourceDomain", done: Done):
        self.domain = domain
        self.done = done
        self.disk: Optional[FifoServer] = None
        cpus = domain.cpus
        assert cpus is not None
        cpus.acquire(self._got_cpu)

    def _got_cpu(self) -> None:
        domain = self.domain
        domain.engine.schedule(domain.cpu_time, self._cpu_finished)

    def _cpu_finished(self) -> None:
        domain = self.domain
        assert domain.cpus is not None
        domain.cpus.release()
        disk = self.disk = domain._choose_disk()
        disk.acquire(self._got_disk)

    def _got_disk(self) -> None:
        domain = self.domain
        domain.engine.schedule(domain.io_time, self._io_finished)

    def _io_finished(self) -> None:
        disk = self.disk
        assert disk is not None
        disk.release()
        done = self.done
        if done.__class__ is tuple:
            self.domain.engine.dispatch(done)
        else:
            done()


class ResourceDomain:
    """One pool of hardware: a CPU pool plus disks, or an infinite stand-in.

    This is the unit a :class:`~repro.distributed.site.Site` owns under
    per-site resource placement; the :class:`GlobalResourceModel` facade is a
    thin wrapper around one shared domain.  ``num_cpus=0`` selects the
    infinite-resource configuration (every step takes ``step_time`` with no
    queueing).

    The disk chosen for an operation's I/O phase is uniformly random among
    the domain's disks — except when the domain has exactly one disk, where
    the choice is forced and no rng draw is consumed.  The shared global
    model keeps the unconditional draw (see :class:`GlobalResourceModel`)
    because its pinned event/rng streams predate the short-circuit.
    """

    def __init__(
        self,
        engine: EventEngine,
        rng: RandomSource,
        *,
        num_cpus: int,
        num_disks: int,
        cpu_time: float,
        io_time: float,
        step_time: float,
        name: str = "",
        single_disk_shortcut: bool = True,
    ):
        self.engine = engine
        self.rng = rng
        self.name = name
        self.cpu_time = cpu_time
        self.io_time = io_time
        self.step_time = step_time
        self._single_disk_shortcut = single_disk_shortcut
        if num_cpus <= 0:
            self.cpus: Optional[FifoServer] = None
            self.disks: List[FifoServer] = []
        else:
            self.cpus = FifoServer(f"{name}cpus", num_cpus)
            self.disks = [FifoServer(f"{name}disk{i}", 1) for i in range(num_disks)]

    @property
    def infinite(self) -> bool:
        """True when this domain models no CPU/disk contention."""
        return self.cpus is None

    @property
    def load(self) -> int:
        """Outstanding work at this domain (busy plus queued, CPUs and disks).

        The router's least-loaded read-one selection ranks replicas by this;
        an infinite domain never queues, so its load is always zero.
        """
        if self.cpus is None:
            return 0
        return self.cpus.load + sum(disk.load for disk in self.disks)

    # ------------------------------------------------------------------
    def perform_step(self, done: Done) -> None:
        """Run the resource phase of one operation, then call ``done``.

        Under infinite resources this is a single delay of ``step_time``;
        under finite resources it is CPU service followed by disk service,
        each with possible queueing.  ``done`` may be a typed engine member
        — the infinite path schedules it as-is, the finite path dispatches
        it through the engine's kind table when the disk releases.
        """
        if self.cpus is None:
            self.engine.schedule(self.step_time, done)
            return
        _StepCharge(self, done)

    def _choose_disk(self) -> FifoServer:
        # A single-disk domain has no choice to make: skip the rng draw so
        # the hot path does less work and the stream is not perturbed by a
        # decision that cannot vary.
        if self._single_disk_shortcut and len(self.disks) == 1:
            return self.disks[0]
        return self.rng.choice(self.disks)

    # ------------------------------------------------------------------
    def utilisation_summary(self) -> Dict[str, object]:
        """Rough utilisation counters (served / waited) for reporting."""
        if self.cpus is None:
            return {"resources": "infinite"}
        return {
            "cpu_served": self.cpus.served,
            "cpu_waits": self.cpus.waits,
            "disk_served": sum(d.served for d in self.disks),
            "disk_waits": sum(d.waits for d in self.disks),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.cpus is None:
            return f"<ResourceDomain {self.name!r} infinite>"
        return (
            f"<ResourceDomain {self.name!r} cpus={self.cpus.capacity} "
            f"disks={len(self.disks)} load={self.load}>"
        )


class ResourceCharger:
    """Where granted operations are charged for hardware and network time.

    The :class:`~repro.distributed.router.TransactionRouter` calls
    :meth:`perform_operation` once per granted global operation with the set
    of sites whose replicas executed it and the transaction's home site; the
    charger decides which hardware serves the work and what network delay
    applies, then calls ``done`` when the physical phase completes.
    """

    #: Messages sent across sites (remote submits and commit fan-outs).
    messages_sent: int = 0

    def perform_operation(
        self,
        executed_sites: Sequence[int],
        home_site: int,
        done: Done,
    ) -> None:
        raise NotImplementedError

    def commit_network_delay(self, branch_sites: Iterable[int], home_site: int) -> float:
        """Network delay of the commit fan-out to the transaction's branches.

        Zero when every branch is home-site local (or ``msg_time`` is zero);
        one ``msg_time`` otherwise — the fan-out messages travel in parallel.
        """
        return 0.0

    def utilisation_summary(self) -> Dict[str, object]:
        raise NotImplementedError


class GlobalResourceModel(ResourceCharger):
    """CPU/disk service for operation steps from one shared pool.

    The paper's centralized configuration: all sites draw on the same
    hardware, and a granted operation is charged once no matter how many
    replica branches executed it — adding sites adds coordination, never
    capacity.  The event and rng streams are bit-identical to the
    pre-refactor ``ResourceModel`` (the disk draw is unconditional even for
    one disk, and no network events exist while ``msg_time`` is zero), which
    keeps the pinned ``sites=1`` runs reproducible.
    """

    def __init__(
        self,
        engine: EventEngine,
        params: SimulationParameters,
        rng: RandomSource,
    ):
        self.engine = engine
        self.params = params
        self.rng = rng
        self.msg_time = params.msg_time
        self.messages_sent = 0
        self._domain = ResourceDomain(
            engine,
            rng,
            num_cpus=params.num_cpus,
            num_disks=params.num_disks,
            cpu_time=params.cpu_time,
            io_time=params.io_time,
            step_time=params.step_time,
            # Pinned streams predate the single-disk shortcut: keep the
            # unconditional draw order of the original global model.
            single_disk_shortcut=False,
        )
        # Fused charge path for the paper's reference configuration: with no
        # network model and infinite resources the whole physical phase is
        # one engine delay of ``step_time``, so the per-operation charge can
        # skip the remote-count branch and the ``perform_step`` hop.  Bound
        # as an instance attribute shadowing the method; the event stream is
        # byte-identical (same single ``engine.schedule`` at the same point).
        self._step_time = params.step_time
        if self.msg_time == 0 and self._domain.cpus is None:
            self.perform_operation = self._perform_operation_infinite  # type: ignore[method-assign]

    # Back-compat views of the shared domain (pre-refactor attribute names).
    @property
    def cpus(self) -> Optional[FifoServer]:
        return self._domain.cpus

    @property
    def disks(self) -> List[FifoServer]:
        return self._domain.disks

    # ------------------------------------------------------------------
    def perform_step(self, done: Done) -> None:
        """Charge one operation to the shared pool (pre-refactor interface)."""
        self._domain.perform_step(done)

    def _perform_operation_infinite(
        self,
        executed_sites: Sequence[int],
        home_site: int,
        done: Done,
    ) -> None:
        """The fused infinite-resource, zero-network charge (see __init__)."""
        self.engine.schedule(self._step_time, done)

    def perform_operation(
        self,
        executed_sites: Sequence[int],
        home_site: int,
        done: Done,
    ) -> None:
        """One charge per granted operation, wherever its replicas ran."""
        remote = (
            sum(1 for sid in executed_sites if sid != home_site)
            if self.msg_time > 0
            else 0
        )
        if remote:
            # One message per remote replica (same accounting as the
            # per-site charger); they travel in parallel, so the shared
            # pool's single charge starts after one msg_time.
            self.messages_sent += remote
            self.engine.schedule(self.msg_time, partial(self._domain.perform_step, done))
        else:
            self._domain.perform_step(done)

    def commit_network_delay(self, branch_sites: Iterable[int], home_site: int) -> float:
        if self.msg_time > 0:
            remote = sum(1 for sid in branch_sites if sid != home_site)
            if remote:
                self.messages_sent += remote
                return self.msg_time
        return 0.0

    # ------------------------------------------------------------------
    def utilisation_summary(self) -> Dict[str, object]:
        """Rough utilisation counters (served / waited) for reporting."""
        summary = self._domain.utilisation_summary()
        if self.msg_time > 0:
            summary["messages_sent"] = self.messages_sent
        return summary


class _BranchJoin:
    """Countdown join: fires ``done`` when every replica branch finishes.

    One per fanned-out operation — a slotted callable instead of a
    ``nonlocal`` closure, so the fan-out allocates no function objects.
    """

    __slots__ = ("remaining", "done", "engine")

    def __init__(self, remaining: int, done: Done, engine: EventEngine):
        self.remaining = remaining
        self.done = done
        self.engine = engine

    def __call__(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            done = self.done
            if done.__class__ is tuple:
                self.engine.dispatch(done)
            else:
                done()


class PerSiteResources(ResourceCharger):
    """One :class:`ResourceDomain` per site: hardware follows data placement.

    Every replica branch of a granted operation is charged to the domain of
    the site that executed it (the phases run in parallel; the operation
    completes when the slowest replica does), and work at a site other than
    the transaction's home pays ``msg_time`` of network delay first.  This
    is what lets replication show its read-scaling upside: each added site
    adds ``resource_units`` of capacity, reads load one replica each, and
    only writes fan out.

    Hardware may be heterogeneous: ``params.site_units`` (one
    ``resource_units`` value per site) gives each site its own pool size,
    so a beefy primary can coexist with thin replicas.
    """

    def __init__(
        self,
        engine: EventEngine,
        params: SimulationParameters,
        rng: RandomSource,
        site_count: int,
    ):
        self.engine = engine
        self.params = params
        self.msg_time = params.msg_time
        self.messages_sent = 0
        #: Operation charges that involved at least one remote replica.
        self.remote_operations = 0

        def units_of(site_id: int) -> Optional[int]:
            if params.site_units is not None:
                return params.site_units[site_id]
            return params.resource_units

        self.domains: List[ResourceDomain] = []
        for site_id in range(site_count):
            num_cpus, num_disks = params.units_to_hardware(units_of(site_id))
            self.domains.append(
                ResourceDomain(
                    engine,
                    # Independent per-site streams: one site's disk choices
                    # must not perturb another's, and adding a site must not
                    # reshuffle the existing sites' draws.
                    rng.spawn(f"site{site_id}"),
                    num_cpus=num_cpus,
                    num_disks=num_disks,
                    cpu_time=params.cpu_time,
                    io_time=params.io_time,
                    step_time=params.step_time,
                    name=f"site{site_id}/",
                )
            )

    # ------------------------------------------------------------------
    def perform_operation(
        self,
        executed_sites: Sequence[int],
        home_site: int,
        done: Done,
    ) -> None:
        """Charge every executing replica's domain; done when all finish."""
        sites = sorted(executed_sites)
        if not sites:
            raise ValueError("perform_operation needs at least one executing site")
        join = _BranchJoin(len(sites), done, self.engine)

        remote = False
        for site_id in sites:
            domain = self.domains[site_id]
            if self.msg_time > 0 and site_id != home_site:
                remote = True
                self.messages_sent += 1
                self.engine.schedule(
                    self.msg_time, partial(domain.perform_step, join)
                )
            else:
                domain.perform_step(join)
        if remote:
            self.remote_operations += 1

    def commit_network_delay(self, branch_sites: Iterable[int], home_site: int) -> float:
        if self.msg_time > 0:
            remote = sum(1 for sid in branch_sites if sid != home_site)
            if remote:
                self.messages_sent += remote
                return self.msg_time
        return 0.0

    # ------------------------------------------------------------------
    def utilisation_summary(self) -> Dict[str, object]:
        """Per-site utilisation counters plus system-wide aggregates."""
        summary: Dict[str, object] = {}
        totals: Dict[str, int] = {}
        for site_id, domain in enumerate(self.domains):
            per_site = domain.utilisation_summary()
            if "resources" in per_site:
                summary["resources"] = "infinite"
                continue
            for key, value in per_site.items():
                summary[f"site{site_id}_{key}"] = value
                totals[key] = totals.get(key, 0) + int(value)
        summary.update(totals)
        summary["messages_sent"] = self.messages_sent
        summary["remote_operations"] = self.remote_operations
        return summary


#: Pre-refactor name of the shared-pool model, kept for callers and tests.
ResourceModel = GlobalResourceModel


def make_resource_charger(
    engine: EventEngine,
    params: SimulationParameters,
    rng: RandomSource,
) -> ResourceCharger:
    """Build the resource charger ``params.resource_placement`` selects."""
    if params.resource_placement == "per_site":
        return PerSiteResources(engine, params, rng, params.site_count)
    return GlobalResourceModel(engine, params, rng)
