"""Workload generators: the read/write model and the abstract-data-type model.

Section 5 evaluates the protocol on two data models:

* the **read/write model** (Section 5.5.1): every object is a page, every
  operation is a ``read`` or a ``write`` (write probability 0.3), and objects
  are chosen uniformly from the database;
* the **abstract-data-type model** (Section 5.5.2): every object defines four
  abstract operations whose semantics are given *only* by a per-object
  compatibility table generated at random from two integers — ``P_c``
  commutative entries (chosen as symmetric pairs) and ``P_r`` recoverable
  entries among the rest; the remaining entries are non-recoverable.  All
  operations of an object are equally likely.

A workload owns object registration (so the simulator stays model-agnostic)
and produces :class:`TransactionTemplate` objects — the fixed operation list a
logical transaction executes, and re-executes identically after a restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..adts.page import PageType
from ..core.compatibility import Answer, CompatibilitySpec, RelationTable
from ..core.errors import SimulationError
from ..core.scheduler import Scheduler
from ..core.specification import (
    FunctionalTypeSpecification,
    Invocation,
    OperationResult,
    OperationSpec,
)
from .params import SimulationParameters
from .random_source import RandomSource

__all__ = [
    "TransactionTemplate",
    "Workload",
    "ReadWriteWorkload",
    "AbstractDataTypeWorkload",
    "random_compatibility_table",
    "make_workload",
]


@dataclass(slots=True)
class TransactionTemplate:
    """The fixed operation list of one logical transaction."""

    steps: List[Tuple[str, Invocation]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)


class Workload:
    """Base class for workload generators."""

    #: Short name used in reports ("readwrite" / "adt").
    name = "abstract"

    def __init__(self, params: SimulationParameters, rng: RandomSource):
        self.params = params
        self.rng = rng

    def register_objects(self, scheduler: Scheduler) -> None:
        """Register every database object with the scheduler."""
        raise NotImplementedError

    def next_transaction(self) -> TransactionTemplate:
        """Generate the operation list of a new transaction."""
        raise NotImplementedError

    def reset(self, rng: RandomSource) -> None:
        """Rewind the template stream for a reused simulation.

        Registration never consumes this stream (the ADT tables come from a
        ``spawn``-derived child, which reads only the seed), so rebinding the
        stream alone makes ``next_transaction`` reproduce a fresh build's
        templates exactly.
        """
        self.rng = rng

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _transaction_length(self) -> int:
        return self.rng.uniform_int(self.params.min_length, self.params.max_length)

    def _object_name(self, index: int) -> str:
        return f"obj{index:05d}"

    def _random_object(self) -> str:
        return self._object_name(self.rng.uniform_int(1, self.params.database_size))


class ReadWriteWorkload(Workload):
    """Uniform-access read/write transactions over page objects."""

    name = "readwrite"

    def __init__(self, params: SimulationParameters, rng: RandomSource):
        super().__init__(params, rng)
        self._page_type = PageType()

    def register_objects(self, scheduler: Scheduler) -> None:
        compatibility = self._page_type.compatibility()
        for index in range(1, self.params.database_size + 1):
            scheduler.register_object(
                self._object_name(index),
                self._page_type,
                compatibility=compatibility,
                materialize_state=True,
            )

    def next_transaction(self) -> TransactionTemplate:
        steps: List[Tuple[str, Invocation]] = []
        for _ in range(self._transaction_length()):
            object_name = self._random_object()
            if self.rng.bernoulli(self.params.write_probability):
                steps.append((object_name, Invocation("write", (1,))))
            else:
                steps.append((object_name, Invocation("read")))
        return TransactionTemplate(steps=steps)


def random_compatibility_table(
    operations: Sequence[str], pc: int, pr: int, rng: RandomSource, object_name: str = ""
) -> CompatibilitySpec:
    """Generate one object's random compatibility tables (Section 5.5.2).

    ``pc / 2`` non-diagonal entries are drawn at random and marked commutative
    together with their symmetric counterparts; ``pr`` of the remaining
    entries are then drawn and marked recoverable; everything else is
    non-recoverable.
    """
    operations = list(operations)
    count = len(operations)
    cells = count * count
    if pc % 2 != 0:
        raise SimulationError("pc must be even (commutative entries come in symmetric pairs)")
    if pc + pr > cells:
        raise SimulationError("pc + pr exceeds the number of compatibility-table entries")

    non_diagonal_pairs = [
        (operations[i], operations[j])
        for i in range(count)
        for j in range(count)
        if i < j
    ]
    if pc // 2 > len(non_diagonal_pairs):
        raise SimulationError("pc is larger than the number of non-diagonal entry pairs")

    commutative: set = set()
    for requested, executed in rng.sample(non_diagonal_pairs, pc // 2):
        commutative.add((requested, executed))
        commutative.add((executed, requested))

    remaining = [
        (requested, executed)
        for requested in operations
        for executed in operations
        if (requested, executed) not in commutative
    ]
    recoverable = set(rng.sample(remaining, min(pr, len(remaining))))

    commutativity = RelationTable(
        name=f"random commutativity {object_name}".strip(),
        operations=tuple(operations),
        entries={pair: Answer.YES for pair in sorted(commutative)},
        default=Answer.NO,
    )
    recoverability = RelationTable(
        name=f"random recoverability {object_name}".strip(),
        operations=tuple(operations),
        entries={pair: Answer.YES for pair in sorted(commutative | recoverable)},
        default=Answer.NO,
    )
    return CompatibilitySpec(
        type_name=f"adt-object {object_name}".strip(),
        commutativity=commutativity,
        recoverability=recoverability,
    )


def _noop(state: object, args: Tuple[object, ...]) -> OperationResult:
    """Executable body of an abstract operation (behaviour given by tables)."""
    return OperationResult(state=state, value="ok")


def _abstract_operation(name: str) -> OperationSpec:
    """An operation with no executable semantics (behaviour given by tables)."""
    return OperationSpec(name=name, function=_noop)


#: Cache of generated ADT table sets, keyed by everything that determines
#: them: the derived table-stream seed and the generation parameters.  The
#: experiment harness re-runs the same (seed, pc, pr) point at several
#: multiprogramming levels; regenerating 1000 random tables per run used to
#: be a measurable slice of every ADT figure.  Tables are immutable at run
#: time (managers only read them), so sharing across runs is safe.
_TABLE_SET_CACHE: Dict[Tuple, List[CompatibilitySpec]] = {}
_TABLE_SET_CACHE_LIMIT = 64


class AbstractDataTypeWorkload(Workload):
    """Objects with four abstract operations and random compatibility tables."""

    name = "adt"

    def __init__(self, params: SimulationParameters, rng: RandomSource):
        super().__init__(params, rng)
        self.operations = tuple(
            f"op{i}" for i in range(1, params.operations_per_object + 1)
        )
        self._spec = FunctionalTypeSpecification(
            name="adt-object",
            initial_state=None,
            operations={name: _abstract_operation(name) for name in self.operations},
        )
        #: Per-object compatibility tables (generated in ``register_objects``
        #: so they are part of the run's reproducible random stream).
        self.tables: Dict[str, CompatibilitySpec] = {}

    def register_objects(self, scheduler: Scheduler) -> None:
        table_rng = self.rng.spawn("adt-tables")
        cache_key = (
            table_rng.seed,
            self.params.database_size,
            self.operations,
            self.params.pc,
            self.params.pr,
        )
        table_set = _TABLE_SET_CACHE.get(cache_key)
        if table_set is None:
            table_set = [
                random_compatibility_table(
                    self.operations,
                    self.params.pc,
                    self.params.pr,
                    table_rng,
                    object_name=self._object_name(index),
                )
                for index in range(1, self.params.database_size + 1)
            ]
            if len(_TABLE_SET_CACHE) >= _TABLE_SET_CACHE_LIMIT:
                _TABLE_SET_CACHE.pop(next(iter(_TABLE_SET_CACHE)))
            _TABLE_SET_CACHE[cache_key] = table_set
        for index, table in enumerate(table_set, start=1):
            name = self._object_name(index)
            self.tables[name] = table
            scheduler.register_object(
                name,
                self._spec,
                compatibility=table,
                materialize_state=False,
            )

    def next_transaction(self) -> TransactionTemplate:
        steps: List[Tuple[str, Invocation]] = []
        for _ in range(self._transaction_length()):
            object_name = self._random_object()
            operation = self.rng.choice(self.operations)
            steps.append((object_name, Invocation(operation)))
        return TransactionTemplate(steps=steps)


def make_workload(
    params: SimulationParameters, rng: RandomSource, kind: str = "readwrite"
) -> Workload:
    """Factory used by the simulator and the experiment layer."""
    if kind == "readwrite":
        return ReadWriteWorkload(params, rng)
    if kind == "adt":
        return AbstractDataTypeWorkload(params, rng)
    raise SimulationError(f"unknown workload kind {kind!r} (expected 'readwrite' or 'adt')")
