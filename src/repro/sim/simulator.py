"""The closed-queuing transaction-processing simulator (Section 5.1, Figure 3).

One :class:`Simulation` object models the whole system of the paper's Figure 3:

* a fixed population of terminals, each thinking for an exponential time and
  then submitting a transaction;
* a ready queue bounded by the multiprogramming level (``mpl_level``);
* a :class:`~repro.distributed.router.TransactionRouter` over one or more
  sites (``site_count``, ``replication``), each running the recoverability-
  or commutativity-based scheduler of :mod:`repro.core.scheduler` (or the
  strict-2PL baseline) and deciding, per operation, whether the request
  executes, blocks, or aborts the transaction; with one site this is exactly
  the centralized system of the paper;
* scripted site crash/recover events (``failure_schedule``) whose meaning
  the selected ``replication_protocol`` decides: writers of a failed site
  abort and restart everywhere, while a recovered replica either stays
  unreadable until a committed write (available-copies) or catches up from
  a live copy at recovery time (quorum, primary-copy);
* a periodic union-graph sweep (multi-site runs only) that detects and
  breaks cross-site cycles closed during termination cascades, which the
  per-submit check cannot see;
* a pluggable commit protocol (``commit_protocol``) deciding when a
  distributed commit reports durable: the one-shot fan-out baseline, or
  2PC with commit-time cycle certification, W-ack durability under quorum
  replication, failure-triggered re-replication and an optional
  ``prepare_timeout``;
* a resource phase per executed operation (constant ``step_time`` under
  infinite resources; CPU then disk queueing under finite resources),
  charged through the router to one shared global pool or to the domains
  of the sites that executed the operation's replicas
  (``resource_placement``), with a ``msg_time`` network delay on work
  routed away from the transaction's home site;
* immediate restart of aborted transactions at the end of the ready queue,
  re-executing the same operations;
* completion at pseudo-commit or commit, after which the issuing terminal
  starts thinking about its next transaction.

The simulator communicates with the scheduler through the listener interface:
grants of blocked requests, aborts chosen by the deadlock/cycle detector and
durable commits of pseudo-committed transactions all arrive as callbacks, and
the simulator reacts by scheduling zero-delay events so that it never re-enters
the scheduler from inside one of its callbacks.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Deque, Dict, Optional, Tuple

from ..core.backends import ConcurrencyControlBackend
from ..core.errors import SimulationError
from ..core.scheduler import (
    AbortReason,
    RequestHandle,
    SchedulerListener,
)
from ..core.specification import Event, Invocation
from ..core.transaction import TransactionStatus
from .engine import EventEngine
from .metrics import MetricsCollector, RunMetrics
from .params import SimulationParameters
from .random_source import RandomSource
from .resources import make_resource_charger
from .routing import create_router
from .terminals import Terminal, TerminalPool
from .workload import TransactionTemplate, Workload, make_workload

__all__ = ["LogicalTransaction", "Simulation", "run_simulation"]

# Restart backoff for transactions stuck in repeated deadlock aborts (see
# Simulation.on_aborted).  The threshold is the number of attempts a logical
# transaction may burn before its restarts start backing off; the cap bounds
# the escalation at ``cap * step_time``.
_BACKOFF_ATTEMPTS = 8
_BACKOFF_CAP = 64


@dataclass(slots=True)
class LogicalTransaction:
    """A terminal-submitted transaction, surviving across restarts.

    The scheduler sees a fresh transaction id per attempt; the logical
    transaction keeps the original submission time (response time includes
    restart work) and the fixed operation list.
    """

    logical_id: int
    terminal: Terminal
    template: TransactionTemplate
    submit_time: float
    #: ``len(template)``, cached at submission: the per-operation completion
    #: handler compares against it once per executed operation.
    total_steps: int = 0
    attempts: int = 0
    steps_done: int = 0
    scheduler_tid: Optional[int] = None
    completed: bool = False
    completion_time: Optional[float] = None
    slot_released: bool = False

    @property
    def remaining_steps(self) -> int:
        return len(self.template) - self.steps_done

    def next_step(self) -> Tuple[str, Invocation]:
        return self.template.steps[self.steps_done]


class Simulation(SchedulerListener):
    """One simulation run for a single parameter point and seed."""

    def __init__(
        self,
        params: SimulationParameters,
        workload_kind: str = "readwrite",
        workload: Optional[Workload] = None,
        backend: Optional["ConcurrencyControlBackend"] = None,
        pool_requests: bool = True,
    ):
        self.params = params
        self.engine = EventEngine()
        # Typed event kinds for the simulator's recurring producers, bound
        # once here (registration order is construction order, hence
        # deterministic).  Each hot-loop event is then a plain
        # ``(kind, *payload)`` tuple drained through the engine's dispatch
        # table instead of a per-event ``functools.partial``.
        self._kind_submit = self.engine.register_kind(self._submit)
        self._kind_op_finished = self.engine.register_kind(self._operation_finished)
        self._kind_fanout = self.engine.register_kind(self._complete_after_fanout)
        self._kind_restart = self.engine.register_kind(self._restart)
        self._kind_sweep = self.engine.register_kind(self._sweep)
        root_rng = RandomSource(params.seed)
        self.workload_rng = root_rng.spawn("workload")
        self.think_rng = root_rng.spawn("think")
        self.resource_rng = root_rng.spawn("resources")
        self.workload = workload or make_workload(params, self.workload_rng, workload_kind)
        # ``params.policy`` selects the concurrency-control backend per site
        # (the semantic scheduler, or strict 2PL for TWO_PHASE_LOCKING);
        # passing a ``backend`` instance overrides that choice outright, but
        # only for the centralized single-site configuration — multiple sites
        # each need a backend of their own.
        if backend is not None and (params.site_count != 1 or params.failure_schedule):
            raise SimulationError(
                "an explicit backend instance requires site_count=1 and no "
                "failure schedule; select per-site backends through params.policy"
            )
        self.router = create_router(
            site_count=params.site_count,
            replication=params.replication,
            policy=params.policy,
            fair=params.fair_scheduling,
            record_history=False,
            retain_terminated=False,
            backend_factory=(lambda: backend) if backend is not None else None,
            replication_protocol=params.replication_protocol,
            quorum_read=params.quorum_read,
            quorum_write=params.quorum_write,
            commit_protocol=params.commit_protocol,
            prepare_timeout=params.prepare_timeout,
            pool_requests=pool_requests,
        )
        self.router.add_listener(self)
        # The commit protocol may need to schedule future work (the
        # two-phase prepare timeout); hand it the engine's clock, plus the
        # kind registry so its recurring timeout drains as a typed member.
        self.router.commit_protocol.attach_clock(
            self.engine.schedule, register_kind=self.engine.register_kind
        )
        self.workload.register_objects(self.router)
        # The hardware: one shared pool (the paper's model) or one domain
        # per site, per ``params.resource_placement``.  The router owns the
        # charging — the simulator only sees "this operation's physical
        # phase is done" — so hardware follows data placement.
        self.resources = make_resource_charger(self.engine, params, self.resource_rng)
        self.router.attach_resources(self.resources)
        self.terminals = TerminalPool(params.num_terminals)
        self.metrics = MetricsCollector()

        self.ready_queue: Deque[LogicalTransaction] = deque()
        self.active_count = 0
        self.completions = 0
        self._next_logical_id = 0
        self._by_scheduler_tid: Dict[int, LogicalTransaction] = {}
        self._measuring = params.warmup_completions == 0

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> RunMetrics:
        """Run until ``total_completions`` transactions complete.

        ``max_events`` caps the *total* events of the run.  When it is left
        at the default, the safety valve is progress-aware instead: the run
        may process any number of events overall, but raises if no
        transaction completes within a large fixed budget.  A genuine
        configuration error (a zero-delay event loop, a wedged scheduler)
        makes no progress and still trips the valve, while a heavily
        thrashing high-contention run — which completes work, just slowly —
        is allowed to finish.  Driving the engine in between-completion
        segments does not change which events run or their order, so
        simulation streams are unaffected.
        """
        self.metrics.begin_measurement(
            0.0,
            self.router.stats,
            self.resources.utilisation_summary(),
            self.router.replication_summary(),
            self.router.commit_summary(),
        )
        self._schedule_site_events()
        self._schedule_cycle_sweep()
        for terminal in self.terminals:
            terminal.think_then_submit_typed(
                self.engine, self.think_rng, self.params.ext_think_time, self._kind_submit
            )
        if max_events is not None:
            self.engine.run(until=self._done, max_events=max_events)
        else:
            stall_budget = max(
                2_000_000,
                200 * self.params.total_completions * self.params.max_length,
            )
            # Each completion requests an engine stop (see ``_complete``), so
            # the engine runs flag-checked between-completion segments —
            # identical event streams to the old per-event predicate, without
            # two interpreter calls per event to evaluate it.
            while not self._done():
                before = self.completions
                self.engine.run_until_stop(max_events=stall_budget)
                if self.completions == before and not self._done():
                    raise SimulationError(
                        "event queue drained before the stop condition was met"
                    )
        return self.metrics.freeze(
            self.engine.now,
            self.router.stats,
            self.engine.events_processed,
            resource_summary=self.resources.utilisation_summary(),
            replication_summary=self.router.replication_summary(),
            commit_summary=self.router.commit_summary(),
        )

    def _schedule_site_events(self) -> None:
        """Turn the failure schedule into engine events (site crash/recover)."""
        for time, action, site_id in self.params.failure_schedule:
            self.engine.schedule_at(time, partial(self._site_event, action, site_id))

    def _schedule_cycle_sweep(self) -> None:
        """Periodically sweep the union graph for late-closing cycles.

        Cross-site cycles closed during a termination cascade (a queued
        request re-blocked when another transaction's locks drain) are
        invisible to the per-submit check; the sweep catches them from a
        plain engine event — a context where aborting the victim is safe —
        every operation time.  The sweep is gated on the dependency graphs'
        mutation counters, so quiet periods cost one integer sum; with one
        site no event is ever scheduled and the centralized event stream is
        untouched.
        """
        if self.params.site_count <= 1:
            return
        self.engine.schedule(self.params.step_time, (self._kind_sweep,))

    def _sweep(self, member: tuple) -> None:
        """Typed handler: one union-graph sweep, then reschedule.

        The member carries no payload, so the very same tuple is re-scheduled
        for the next period — the recurring sweep allocates nothing at all.
        """
        if self._done():
            return
        self.router.sweep_global_cycles()
        self.engine.schedule(self.params.step_time, member)

    def _site_event(self, action: str, site_id: int) -> None:
        site = self.router.sites[site_id]
        # Tolerate schedules that fail an already-failed site (or recover a
        # live one): the scripted scenario keeps its meaning, nothing breaks.
        if action == "fail" and site.status.is_up:
            self.router.fail_site(site_id)
        elif action == "recover" and not site.status.is_up:
            self.router.recover_site(site_id)

    def _done(self) -> bool:
        return self.completions >= self.params.total_completions

    # ------------------------------------------------------------------
    # Reuse across parameter points
    # ------------------------------------------------------------------
    #: Parameter fields a reused simulation may change between points.  They
    #: shape the *load* (how many transactions run concurrently, how long),
    #: not the *system*: everything reachable from object registration — the
    #: database, placement, protocols, hardware shape — must match, or the
    #: constructed managers would not be the ones a fresh build produces.
    _RESET_OVERRIDABLE = ("mpl_level", "total_completions", "warmup_completions")

    def reset(self, params: SimulationParameters) -> None:
        """Restore seed-equivalent initial state for another run.

        After ``reset(params)`` the simulation behaves exactly like a freshly
        constructed ``Simulation(params, ...)``: the random streams rewind to
        their seed-derived starts, every scheduler and object manager returns
        to its registered initial state, and the engine clock restarts at
        zero — while the expensive construction work (object registration,
        compatibility-table compilation, router wiring) is reused.  ``params``
        may differ from the constructing parameters only in the sweep knobs
        listed in ``_RESET_OVERRIDABLE``; anything else raises
        :class:`~repro.core.errors.SimulationError`.
        """
        overrides = {name: getattr(self.params, name) for name in self._RESET_OVERRIDABLE}
        if dataclasses.astuple(params.replace(**overrides)) != dataclasses.astuple(self.params):
            raise SimulationError(
                "reset() may only change "
                + "/".join(self._RESET_OVERRIDABLE)
                + "; other parameters shape the constructed system and need a new Simulation"
            )
        self.params = params
        self.engine.reset()
        root_rng = RandomSource(params.seed)
        self.workload_rng = root_rng.spawn("workload")
        self.think_rng = root_rng.spawn("think")
        self.resource_rng = root_rng.spawn("resources")
        self.workload.reset(self.workload_rng)
        self.router.reset()
        # The charger is cheap and holds queueing state; rebuild it like the
        # constructor does (the engine reference it captures was reset in
        # place, so its clock is this run's clock).
        self.resources = make_resource_charger(self.engine, params, self.resource_rng)
        self.router.attach_resources(self.resources)
        self.terminals = TerminalPool(params.num_terminals)
        self.metrics = MetricsCollector()
        self.ready_queue.clear()
        self.active_count = 0
        self.completions = 0
        self._next_logical_id = 0
        self._by_scheduler_tid.clear()
        self._measuring = params.warmup_completions == 0

    # ------------------------------------------------------------------
    # Arrival, admission and the ready queue
    # ------------------------------------------------------------------
    def _submit(self, member: tuple) -> None:
        """Typed handler ``(kind, terminal)``: a terminal's think time
        expired and it submits a new transaction (Figure 3 arrival path)."""
        if self._done():
            return
        terminal: Terminal = member[1]
        self._next_logical_id += 1
        terminal.submitted += 1
        template = self.workload.next_transaction()
        transaction = LogicalTransaction(
            logical_id=self._next_logical_id,
            terminal=terminal,
            template=template,
            submit_time=self.engine.now,
            total_steps=len(template.steps),
        )
        if self.active_count < self.params.mpl_level:
            self._start(transaction)
        else:
            self.ready_queue.append(transaction)

    def _start(self, transaction: LogicalTransaction) -> None:
        """Begin a (possibly restarted) transaction at the scheduler."""
        self.active_count += 1
        transaction.attempts += 1
        transaction.steps_done = 0
        transaction.slot_released = False
        scheduler_transaction = self.router.begin(label=f"L{transaction.logical_id}")
        transaction.scheduler_tid = scheduler_transaction.tid
        self._by_scheduler_tid[scheduler_transaction.tid] = transaction
        self._issue_next_operation(transaction)

    def _admit_from_ready_queue(self) -> None:
        while self.ready_queue and self.active_count < self.params.mpl_level:
            self._start(self.ready_queue.popleft())

    def _release_slot(self, transaction: LogicalTransaction) -> None:
        """Free the transaction's multiprogramming slot exactly once."""
        if transaction.slot_released:
            return
        transaction.slot_released = True
        self.active_count -= 1
        self._admit_from_ready_queue()

    # ------------------------------------------------------------------
    # Operation lifecycle
    # ------------------------------------------------------------------
    def _issue_next_operation(self, transaction: LogicalTransaction) -> None:
        object_name, invocation = transaction.next_step()
        assert transaction.scheduler_tid is not None
        handle = self.router.submit(transaction.scheduler_tid, object_name, invocation)
        if handle.executed:
            self._run_resource_phase(transaction)
        # BLOCKED: wait for on_granted.  ABORTED: on_aborted already scheduled
        # the restart — nothing to do here.

    def _run_resource_phase(self, transaction: LogicalTransaction) -> None:
        # A typed member rather than a partial: this runs once per executed
        # operation, and the engine drains the tuple straight into
        # ``_operation_finished`` with no function object allocated.
        assert transaction.scheduler_tid is not None
        self.router.perform_step(
            transaction.scheduler_tid,
            (self._kind_op_finished, transaction, transaction.attempts),
        )

    def _operation_finished(self, member: tuple) -> None:
        """Typed handler ``(kind, transaction, attempt)``: the physical
        phase of one executed operation completed.

        This is the simulator's hottest handler (once per executed
        operation), so the per-event work is inlined into its frame: the
        staleness check — the attempt the phase belonged to was aborted
        while CPU/disk/network work was in flight, either already restarted
        (attempts moved on) or with the restart still queued
        (``scheduler_tid`` cleared by ``on_aborted``) — then the next
        operation's submit, or the commit once the template is exhausted.
        """
        transaction: LogicalTransaction = member[1]
        scheduler_tid = transaction.scheduler_tid
        if (
            transaction.attempts != member[2]
            or transaction.completed
            or scheduler_tid is None
        ):
            return
        steps_done = transaction.steps_done + 1
        transaction.steps_done = steps_done
        if steps_done < transaction.total_steps:
            object_name, invocation = transaction.template.steps[steps_done]
            handle = self.router.submit(scheduler_tid, object_name, invocation)
            if handle.executed:
                # The attempt is unchanged (checked above), so the drained
                # member is re-armed as the next phase's continuation.
                self.router.perform_step(scheduler_tid, member)
            # BLOCKED: wait for on_granted.  ABORTED: on_aborted already
            # scheduled the restart — nothing to do here.
            return
        # Commit fan-out: branches at sites other than the transaction's
        # home pay the network cost before the commit lands (zero without a
        # network model, in which case no event is scheduled at all).
        delay = self.router.commit_network_delay(scheduler_tid)
        if delay > 0:
            self.engine.schedule(delay, (self._kind_fanout, transaction, member[2]))
        else:
            self._complete(transaction)

    def _complete_after_fanout(self, member: tuple) -> None:
        """Typed handler ``(kind, transaction, attempt)``: commit fan-out
        network delay elapsed (same staleness rule as the phase handler)."""
        transaction: LogicalTransaction = member[1]
        if (
            transaction.attempts != member[2]
            or transaction.completed
            or transaction.scheduler_tid is None
        ):
            return
        self._complete(transaction)

    # ------------------------------------------------------------------
    # Completion (pseudo-commit or commit)
    # ------------------------------------------------------------------
    def _complete(self, transaction: LogicalTransaction) -> None:
        assert transaction.scheduler_tid is not None
        status = self.router.commit(transaction.scheduler_tid)
        if status is TransactionStatus.ABORTED:
            # Two-phase certification found a dependency cycle and the
            # committing transaction was the victim: its on_aborted callback
            # already scheduled the restart; this attempt never completed.
            return
        transaction.completed = True
        transaction.completion_time = self.engine.now
        self.completions += 1
        # Hand control back to ``run`` before the next event, exactly where
        # the old completion predicate would have flipped.
        self.engine.request_stop()
        self._maybe_start_measuring()
        if self._measuring:
            self.metrics.record_completion(
                response_time=self.engine.now - transaction.submit_time,
                pseudo=status is TransactionStatus.PSEUDO_COMMITTED,
            )
        transaction.terminal.completed += 1
        transaction.terminal.think_then_submit_typed(
            self.engine, self.think_rng, self.params.ext_think_time, self._kind_submit
        )
        if status is TransactionStatus.COMMITTED:
            self._by_scheduler_tid.pop(transaction.scheduler_tid, None)
            self._release_slot(transaction)
        elif not self.params.pseudo_commit_holds_slot:
            self._release_slot(transaction)
        # Otherwise the slot is held until the durable commit arrives through
        # the on_committed callback.

    def _maybe_start_measuring(self) -> None:
        if self._measuring:
            return
        if self.completions >= self.params.warmup_completions:
            self._measuring = True
            self.metrics.begin_measurement(
                self.engine.now,
                self.router.stats,
                self.resources.utilisation_summary(),
                self.router.replication_summary(),
                self.router.commit_summary(),
            )

    # ------------------------------------------------------------------
    # SchedulerListener callbacks (never re-enter the scheduler directly)
    # ------------------------------------------------------------------
    def on_granted(self, transaction_id: int, handle: RequestHandle, event: Event) -> None:
        transaction = self._by_scheduler_tid.get(transaction_id)
        if transaction is None or transaction.completed:
            return
        self._run_resource_phase(transaction)

    def on_aborted(self, transaction_id: int, reason: AbortReason) -> None:
        transaction = self._by_scheduler_tid.pop(transaction_id, None)
        if transaction is None or transaction.completed:
            return
        transaction.scheduler_tid = None
        # A transaction aborted because no live site could serve its operation
        # retries after one operation time rather than immediately: with the
        # needed copies still down it would otherwise spin through abort and
        # restart in zero simulated time.
        delay = self.params.step_time if reason is AbortReason.SITE_UNAVAILABLE else 0.0
        # Deadlock-abort livelock breaker.  Templates are fixed per logical
        # transaction and victim selection is deterministic, so under heavy
        # contention a set of mutually conflicting transactions can re-form
        # the same deadlock cycle on every immediate restart, forever (seen
        # at mpl=8 over 24 objects).  After several failed attempts the
        # restart backs off by an escalating, attempt-derived delay, which
        # staggers the group and breaks the lock-step.  The delay is a pure
        # function of the attempt count — no RNG is consulted — and the
        # threshold is high enough that runs which make normal progress
        # replay bit-identically.
        if transaction.attempts > _BACKOFF_ATTEMPTS:
            over = transaction.attempts - _BACKOFF_ATTEMPTS
            delay = max(delay, self.params.step_time * min(over, _BACKOFF_CAP))
        self.engine.schedule(delay, (self._kind_restart, transaction))

    def on_committed(self, transaction_id: int) -> None:
        transaction = self._by_scheduler_tid.pop(transaction_id, None)
        if transaction is None:
            return
        if self.params.pseudo_commit_holds_slot and transaction.completed:
            self.engine.schedule(0.0, partial(self._release_slot, transaction))

    # ------------------------------------------------------------------
    # Restarts
    # ------------------------------------------------------------------
    def _restart(self, member: tuple) -> None:
        """Typed handler ``(kind, transaction)``: requeue an aborted
        transaction at the end of the ready queue."""
        transaction: LogicalTransaction = member[1]
        if self._measuring:
            self.metrics.record_restart()
        self._release_slot(transaction)
        if self._done():
            return
        self.ready_queue.append(transaction)
        self._admit_from_ready_queue()


def run_simulation(
    params: SimulationParameters,
    workload_kind: str = "readwrite",
    max_events: Optional[int] = None,
    backend: Optional[ConcurrencyControlBackend] = None,
    pool_requests: bool = True,
) -> RunMetrics:
    """Convenience wrapper: build a :class:`Simulation` and run it."""
    return Simulation(
        params,
        workload_kind=workload_kind,
        backend=backend,
        pool_requests=pool_requests,
    ).run(max_events=max_events)
