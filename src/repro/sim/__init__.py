"""Closed-queuing simulation substrate (Section 5 of the paper).

The subpackage contains the discrete-event engine, the resource model, the
terminal population, the two workload generators (read/write and abstract
data type), the metric definitions, and :class:`~repro.sim.simulator.Simulation`
which ties them to the concurrency-control scheduler.
"""

from .engine import EventEngine, ScheduledEvent
from .metrics import MetricsCollector, RunMetrics
from .params import INFINITE_RESOURCES, SimulationParameters
from .random_source import RandomSource
from .resources import (
    FifoServer,
    GlobalResourceModel,
    PerSiteResources,
    ResourceCharger,
    ResourceDomain,
    ResourceModel,
    make_resource_charger,
)
from .simulator import LogicalTransaction, Simulation, run_simulation
from .terminals import Terminal, TerminalPool
from .workload import (
    AbstractDataTypeWorkload,
    ReadWriteWorkload,
    TransactionTemplate,
    Workload,
    make_workload,
    random_compatibility_table,
)

__all__ = [
    "EventEngine",
    "ScheduledEvent",
    "MetricsCollector",
    "RunMetrics",
    "INFINITE_RESOURCES",
    "SimulationParameters",
    "RandomSource",
    "FifoServer",
    "GlobalResourceModel",
    "PerSiteResources",
    "ResourceCharger",
    "ResourceDomain",
    "ResourceModel",
    "make_resource_charger",
    "LogicalTransaction",
    "Simulation",
    "run_simulation",
    "Terminal",
    "TerminalPool",
    "AbstractDataTypeWorkload",
    "ReadWriteWorkload",
    "TransactionTemplate",
    "Workload",
    "make_workload",
    "random_compatibility_table",
]
