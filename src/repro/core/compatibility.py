"""Compatibility tables: commutativity and recoverability relations.

The object manager never reasons about states at run time.  Instead, each
data type publishes two *compatibility tables* (the paper's Tables I-VIII):

* a **commutativity** table — entry ``(requested, executed)`` says whether the
  two operations commute (Definition 2);
* a **recoverability** table — entry ``(requested, executed)`` says whether the
  *requested* operation is recoverable relative to the *executed* one
  (Definition 1): its return value is unaffected by whether the executed
  operation ran before it.

Entries can be qualified by the operations' input parameters, following the
paper's ``Yes-SP`` / ``Yes-DP`` notation (the property holds only when the two
invocations carry the Same Parameter / Different Parameters).

At run time the scheduler asks a single question: *how does the requested
invocation relate to this uncommitted executed invocation?*  The answer is a
:class:`ConflictClass`:

``COMMUTATIVE``
    no ordering constraint at all;
``RECOVERABLE``
    the request may execute now, but a commit dependency must be recorded
    (requester commits after the executor);
``CONFLICT``
    the request must wait for the executor to terminate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from .errors import SpecificationError
from .specification import Invocation, TypeSpecification

__all__ = [
    "Answer",
    "ConflictClass",
    "RelationTable",
    "CompatibilitySpec",
]


class Answer(enum.Enum):
    """A qualified yes/no entry in a compatibility table."""

    #: The property holds regardless of parameters.
    YES = "Yes"
    #: The property never holds.
    NO = "No"
    #: The property holds only when both invocations have the *same* parameter.
    YES_SP = "Yes-SP"
    #: The property holds only when the invocations have *different* parameters.
    YES_DP = "Yes-DP"

    def holds(self, same_parameter: bool) -> bool:
        """Evaluate the entry for a concrete pair of invocations."""
        if self is Answer.YES:
            return True
        if self is Answer.NO:
            return False
        if self is Answer.YES_SP:
            return same_parameter
        return not same_parameter

    @property
    def is_unconditional(self) -> bool:
        """True for plain ``Yes``/``No`` entries (no parameter qualification)."""
        return self in (Answer.YES, Answer.NO)

    def implies(self, other: "Answer") -> bool:
        """Return True if every pair admitted by ``self`` is admitted by ``other``.

        Used when validating the paper's declared tables against derived ones:
        a declared entry is *sound* if it implies the derived entry.  ``NO``
        implies everything (it admits no pair); ``YES`` is implied only by
        ``YES``.
        """
        if self is Answer.NO:
            return True
        if other is Answer.YES:
            return True
        if self is other:
            return True
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ConflictClass(enum.Enum):
    """How a requested invocation relates to an uncommitted executed one."""

    COMMUTATIVE = "commutative"
    RECOVERABLE = "recoverable"
    CONFLICT = "conflict"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class RelationTable:
    """A square table mapping ``(requested op, executed op)`` to an :class:`Answer`.

    The table is not necessarily symmetric; recoverability in particular is
    directional (``insert`` is recoverable relative to ``size`` but ``size`` is
    not recoverable relative to ``insert``).
    """

    name: str
    operations: Tuple[str, ...]
    entries: Dict[Tuple[str, str], Answer] = field(default_factory=dict)
    #: Answer used for pairs not present in ``entries``.
    default: Answer = Answer.NO

    def __post_init__(self) -> None:
        self.operations = tuple(self.operations)
        known = set(self.operations)
        for requested, executed in self.entries:
            if requested not in known or executed not in known:
                raise SpecificationError(
                    f"table {self.name!r}: entry ({requested!r}, {executed!r}) "
                    f"references an operation outside {sorted(known)}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        name: str,
        operations: Sequence[str],
        rows: Mapping[str, Sequence[Answer]],
        default: Answer = Answer.NO,
    ) -> "RelationTable":
        """Build a table from per-requested-operation rows.

        ``rows[requested][j]`` is the entry for ``(requested, operations[j])``,
        mirroring how the paper prints its tables (requested operation down
        the side, executed operation across the top).
        """
        entries: Dict[Tuple[str, str], Answer] = {}
        for requested, row in rows.items():
            if len(row) != len(operations):
                raise SpecificationError(
                    f"table {name!r}: row for {requested!r} has {len(row)} entries, "
                    f"expected {len(operations)}"
                )
            for executed, answer in zip(operations, row):
                entries[(requested, executed)] = answer
        return cls(name=name, operations=tuple(operations), entries=entries, default=default)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def answer(self, requested_op: str, executed_op: str) -> Answer:
        """Return the (possibly qualified) table entry for a pair of op names."""
        return self.entries.get((requested_op, executed_op), self.default)

    def holds(
        self,
        requested: Invocation,
        executed: Invocation,
        spec: Optional[TypeSpecification] = None,
    ) -> bool:
        """Evaluate the relation for two concrete invocations.

        Parameter-qualified entries need to know whether the two invocations
        carry the same parameter; the owning type's
        :meth:`~repro.core.specification.TypeSpecification.conflict_parameter`
        decides what "parameter" means (full argument tuple by default).
        """
        entry = self.answer(requested.op, executed.op)
        if entry.is_unconditional:
            return entry.holds(same_parameter=True)
        if spec is not None:
            same = spec.conflict_parameter(requested) == spec.conflict_parameter(executed)
        else:
            same = requested.args == executed.args
        return entry.holds(same_parameter=same)

    # ------------------------------------------------------------------
    # Rendering / comparison
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[Tuple[str, str], Answer]:
        """Return a complete dense mapping for every operation pair."""
        return {
            (requested, executed): self.answer(requested, executed)
            for requested in self.operations
            for executed in self.operations
        }

    def render(self, title: Optional[str] = None) -> str:
        """Render the table as aligned text, in the paper's orientation."""
        title = title or self.name
        width = max(
            [len("Requested")]
            + [len(op) for op in self.operations]
            + [len(str(a)) for a in self.as_dict().values()]
        ) + 2
        header = "Requested".ljust(width) + "".join(op.ljust(width) for op in self.operations)
        lines = [title, "-" * len(header), header]
        for requested in self.operations:
            cells = "".join(
                str(self.answer(requested, executed)).ljust(width)
                for executed in self.operations
            )
            lines.append(requested.ljust(width) + cells)
        return "\n".join(lines)

    def count(self, *answers: Answer) -> int:
        """Count dense entries whose answer is one of ``answers``."""
        wanted = set(answers)
        return sum(1 for a in self.as_dict().values() if a in wanted)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationTable):
            return NotImplemented
        return (
            set(self.operations) == set(other.operations)
            and self.as_dict() == other.as_dict()
        )

    def __hash__(self) -> int:  # tables are mutable containers; identity hash
        return id(self)


@dataclass
class CompatibilitySpec:
    """The pair of tables (commutativity, recoverability) for one data type.

    The run-time classification implemented by :meth:`classify` follows the
    paper's algorithm (Figure 2): commutativity is checked first, then
    recoverability; anything else is a conflict.  Lemma 1 (commutativity
    implies recoverability) is *not* assumed of the supplied tables — a pair
    classified commutative never consults the recoverability table, so tables
    that omit the implied entries still behave correctly.
    """

    type_name: str
    commutativity: RelationTable
    recoverability: RelationTable

    def __post_init__(self) -> None:
        if set(self.commutativity.operations) != set(self.recoverability.operations):
            raise SpecificationError(
                f"compatibility spec for {self.type_name!r}: the two tables "
                "cover different operation sets"
            )

    @property
    def operations(self) -> Tuple[str, ...]:
        return self.commutativity.operations

    def commute(
        self,
        requested: Invocation,
        executed: Invocation,
        spec: Optional[TypeSpecification] = None,
    ) -> bool:
        """True if the two concrete invocations commute."""
        return self.commutativity.holds(requested, executed, spec)

    def recoverable(
        self,
        requested: Invocation,
        executed: Invocation,
        spec: Optional[TypeSpecification] = None,
    ) -> bool:
        """True if ``requested`` is recoverable relative to ``executed``."""
        return self.recoverability.holds(requested, executed, spec)

    def classify(
        self,
        requested: Invocation,
        executed: Invocation,
        spec: Optional[TypeSpecification] = None,
    ) -> ConflictClass:
        """Classify a requested invocation against an executed, uncommitted one."""
        if self.commute(requested, executed, spec):
            return ConflictClass.COMMUTATIVE
        if self.recoverable(requested, executed, spec):
            return ConflictClass.RECOVERABLE
        return ConflictClass.CONFLICT

    def render(self) -> str:
        """Render both tables as text (commutativity first, like the paper)."""
        return "\n\n".join(
            [
                self.commutativity.render(f"Commutativity for {self.type_name}"),
                self.recoverability.render(f"Recoverability for {self.type_name}"),
            ]
        )
