"""Recovery machinery: intentions lists and undo logs (Section 4.4).

The paper deliberately leaves recovery strategy open ("these schemes can be
adapted to effect recovery in our concurrency control scheme"), noting only
that recovery can be based on either *intentions lists* or *undo logs* and
that what "undo" means is type-specific (there is no undo for a ``read`` or a
``top``; the undo of a ``push`` removes the pushed element).

The scheduler itself (see :mod:`repro.core.object_manager`) realises the
intentions-list view: uncommitted operations live in a per-object log over the
committed state, abort deletes them, commit folds them in.  This module adds
the two strategies as stand-alone, application-level utilities:

* :class:`IntentionsList` — a per-transaction record of intended operations
  that can be *applied* to an object on commit or simply discarded on abort;
* :class:`UndoLog` — a per-transaction record of executed operations together
  with the information needed to undo them (a logical inverse where the type
  provides one, a before-image otherwise).

Both are exercised by the examples and tests; the tests check that, for sound
schedules, replay-based undo (what the scheduler does) and logical undo lead
to equivalent states whenever a logical inverse exists and no later
non-commuting uncommitted operation intervenes (the caveat the paper's stack
example illustrates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .errors import RecoveryError
from .specification import Invocation, TypeSpecification

__all__ = ["IntentionEntry", "IntentionsList", "UndoEntry", "UndoLog"]


@dataclass(frozen=True)
class IntentionEntry:
    """One intended operation recorded by an :class:`IntentionsList`."""

    object_name: str
    invocation: Invocation


@dataclass
class IntentionsList:
    """A transaction's list of intended operations.

    The transaction records each operation it wants to perform; nothing is
    applied to the real objects until :meth:`apply_to` is called at commit
    time.  Abort is therefore free: the list is simply dropped.
    """

    transaction_id: int
    entries: List[IntentionEntry] = field(default_factory=list)

    def record(self, object_name: str, invocation: Invocation) -> None:
        """Append an intended operation."""
        self.entries.append(IntentionEntry(object_name, invocation))

    def drop(self, object_name: str, invocation: Invocation) -> bool:
        """Remove the first matching intention (the paper's push-undo example:
        "dropping the push operation from the transaction's intentions list").

        Returns ``True`` if an entry was removed.
        """
        for index, entry in enumerate(self.entries):
            if entry.object_name == object_name and entry.invocation == invocation:
                del self.entries[index]
                return True
        return False

    def apply_to(self, objects: Dict[str, Any]) -> List[Any]:
        """Apply every intention, in order, to the given ``AtomicObject`` map.

        Returns the list of return values.  Raises
        :class:`~repro.core.errors.RecoveryError` if an intention references
        an unknown object.
        """
        values: List[Any] = []
        for entry in self.entries:
            target = objects.get(entry.object_name)
            if target is None:
                raise RecoveryError(
                    f"intentions list of T{self.transaction_id} references unknown "
                    f"object {entry.object_name!r}"
                )
            values.append(target.apply(entry.invocation).value)
        return values

    def clear(self) -> None:
        """Discard all intentions (the abort path)."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class UndoEntry:
    """Undo information for one executed operation."""

    object_name: str
    invocation: Invocation
    value: Any
    #: State of the object immediately before the operation executed.
    before_state: Any
    #: Logical inverse invocation, if the type defines one.
    inverse: Optional[Invocation]
    #: Whether the operation was read-only (no undo needed at all).
    read_only: bool


@dataclass
class UndoLog:
    """A transaction's undo log over eagerly applied operations.

    ``record`` is called after each executed operation; ``undo_logical``
    applies inverse invocations in reverse order, and ``undo_physical``
    restores the earliest before-image per object.  Physical undo is only
    correct when no *other* transaction's effects must survive on the same
    object (it restores the whole object), which is exactly why the scheduler
    uses replay-based undo instead; both are provided here for completeness
    and for single-writer application code.
    """

    transaction_id: int
    entries: List[UndoEntry] = field(default_factory=list)

    def record(
        self,
        object_name: str,
        spec: TypeSpecification,
        invocation: Invocation,
        before_state: Any,
        value: Any,
    ) -> None:
        """Record undo information for an executed operation."""
        operation = spec.operation(invocation.op)
        inverse: Optional[Invocation] = None
        if operation.inverse is not None:
            inverse = operation.inverse(before_state, invocation.args, value)
        self.entries.append(
            UndoEntry(
                object_name=object_name,
                invocation=invocation,
                value=value,
                before_state=before_state,
                inverse=inverse,
                read_only=operation.is_read_only,
            )
        )

    def undo_logical(self, objects: Dict[str, Any]) -> int:
        """Undo by applying logical inverses in reverse execution order.

        Read-only operations are skipped (no undo exists or is needed).
        Raises :class:`~repro.core.errors.RecoveryError` for a non-read-only
        operation without an inverse.  Returns the number of operations
        undone.
        """
        undone = 0
        for entry in reversed(self.entries):
            if entry.read_only:
                continue
            target = objects.get(entry.object_name)
            if target is None:
                raise RecoveryError(
                    f"undo log of T{self.transaction_id} references unknown object "
                    f"{entry.object_name!r}"
                )
            if entry.inverse is None:
                raise RecoveryError(
                    f"operation {entry.invocation.op!r} on {entry.object_name!r} has "
                    "no logical inverse; use physical or replay-based undo"
                )
            target.apply(entry.inverse)
            undone += 1
        self.entries.clear()
        return undone

    def undo_physical(self, objects: Dict[str, Any]) -> int:
        """Undo by restoring, per object, the before-image of the transaction's
        earliest operation on that object.  Returns the number of objects
        restored."""
        earliest: Dict[str, Any] = {}
        for entry in self.entries:
            if entry.read_only:
                continue
            earliest.setdefault(entry.object_name, entry.before_state)
        for object_name, state in earliest.items():
            target = objects.get(object_name)
            if target is None:
                raise RecoveryError(
                    f"undo log of T{self.transaction_id} references unknown object "
                    f"{object_name!r}"
                )
            target.restore(state)
        self.entries.clear()
        return len(earliest)

    def __len__(self) -> int:
        return len(self.entries)
