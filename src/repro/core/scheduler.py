"""The recoverability-based concurrency-control scheduler (Sections 4.2-4.3).

The :class:`Scheduler` is the public entry point of the library.  It owns one
:class:`~repro.core.object_manager.ObjectManager` per registered object, the
unified :class:`~repro.core.dependency_graph.DependencyGraph`, and the
transaction table, and it implements:

* the operation-admission algorithm of Figure 2 (classify a request against
  uncommitted operations; block with wait-for edges, or execute with
  commit-dependency edges, aborting the requester if either would close a
  cycle);
* *fair scheduling* (Section 5.2): an incoming request is blocked if it
  conflicts with an already-blocked request, so blocked writers are not
  starved — this can be switched off to reproduce Figures 8-9;
* the commit protocol of Section 4.3: a transaction with outstanding commit
  dependencies **pseudo-commits** (it is complete from the user's point of
  view) and is durably committed once its node's out-degree drops to zero;
* retry of blocked requests whenever a transaction that issued a conflicting
  operation terminates.

A minimal example::

    from repro import Scheduler, ConflictPolicy
    from repro.adts import StackType

    scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
    scheduler.register_object("S", StackType())

    t1 = scheduler.begin()
    t2 = scheduler.begin()
    scheduler.perform(t1.tid, "S", "push", 4)
    scheduler.perform(t2.tid, "S", "push", 2)      # recoverable: runs at once
    scheduler.commit(t2.tid)                        # -> PSEUDO_COMMITTED
    scheduler.commit(t1.tid)                        # -> COMMITTED (and T2 too)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .compatibility import CompatibilitySpec, ConflictClass
from .dependency_graph import DependencyGraph, EdgeKind
from .errors import TransactionStateError, UnknownObjectError
from .history import ExecutionLog
from .object_manager import Classification, ObjectManager, PendingRequest
from .policy import ConflictPolicy
from .specification import Event, Invocation, TypeSpecification
from .transaction import Transaction, TransactionStatus

__all__ = [
    "RequestStatus",
    "RequestHandle",
    "SchedulerListener",
    "SchedulerStatistics",
    "AbortReason",
    "Scheduler",
]


class RequestStatus(enum.Enum):
    """Observable status of an operation request."""

    EXECUTED = "executed"
    BLOCKED = "blocked"
    ABORTED = "aborted"


class AbortReason(enum.Enum):
    """Why the scheduler aborted a transaction."""

    DEADLOCK = "deadlock"
    DEPENDENCY_CYCLE = "commit-dependency cycle"
    USER = "user abort"


@dataclass
class RequestHandle:
    """The caller-visible result of :meth:`Scheduler.perform`.

    A handle starts in the status the scheduler decided immediately
    (``EXECUTED``, ``BLOCKED``, or ``ABORTED``).  A blocked handle is updated
    in place when the request is granted or the transaction is later aborted,
    so callers (and the simulator) can poll or react through listeners.
    """

    transaction_id: int
    object_name: str
    invocation: Invocation
    status: Optional[RequestStatus] = None
    value: Any = None
    abort_reason: Optional[AbortReason] = None

    @property
    def executed(self) -> bool:
        return self.status is RequestStatus.EXECUTED

    @property
    def blocked(self) -> bool:
        return self.status is RequestStatus.BLOCKED

    @property
    def aborted(self) -> bool:
        return self.status is RequestStatus.ABORTED


class SchedulerListener:
    """Base class for observers of scheduler decisions.

    All hooks default to no-ops; subclasses override what they need.  Hooks
    must not call back into the scheduler synchronously (the simulator, for
    instance, reacts by scheduling future simulation events).
    """

    def on_executed(self, transaction_id: int, handle: RequestHandle, event: Event) -> None:
        """An operation request executed immediately."""

    def on_blocked(self, transaction_id: int, handle: RequestHandle) -> None:
        """An operation request conflicted and was queued."""

    def on_granted(self, transaction_id: int, handle: RequestHandle, event: Event) -> None:
        """A previously blocked request was granted and has now executed."""

    def on_aborted(self, transaction_id: int, reason: AbortReason) -> None:
        """A transaction was aborted (by the scheduler or the user)."""

    def on_pseudo_committed(self, transaction_id: int) -> None:
        """A transaction pseudo-committed (complete, awaiting dependencies)."""

    def on_committed(self, transaction_id: int) -> None:
        """A transaction durably committed."""


@dataclass
class SchedulerStatistics:
    """Counters matching the metrics of Section 5.4 (scheduler-side part)."""

    operations_executed: int = 0
    blocks: int = 0
    commits: int = 0
    pseudo_commits: int = 0
    aborts: int = 0
    deadlock_aborts: int = 0
    dependency_cycle_aborts: int = 0
    user_aborts: int = 0
    cycle_checks: int = 0
    #: Sum over aborted transactions of their operation count at abort time.
    abort_length_total: int = 0
    commit_dependency_edges: int = 0
    wait_for_edges: int = 0

    @property
    def average_abort_length(self) -> float:
        """The paper's *abort length* metric (0.0 when nothing aborted)."""
        if not self.aborts:
            return 0.0
        return self.abort_length_total / self.aborts


class Scheduler:
    """Recoverability-based concurrency control over a set of shared objects."""

    def __init__(
        self,
        policy: ConflictPolicy = ConflictPolicy.RECOVERABILITY,
        fair: bool = True,
        record_history: bool = True,
        retain_terminated: bool = True,
    ):
        self.policy = policy
        self.fair = fair
        #: When ``False``, records of committed/aborted transactions are
        #: dropped from :attr:`transactions` as soon as they terminate.  The
        #: simulator uses this to keep memory flat over very long runs.
        self.retain_terminated = retain_terminated
        self.graph = DependencyGraph()
        self.objects: Dict[str, ObjectManager] = {}
        self.transactions: Dict[int, Transaction] = {}
        self.stats = SchedulerStatistics()
        self.history: Optional[ExecutionLog] = ExecutionLog() if record_history else None
        self._listeners: List[SchedulerListener] = []
        self._next_tid = 0
        self._sequence = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def register_object(
        self,
        name: str,
        spec: TypeSpecification,
        compatibility: Optional[CompatibilitySpec] = None,
        initial_state: Any = None,
        materialize_state: bool = True,
    ) -> ObjectManager:
        """Register a shared object managed by this scheduler."""
        manager = ObjectManager(
            name=name,
            spec=spec,
            compatibility=compatibility,
            initial_state=initial_state,
            materialize_state=materialize_state,
        )
        self.objects[name] = manager
        return manager

    def object(self, name: str) -> ObjectManager:
        """Return the object manager for ``name``."""
        try:
            return self.objects[name]
        except KeyError:
            raise UnknownObjectError(name) from None

    def add_listener(self, listener: SchedulerListener) -> None:
        """Subscribe a listener to scheduler decisions."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self, label: Optional[str] = None) -> Transaction:
        """Start a new transaction and return its record."""
        self._next_tid += 1
        transaction = Transaction(tid=self._next_tid, label=label)
        self.transactions[transaction.tid] = transaction
        self.graph.add_node(transaction.tid)
        return transaction

    def transaction(self, transaction_id: int) -> Transaction:
        """Return the record of an existing transaction."""
        try:
            return self.transactions[transaction_id]
        except KeyError:
            raise TransactionStateError(f"unknown transaction {transaction_id}") from None

    def live_transactions(self) -> List[Transaction]:
        """Transactions whose operations still participate in conflicts."""
        return [t for t in self.transactions.values() if t.status.is_live]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def perform(self, transaction_id: int, object_name: str, op: str, *args: Any) -> RequestHandle:
        """Request execution of ``op(*args)`` on ``object_name``.

        Returns a :class:`RequestHandle` whose status is ``EXECUTED`` (value
        available), ``BLOCKED`` (queued; will be granted or aborted later), or
        ``ABORTED`` (the request would have closed a dependency cycle and the
        transaction was aborted).
        """
        return self.submit(transaction_id, object_name, Invocation(op, tuple(args)))

    def submit(
        self, transaction_id: int, object_name: str, invocation: Invocation
    ) -> RequestHandle:
        """Like :meth:`perform` but takes a prebuilt :class:`Invocation`."""
        transaction = self.transaction(transaction_id)
        transaction.require(TransactionStatus.ACTIVE)
        manager = self.object(object_name)
        handle = RequestHandle(
            transaction_id=transaction_id,
            object_name=object_name,
            invocation=invocation,
        )
        self._admit(transaction, manager, handle, from_queue=False)
        return handle

    # ------------------------------------------------------------------
    # Admission (Figure 2)
    # ------------------------------------------------------------------
    def _admit(
        self,
        transaction: Transaction,
        manager: ObjectManager,
        handle: RequestHandle,
        from_queue: bool,
    ) -> None:
        invocation = handle.invocation
        if from_queue:
            # The request is leaving the blocked queue: its wait-for edges
            # described the old conflict set and must not linger (they would
            # cause spurious deadlock aborts later).
            self.graph.remove_edges_from(transaction.tid, EdgeKind.WAIT_FOR)
        classification = manager.classify_request(invocation, transaction.tid, self.policy)
        conflicting = set(classification.conflicting)
        if self.fair and not from_queue:
            conflicting |= manager.blocked_conflicts(invocation, transaction.tid, self.policy)

        if conflicting:
            self._block(transaction, manager, handle, conflicting)
            return

        if classification.recoverable:
            self.stats.cycle_checks += 1
            transaction.cycle_checks += 1
            if self.graph.creates_cycle(transaction.tid, classification.recoverable):
                self._abort_internal(transaction, AbortReason.DEPENDENCY_CYCLE, handle)
                return
            self.graph.add_edges(
                transaction.tid, classification.recoverable, EdgeKind.COMMIT_DEPENDENCY
            )
            self.stats.commit_dependency_edges += len(classification.recoverable)

        self._execute(transaction, manager, handle, from_queue=from_queue)

    def _block(
        self,
        transaction: Transaction,
        manager: ObjectManager,
        handle: RequestHandle,
        conflicting: Set[int],
    ) -> None:
        """Step 1 of Figure 2: wait-for edges, deadlock check, then wait."""
        self.stats.cycle_checks += 1
        transaction.cycle_checks += 1
        if self.graph.creates_cycle(transaction.tid, conflicting):
            self._abort_internal(transaction, AbortReason.DEADLOCK, handle)
            return
        self.graph.add_edges(transaction.tid, conflicting, EdgeKind.WAIT_FOR)
        self.stats.wait_for_edges += len(conflicting)
        transaction.status = TransactionStatus.BLOCKED
        transaction.blocks += 1
        self.stats.blocks += 1
        handle.status = RequestStatus.BLOCKED
        manager.enqueue_blocked(
            PendingRequest(
                transaction_id=transaction.tid, invocation=handle.invocation, payload=handle
            )
        )
        for listener in self._listeners:
            listener.on_blocked(transaction.tid, handle)

    def _execute(
        self,
        transaction: Transaction,
        manager: ObjectManager,
        handle: RequestHandle,
        from_queue: bool,
    ) -> None:
        self._sequence += 1
        event = manager.execute(handle.invocation, transaction.tid, self._sequence)
        if self.history is not None:
            self.history.append_event(event)
        transaction.record_event(event)
        transaction.status = TransactionStatus.ACTIVE
        handle.status = RequestStatus.EXECUTED
        handle.value = event.value
        self.stats.operations_executed += 1
        for listener in self._listeners:
            if from_queue:
                listener.on_granted(transaction.tid, handle, event)
            else:
                listener.on_executed(transaction.tid, handle, event)
        self._refresh_waiters_after_execute(manager, event)

    def _refresh_waiters_after_execute(self, manager: ObjectManager, event: Event) -> None:
        """Keep blocked transactions' wait-for edges complete.

        Every blocked request must hold wait-for edges to *all* transactions
        with conflicting uncommitted operations, otherwise a deadlock can go
        undetected.  When a new operation executes (either under unfair
        scheduling or because a queued request was granted ahead of others),
        blocked requests that conflict with it gain an edge to the executor;
        if that edge closes a cycle the blocked transaction is the victim.
        """
        if not manager.blocked:
            return
        for pending in list(manager.blocked):
            if pending.transaction_id == event.transaction_id:
                continue
            waiter = self.transactions.get(pending.transaction_id)
            if waiter is None or waiter.status is not TransactionStatus.BLOCKED:
                continue
            pairwise = manager.classify_pair(pending.invocation, event.invocation, self.policy)
            if pairwise is not ConflictClass.CONFLICT:
                continue
            if self.graph.has_edge(waiter.tid, event.transaction_id, EdgeKind.WAIT_FOR):
                continue
            self.stats.cycle_checks += 1
            waiter.cycle_checks += 1
            if self.graph.creates_cycle(waiter.tid, {event.transaction_id}):
                self._abort_internal(waiter, AbortReason.DEADLOCK, handle=None)
                continue
            self.graph.add_edge(waiter.tid, event.transaction_id, EdgeKind.WAIT_FOR)
            self.stats.wait_for_edges += 1

    # ------------------------------------------------------------------
    # Commit protocol (Section 4.3)
    # ------------------------------------------------------------------
    def commit(self, transaction_id: int) -> TransactionStatus:
        """Attempt to commit a transaction.

        Returns ``COMMITTED`` when the transaction had no outstanding commit
        dependencies, or ``PSEUDO_COMMITTED`` when it must wait for the
        transactions it depends on to terminate first.  A blocked transaction
        cannot commit (its last request has not executed).
        """
        transaction = self.transaction(transaction_id)
        transaction.require(TransactionStatus.ACTIVE)
        if self.graph.out_degree(transaction_id) > 0:
            transaction.status = TransactionStatus.PSEUDO_COMMITTED
            self.stats.pseudo_commits += 1
            if self.history is not None:
                self.history.append_pseudo_commit(transaction_id)
            for listener in self._listeners:
                listener.on_pseudo_committed(transaction_id)
            return TransactionStatus.PSEUDO_COMMITTED
        self._finalize_commit(transaction)
        return TransactionStatus.COMMITTED

    def _finalize_commit(self, transaction: Transaction) -> None:
        """Durably commit a transaction whose dependencies have all terminated."""
        for object_name in transaction.objects_visited:
            self.objects[object_name].remove_transaction(transaction.tid, commit=True)
        transaction.status = TransactionStatus.COMMITTED
        self.stats.commits += 1
        if self.history is not None:
            self.history.append_commit(transaction.tid)
        for listener in self._listeners:
            listener.on_committed(transaction.tid)
        self._after_termination(transaction)

    # ------------------------------------------------------------------
    # Abort
    # ------------------------------------------------------------------
    def abort(self, transaction_id: int, reason: AbortReason = AbortReason.USER) -> None:
        """Abort an active or blocked transaction and undo its operations."""
        transaction = self.transaction(transaction_id)
        transaction.require(TransactionStatus.ACTIVE, TransactionStatus.BLOCKED)
        self._abort_internal(transaction, reason, handle=None)

    def _abort_internal(
        self,
        transaction: Transaction,
        reason: AbortReason,
        handle: Optional[RequestHandle],
    ) -> None:
        self.stats.aborts += 1
        if reason is AbortReason.DEADLOCK:
            self.stats.deadlock_aborts += 1
        elif reason is AbortReason.DEPENDENCY_CYCLE:
            self.stats.dependency_cycle_aborts += 1
        else:
            self.stats.user_aborts += 1
        self.stats.abort_length_total += transaction.operation_count

        # Undo: delete the transaction's operations from every object log and
        # drop any request it still has queued.  Objects where a queued
        # request was dropped must also be retried: under fair scheduling
        # other transactions may be waiting behind that request even though
        # the aborted transaction never executed anything on the object.
        retry_objects = set(transaction.objects_visited)
        for manager in self.objects.values():
            removed_pending = manager.remove_blocked_of(transaction.tid)
            if removed_pending:
                retry_objects.add(manager.name)
            for pending in removed_pending:
                pending_handle = pending.payload
                if isinstance(pending_handle, RequestHandle):
                    pending_handle.status = RequestStatus.ABORTED
                    pending_handle.abort_reason = reason
        for object_name in transaction.objects_visited:
            self.objects[object_name].remove_transaction(transaction.tid, commit=False)

        transaction.status = TransactionStatus.ABORTED
        if handle is not None:
            handle.status = RequestStatus.ABORTED
            handle.abort_reason = reason
        if self.history is not None:
            self.history.append_abort(transaction.tid)
        for listener in self._listeners:
            listener.on_aborted(transaction.tid, reason)
        self._after_termination(transaction, retry_objects=retry_objects)

    # ------------------------------------------------------------------
    # Termination bookkeeping
    # ------------------------------------------------------------------
    def _after_termination(
        self, transaction: Transaction, retry_objects: Optional[Set[str]] = None
    ) -> None:
        """Node removal, cascaded commits of pseudo-committed transactions,
        and retry of blocked requests (Sections 4.2-4.3)."""
        former_predecessors = self.graph.remove_node(transaction.tid)

        # Only transactions that pointed at the removed node can have dropped
        # to out-degree zero; committing one of them recurses back here, which
        # handles arbitrarily long commit-dependency chains.
        for predecessor_id in sorted(former_predecessors):
            candidate = self.transactions.get(predecessor_id)
            if candidate is None:
                continue
            if candidate.status is not TransactionStatus.PSEUDO_COMMITTED:
                continue
            if self.graph.out_degree(candidate.tid) == 0:
                self._finalize_commit(candidate)

        # Retry blocked requests on the objects the terminated transaction
        # visited (its departure may have removed the conflicts), plus any
        # objects where it had a queued request dropped.
        if retry_objects is None:
            retry_objects = set(transaction.objects_visited)
        for object_name in sorted(retry_objects):
            manager = self.objects.get(object_name)
            if manager is not None:
                self._retry_blocked(manager)

        if not self.retain_terminated:
            self.transactions.pop(transaction.tid, None)

    def _retry_blocked(self, manager: ObjectManager) -> None:
        """Grant queued requests that no longer conflict, preserving fairness."""
        progressed = True
        while progressed:
            progressed = False
            for index, pending in enumerate(list(manager.blocked)):
                transaction = self.transactions.get(pending.transaction_id)
                if transaction is None or transaction.status is not TransactionStatus.BLOCKED:
                    manager.blocked.remove(pending)
                    progressed = True
                    break
                classification = manager.classify_request(
                    pending.invocation, pending.transaction_id, self.policy
                )
                ahead_owners: Set[int] = set()
                if self.fair:
                    ahead_owners = manager.blocked_conflicts(
                        pending.invocation, pending.transaction_id, self.policy, upto=index
                    )
                if classification.conflicting or ahead_owners:
                    # Still blocked: make sure its wait-for edges describe the
                    # *current* conflict set, otherwise a deadlock formed since
                    # the original block could go undetected.
                    if self._refresh_wait_edges(
                        transaction, classification.conflicting | ahead_owners
                    ):
                        # The refresh found a cycle and aborted the waiter.
                        progressed = True
                        break
                    continue
                manager.blocked.remove(pending)
                handle = pending.payload
                if not isinstance(handle, RequestHandle):
                    handle = RequestHandle(
                        transaction_id=pending.transaction_id,
                        object_name=manager.name,
                        invocation=pending.invocation,
                        status=RequestStatus.BLOCKED,
                    )
                self._admit(transaction, manager, handle, from_queue=True)
                progressed = True
                break

    def _refresh_wait_edges(self, transaction: Transaction, conflicting: Set[int]) -> bool:
        """Re-point a blocked transaction's wait-for edges at ``conflicting``.

        Returns ``True`` if doing so would close a cycle, in which case the
        waiter is aborted (deadlock victim) and the caller should rescan.
        """
        current = self.waiting_for(transaction.tid)
        if current == conflicting:
            return False
        self.graph.remove_edges_from(transaction.tid, EdgeKind.WAIT_FOR)
        self.stats.cycle_checks += 1
        transaction.cycle_checks += 1
        if self.graph.creates_cycle(transaction.tid, conflicting):
            self._abort_internal(transaction, AbortReason.DEADLOCK, handle=None)
            return True
        self.graph.add_edges(transaction.tid, conflicting, EdgeKind.WAIT_FOR)
        return False

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def commit_dependencies(self, transaction_id: int) -> Set[int]:
        """Transactions that ``transaction_id`` must commit after."""
        return {
            target
            for target in self.graph.successors(transaction_id)
            if self.graph.has_edge(transaction_id, target, EdgeKind.COMMIT_DEPENDENCY)
        }

    def waiting_for(self, transaction_id: int) -> Set[int]:
        """Transactions that ``transaction_id`` is blocked behind."""
        return {
            target
            for target in self.graph.successors(transaction_id)
            if self.graph.has_edge(transaction_id, target, EdgeKind.WAIT_FOR)
        }

    def object_state(self, name: str) -> Any:
        """The currently visible state of an object (committed + uncommitted)."""
        return self.object(name).current_state

    def committed_state(self, name: str) -> Any:
        """The committed state of an object (effects of committed transactions only)."""
        return self.object(name).committed_state
