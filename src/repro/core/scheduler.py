"""The concurrency-control scheduler (Sections 4.2-4.3).

The :class:`Scheduler` is the public entry point of the library.  It owns one
:class:`~repro.core.object_manager.ObjectManager` per registered object, the
unified :class:`~repro.core.dependency_graph.DependencyGraph`, and the
transaction table — the machinery *every* concurrency-control protocol needs —
and delegates the protocol decisions (execute/block/abort, commit now or
pseudo-commit, retry after a termination) to a pluggable
:class:`~repro.core.backends.ConcurrencyControlBackend`:

* the default :class:`~repro.core.backends.SemanticBackend` implements the
  paper's recoverability/commutativity protocol: the operation-admission
  algorithm of Figure 2, *fair scheduling* (Section 5.2), and the commit
  protocol of Section 4.3 with pseudo-commit and cascaded durable commits;
* :class:`~repro.core.backends.TwoPhaseLockingBackend` implements the
  classical page-level strict-2PL baseline the paper compares against, and is
  selected with ``ConflictPolicy.TWO_PHASE_LOCKING`` (or by passing a backend
  instance directly).

A minimal example::

    from repro import Scheduler, ConflictPolicy
    from repro.adts import StackType

    scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
    scheduler.register_object("S", StackType())

    t1 = scheduler.begin()
    t2 = scheduler.begin()
    scheduler.perform(t1.tid, "S", "push", 4)
    scheduler.perform(t2.tid, "S", "push", 2)      # recoverable: runs at once
    scheduler.commit(t2.tid)                        # -> PSEUDO_COMMITTED
    scheduler.commit(t1.tid)                        # -> COMMITTED (and T2 too)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from .backends import ConcurrencyControlBackend, make_backend
from .compatibility import CompatibilitySpec
from .dependency_graph import DependencyGraph, EdgeKind
from .errors import TransactionStateError, UnknownObjectError
from .history import ExecutionLog
from .object_manager import ObjectManager, PendingRequest
from .policy import ConflictPolicy
from .pool import ObjectPool
from .requests import AbortReason, RequestHandle, RequestStatus
from .specification import Event, Invocation, TypeSpecification
from .transaction import Transaction, TransactionStatus

__all__ = [
    "RequestStatus",
    "RequestHandle",
    "SchedulerListener",
    "SchedulerStatistics",
    "AbortReason",
    "Scheduler",
]


class SchedulerListener:
    """Base class for observers of scheduler decisions.

    All hooks default to no-ops; subclasses override what they need.  Hooks
    must not call back into the scheduler synchronously (the simulator, for
    instance, reacts by scheduling future simulation events).
    """

    def on_executed(self, transaction_id: int, handle: RequestHandle, event: Event) -> None:
        """An operation request executed immediately."""

    def on_blocked(self, transaction_id: int, handle: RequestHandle) -> None:
        """An operation request conflicted and was queued."""

    def on_granted(self, transaction_id: int, handle: RequestHandle, event: Event) -> None:
        """A previously blocked request was granted and has now executed."""

    def on_aborted(self, transaction_id: int, reason: AbortReason) -> None:
        """A transaction was aborted (by the scheduler or the user)."""

    def on_pseudo_committed(self, transaction_id: int) -> None:
        """A transaction pseudo-committed (complete, awaiting dependencies)."""

    def on_committed(self, transaction_id: int) -> None:
        """A transaction durably committed."""


@dataclass
class SchedulerStatistics:
    """Counters matching the metrics of Section 5.4 (scheduler-side part)."""

    operations_executed: int = 0
    blocks: int = 0
    commits: int = 0
    pseudo_commits: int = 0
    aborts: int = 0
    deadlock_aborts: int = 0
    dependency_cycle_aborts: int = 0
    user_aborts: int = 0
    #: Aborts forced by the multi-site layer (site failure/unavailability).
    site_aborts: int = 0
    cycle_checks: int = 0
    #: Sum over aborted transactions of their operation count at abort time.
    abort_length_total: int = 0
    commit_dependency_edges: int = 0
    wait_for_edges: int = 0

    @property
    def average_abort_length(self) -> float:
        """The paper's *abort length* metric (0.0 when nothing aborted)."""
        if not self.aborts:
            return 0.0
        return self.abort_length_total / self.aborts

    def as_dict(self) -> Dict[str, int]:
        """Every counter by name.

        The explicit field list (rather than ``dataclasses.asdict``) is what
        ``repro lint`` REP006 checks: a counter incremented somewhere but
        missing here would be silently lost from the measurement snapshot.
        """
        return {
            "operations_executed": self.operations_executed,
            "blocks": self.blocks,
            "commits": self.commits,
            "pseudo_commits": self.pseudo_commits,
            "aborts": self.aborts,
            "deadlock_aborts": self.deadlock_aborts,
            "dependency_cycle_aborts": self.dependency_cycle_aborts,
            "user_aborts": self.user_aborts,
            "site_aborts": self.site_aborts,
            "cycle_checks": self.cycle_checks,
            "abort_length_total": self.abort_length_total,
            "commit_dependency_edges": self.commit_dependency_edges,
            "wait_for_edges": self.wait_for_edges,
        }


class Scheduler:
    """Concurrency control over a set of shared objects.

    The protocol is chosen by ``policy`` (which selects the matching backend)
    or overridden outright by passing a ``backend`` instance.
    """

    #: Listener hooks dispatched through per-hook lists (see add_listener).
    _HOOKS = (
        "on_executed",
        "on_blocked",
        "on_granted",
        "on_aborted",
        "on_pseudo_committed",
        "on_committed",
    )

    def __init__(
        self,
        policy: ConflictPolicy = ConflictPolicy.RECOVERABILITY,
        fair: bool = True,
        record_history: bool = True,
        retain_terminated: bool = True,
        backend: Optional[ConcurrencyControlBackend] = None,
        fuse_submit: bool = True,
        pool_requests: bool = False,
    ):
        self.policy = policy
        self.fair = fair
        #: When ``True``, :class:`RequestHandle` and ``PendingRequest``
        #: instances are retired to freelists at transaction finish and
        #: reused by later submits (generation counters make a stale
        #: reference a loud :class:`~repro.core.errors.StaleHandleError`).
        #: The freelists survive :meth:`reset`, so reset()-reuse across
        #: experiment sweep points recycles across runs too.
        self.pool_requests = pool_requests
        self.handle_pool: ObjectPool[RequestHandle] = ObjectPool()
        self.pending_pool: ObjectPool[PendingRequest] = ObjectPool()
        #: When ``False``, records of committed/aborted transactions are
        #: dropped from :attr:`transactions` as soon as they terminate.  The
        #: simulator uses this to keep memory flat over very long runs.
        self.retain_terminated = retain_terminated
        self.graph = DependencyGraph()
        self.objects: Dict[str, ObjectManager] = {}
        self.transactions: Dict[int, Transaction] = {}
        self.stats = SchedulerStatistics()
        self.history: Optional[ExecutionLog] = ExecutionLog() if record_history else None
        self.backend = backend if backend is not None else make_backend(policy)
        self.backend.attach(self)
        self._listeners: List[SchedulerListener] = []
        #: Per-hook dispatch lists: bound methods of the listeners that
        #: actually override each hook, so firing an unobserved hook costs
        #: nothing (the common case — most listeners watch 2-3 hooks).
        self._on_executed: List[Callable[[int, RequestHandle, Event], None]] = []
        self._on_blocked: List[Callable[[int, RequestHandle], None]] = []
        self._on_granted: List[Callable[[int, RequestHandle, Event], None]] = []
        self._on_aborted: List[Callable[[int, AbortReason], None]] = []
        self._on_pseudo_committed: List[Callable[[int], None]] = []
        self._on_committed: List[Callable[[int], None]] = []
        #: Objects that may have a non-empty blocked queue (an
        #: over-approximation, pruned as queues drain): terminations wake
        #: exactly the candidate objects instead of rescanning every queue.
        self._blocked_objects: Dict[str, ObjectManager] = {}
        self._next_tid = 0
        self._sequence = 0
        if fuse_submit:
            # The backend may compile a fused fast path with submit's exact
            # semantics; binding it as an instance attribute shadows the
            # method.  The closure reads all scheduler state dynamically, so
            # reset() and register_object() never invalidate it.
            fast = self.backend.compile_submit()
            if fast is not None:
                self.submit = fast  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def register_object(
        self,
        name: str,
        spec: TypeSpecification,
        compatibility: Optional[CompatibilitySpec] = None,
        initial_state: Any = None,
        materialize_state: bool = True,
    ) -> ObjectManager:
        """Register a shared object managed by this scheduler."""
        manager = ObjectManager(
            name=name,
            spec=spec,
            compatibility=compatibility,
            initial_state=initial_state,
            materialize_state=materialize_state,
        )
        self.objects[name] = manager
        return manager

    def object(self, name: str) -> ObjectManager:
        """Return the object manager for ``name``."""
        try:
            return self.objects[name]
        except KeyError:
            raise UnknownObjectError(name) from None

    def add_listener(self, listener: SchedulerListener) -> None:
        """Subscribe a listener to scheduler decisions.

        Dispatch is per hook: a listener's bound method is registered only
        for the hooks its class overrides, so notification loops skip
        listeners that would no-op.  Relative order among listeners is
        preserved within every hook.
        """
        self._listeners.append(listener)
        listener_type = type(listener)
        for hook in self._HOOKS:
            if getattr(listener_type, hook) is not getattr(SchedulerListener, hook):
                getattr(self, "_" + hook).append(getattr(listener, hook))

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self, label: Optional[str] = None) -> Transaction:
        """Start a new transaction and return its record."""
        self._next_tid += 1
        transaction = Transaction(tid=self._next_tid, label=label)
        self.transactions[transaction.tid] = transaction
        self.graph.add_node(transaction.tid)
        return transaction

    def transaction(self, transaction_id: int) -> Transaction:
        """Return the record of an existing transaction."""
        try:
            return self.transactions[transaction_id]
        except KeyError:
            raise TransactionStateError(f"unknown transaction {transaction_id}") from None

    def live_transactions(self) -> List[Transaction]:
        """Transactions whose operations still participate in conflicts."""
        return [t for t in self.transactions.values() if t.status.is_live]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def perform(self, transaction_id: int, object_name: str, op: str, *args: Any) -> RequestHandle:
        """Request execution of ``op(*args)`` on ``object_name``.

        Returns a :class:`RequestHandle` whose status is ``EXECUTED`` (value
        available), ``BLOCKED`` (queued; will be granted or aborted later), or
        ``ABORTED`` (the request would have closed a dependency cycle and the
        transaction was aborted).
        """
        return self.submit(transaction_id, object_name, Invocation(op, tuple(args)))

    def submit(
        self, transaction_id: int, object_name: str, invocation: Invocation
    ) -> RequestHandle:
        """Like :meth:`perform` but takes a prebuilt :class:`Invocation`."""
        transaction = self.transactions.get(transaction_id)
        if transaction is None:
            raise TransactionStateError(f"unknown transaction {transaction_id}")
        if transaction.status is not TransactionStatus.ACTIVE:
            transaction.require(TransactionStatus.ACTIVE)
        manager = self.objects.get(object_name)
        if manager is None:
            raise UnknownObjectError(object_name)
        if self.pool_requests:
            handle = self.acquire_handle(transaction_id, object_name, invocation)
            self.backend.admit(transaction, manager, handle, from_queue=False)
            # Track after admit: if admit aborted the transaction, its other
            # handles were already retired and this one must stay live for
            # the caller to observe the ABORTED status (it is simply never
            # pooled — the rare abort-on-submit path leaks one box to GC).
            handles = transaction.handles
            if handles is None:
                handles = transaction.handles = []
            handles.append(handle)
            return handle
        handle = RequestHandle(
            transaction_id=transaction_id,
            object_name=object_name,
            invocation=invocation,
        )
        self.backend.admit(transaction, manager, handle, from_queue=False)
        return handle

    def acquire_handle(
        self, transaction_id: int, object_name: str, invocation: Invocation
    ) -> RequestHandle:
        """Pop a recycled :class:`RequestHandle` (or construct the first one).

        The reused handle is reinitialised field by field to exactly the
        state a fresh construction would have — ``generation`` excepted,
        which keeps counting up for staleness detection.
        """
        pool = self.handle_pool
        if pool.free:
            pool.reused += 1
            handle = pool.free.pop()
            handle.transaction_id = transaction_id
            handle.object_name = object_name
            handle.invocation = invocation
            handle.status = None
            # value and abort_reason were cleared by retire().
            return handle
        pool.created += 1
        return RequestHandle(
            transaction_id=transaction_id,
            object_name=object_name,
            invocation=invocation,
        )

    # ------------------------------------------------------------------
    # Shared machinery used by the backends
    # ------------------------------------------------------------------
    def block_request(
        self,
        transaction: Transaction,
        manager: ObjectManager,
        handle: RequestHandle,
        conflicting: Set[int],
    ) -> None:
        """Block a request: wait-for edges, deadlock check, then wait."""
        self.stats.cycle_checks += 1
        transaction.cycle_checks += 1
        if self.graph.creates_cycle(transaction.tid, conflicting):
            self.backend.abort(transaction, AbortReason.DEADLOCK, handle)
            return
        self.graph.add_edges(transaction.tid, conflicting, EdgeKind.WAIT_FOR)
        self.stats.wait_for_edges += len(conflicting)
        transaction.status = TransactionStatus.BLOCKED
        transaction.blocks += 1
        self.stats.blocks += 1
        handle.status = RequestStatus.BLOCKED
        if self.pool_requests:
            pool = self.pending_pool
            if pool.free:
                pool.reused += 1
                pending = pool.free.pop()
                pending.transaction_id = transaction.tid
                pending.invocation = handle.invocation
                pending.payload = handle
                # op_id/param were reset by retire(); enqueue_blocked re-stamps.
            else:
                pool.created += 1
                pending = PendingRequest(
                    transaction_id=transaction.tid,
                    invocation=handle.invocation,
                    payload=handle,
                )
        else:
            pending = PendingRequest(
                transaction_id=transaction.tid, invocation=handle.invocation, payload=handle
            )
        manager.enqueue_blocked(pending)
        self._blocked_objects[manager.name] = manager
        transaction.blocked_at.add(manager.name)
        for on_blocked in self._on_blocked:
            on_blocked(transaction.tid, handle)

    def execute_operation(
        self,
        transaction: Transaction,
        manager: ObjectManager,
        handle: RequestHandle,
        from_queue: bool,
    ) -> Event:
        """Execute an admitted request and publish the result."""
        self._sequence += 1
        event = manager.execute(handle.invocation, transaction.tid, self._sequence)
        if self.history is not None:
            self.history.append_event(event)
        transaction.record_event(event)
        transaction.status = TransactionStatus.ACTIVE
        handle.status = RequestStatus.EXECUTED
        handle.value = event.value
        self.stats.operations_executed += 1
        if from_queue:
            for on_granted in self._on_granted:
                on_granted(transaction.tid, handle, event)
        else:
            for on_executed in self._on_executed:
                on_executed(transaction.tid, handle, event)
        self.backend.after_execute(manager, event)
        return event

    def refresh_wait_edges(self, transaction: Transaction, conflicting: Set[int]) -> bool:
        """Re-point a blocked transaction's wait-for edges at ``conflicting``.

        Returns ``True`` if doing so would close a cycle, in which case the
        waiter is aborted (deadlock victim) and the caller should rescan.
        """
        current = self.waiting_for(transaction.tid)
        if current == conflicting:
            return False
        self.graph.remove_edges_from(transaction.tid, EdgeKind.WAIT_FOR)
        self.stats.cycle_checks += 1
        transaction.cycle_checks += 1
        if self.graph.creates_cycle(transaction.tid, conflicting):
            self.backend.abort(transaction, AbortReason.DEADLOCK)
            return True
        self.graph.add_edges(transaction.tid, conflicting, EdgeKind.WAIT_FOR)
        return False

    def retry_blocked(self, manager: ObjectManager) -> None:
        """Grant queued requests that no longer conflict, preserving fairness."""
        progressed = True
        while progressed:
            progressed = False
            # Snapshot the queue binding per pass: up to the first mutating
            # outcome (stale drop, deadlock abort, grant — each breaks out of
            # the loop) it is the live queue, so ``del queue[index]`` removes
            # exactly the entry under the cursor.  Removal by position, not
            # by value: PendingRequest compares by fields, so ``remove()``
            # could drop an earlier equal entry and starve this one.
            queue = manager.blocked
            for index, pending in enumerate(queue):
                transaction = self.transactions.get(pending.transaction_id)
                if transaction is None or transaction.status is not TransactionStatus.BLOCKED:
                    del queue[index]
                    if transaction is not None:
                        transaction.blocked_at.discard(manager.name)
                    if self.pool_requests:
                        pending.retire()
                        self.pending_pool.release(pending)
                    progressed = True
                    break
                conflicting = self.backend.blocking_conflicts(
                    manager, pending.invocation, pending.transaction_id, upto=index
                )
                if conflicting:
                    # Still blocked: make sure its wait-for edges describe the
                    # *current* conflict set, otherwise a deadlock formed since
                    # the original block could go undetected.
                    if self.refresh_wait_edges(transaction, conflicting):
                        # The refresh found a cycle and aborted the waiter.
                        progressed = True
                        break
                    continue
                del queue[index]
                transaction.blocked_at.discard(manager.name)
                handle = pending.payload
                if not isinstance(handle, RequestHandle):
                    handle = RequestHandle(
                        transaction_id=pending.transaction_id,
                        object_name=manager.name,
                        invocation=pending.invocation,
                        status=RequestStatus.BLOCKED,
                    )
                if self.pool_requests:
                    pending.retire()
                    self.pending_pool.release(pending)
                self.backend.admit(transaction, manager, handle, from_queue=True)
                progressed = True
                break
        if not manager.blocked:
            self._blocked_objects.pop(manager.name, None)

    # ------------------------------------------------------------------
    # Reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the scheduler to its just-constructed state.

        Everything expensive to build survives: the registered object
        managers (with their compiled policy tables), the backend and its
        fused submit binding, and the listener subscriptions.  Every piece of
        per-run state — transactions, dependency graph, statistics, history,
        blocked queues, tid/sequence counters — goes back to its initial
        value, so a seeded run on a reset scheduler is bit-identical to one
        on a freshly constructed scheduler.
        """
        self.graph = DependencyGraph()
        for manager in self.objects.values():
            manager.reset()
        self.transactions.clear()
        self.stats = SchedulerStatistics()
        if self.history is not None:
            self.history = ExecutionLog()
        self._blocked_objects.clear()
        self._next_tid = 0
        self._sequence = 0
        self.backend.reset()

    # ------------------------------------------------------------------
    # Commit protocol
    # ------------------------------------------------------------------
    def commit(self, transaction_id: int) -> TransactionStatus:
        """Attempt to commit a transaction.

        Returns ``COMMITTED`` when the backend could commit immediately, or
        ``PSEUDO_COMMITTED`` when the transaction must wait for the
        transactions it depends on to terminate first (semantic backend
        only).  A blocked transaction cannot commit (its last request has not
        executed).
        """
        transaction = self.transaction(transaction_id)
        transaction.require(TransactionStatus.ACTIVE)
        return self.backend.commit(transaction)

    def record_pseudo_commit(self, transaction: Transaction) -> TransactionStatus:
        """Mark a transaction pseudo-committed and notify listeners."""
        transaction.status = TransactionStatus.PSEUDO_COMMITTED
        self.stats.pseudo_commits += 1
        if self.history is not None:
            self.history.append_pseudo_commit(transaction.tid)
        for on_pseudo_committed in self._on_pseudo_committed:
            on_pseudo_committed(transaction.tid)
        return TransactionStatus.PSEUDO_COMMITTED

    def finalize_commit(self, transaction: Transaction) -> None:
        """Durably commit a transaction whose dependencies have all terminated."""
        for object_name in transaction.objects_visited:
            self.objects[object_name].remove_transaction(transaction.tid, commit=True)
        transaction.status = TransactionStatus.COMMITTED
        self.stats.commits += 1
        if self.history is not None:
            self.history.append_commit(transaction.tid)
        for on_committed in self._on_committed:
            on_committed(transaction.tid)
        self._after_termination(transaction)

    # ------------------------------------------------------------------
    # Abort
    # ------------------------------------------------------------------
    def abort(self, transaction_id: int, reason: AbortReason = AbortReason.USER) -> None:
        """Abort an active or blocked transaction and undo its operations."""
        transaction = self.transaction(transaction_id)
        transaction.require(TransactionStatus.ACTIVE, TransactionStatus.BLOCKED)
        self.backend.abort(transaction, reason)

    def internal_abort(
        self,
        transaction: Transaction,
        reason: AbortReason,
        handle: Optional[RequestHandle] = None,
    ) -> None:
        """Shared abort bookkeeping (invoked through the backend)."""
        self.stats.aborts += 1
        if reason is AbortReason.DEADLOCK:
            self.stats.deadlock_aborts += 1
        elif reason is AbortReason.DEPENDENCY_CYCLE:
            self.stats.dependency_cycle_aborts += 1
        elif reason in (AbortReason.SITE_FAILURE, AbortReason.SITE_UNAVAILABLE):
            self.stats.site_aborts += 1
        else:
            self.stats.user_aborts += 1
        self.stats.abort_length_total += transaction.operation_count

        # Undo: delete the transaction's operations from every object log and
        # drop any request it still has queued.  Objects where a queued
        # request was dropped must also be retried: under fair scheduling
        # other transactions may be waiting behind that request even though
        # the aborted transaction never executed anything on the object.
        retry_objects = set(transaction.objects_visited)
        for object_name in sorted(transaction.blocked_at):
            manager = self.objects.get(object_name)
            if manager is None:
                continue
            removed_pending = manager.remove_blocked_of(transaction.tid)
            if removed_pending:
                retry_objects.add(manager.name)
                if not manager.blocked:
                    self._blocked_objects.pop(object_name, None)
            for pending in removed_pending:
                pending_handle = pending.payload
                if isinstance(pending_handle, RequestHandle):
                    pending_handle.status = RequestStatus.ABORTED
                    pending_handle.abort_reason = reason
                if self.pool_requests:
                    pending.retire()
                    self.pending_pool.release(pending)
        transaction.blocked_at.clear()
        for object_name in transaction.objects_visited:
            self.objects[object_name].remove_transaction(transaction.tid, commit=False)

        transaction.status = TransactionStatus.ABORTED
        if handle is not None:
            handle.status = RequestStatus.ABORTED
            handle.abort_reason = reason
        if self.history is not None:
            self.history.append_abort(transaction.tid)
        for on_aborted in self._on_aborted:
            on_aborted(transaction.tid, reason)
        self._after_termination(transaction, retry_objects=retry_objects)

    # ------------------------------------------------------------------
    # Termination bookkeeping
    # ------------------------------------------------------------------
    def _after_termination(
        self, transaction: Transaction, retry_objects: Optional[Set[str]] = None
    ) -> None:
        """Node removal, cascaded commits of pseudo-committed transactions,
        and backend-driven retry of blocked requests (Sections 4.2-4.3)."""
        former_predecessors = self.graph.remove_node(transaction.tid)

        # Only transactions that pointed at the removed node can have dropped
        # to out-degree zero; committing one of them recurses back here, which
        # handles arbitrarily long commit-dependency chains.
        for predecessor_id in sorted(former_predecessors):
            candidate = self.transactions.get(predecessor_id)
            if candidate is None:
                continue
            if candidate.status is not TransactionStatus.PSEUDO_COMMITTED:
                continue
            if self.graph.out_degree(candidate.tid) == 0:
                self.finalize_commit(candidate)

        # Let the backend release protocol state (e.g. locks) and retry
        # blocked requests on the objects the terminated transaction touched.
        if retry_objects is None:
            retry_objects = set(transaction.objects_visited)
        self.backend.on_terminate(transaction, retry_objects)

        # Retire the terminated transaction's handles to the freelist.  Every
        # listener already fired (they run before this bookkeeping), so a
        # caller that kept one of these handles past its transaction's end is
        # holding a genuinely stale reference — exactly what the generation
        # counter turns into a loud StaleHandleError.  Cascaded commits are
        # safe: each recursion level retires only its own transaction's
        # handles.
        handles = transaction.handles
        if handles:
            pool = self.handle_pool
            free = pool.free
            for recycled in handles:
                recycled.retire()  # type: ignore[attr-defined]
                free.append(recycled)
            pool.released += len(handles)
            handles.clear()

        if not self.retain_terminated:
            self.transactions.pop(transaction.tid, None)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def commit_dependencies(self, transaction_id: int) -> Set[int]:
        """Transactions that ``transaction_id`` must commit after."""
        return self.graph.successors_by_kind(transaction_id, EdgeKind.COMMIT_DEPENDENCY)

    def waiting_for(self, transaction_id: int) -> Set[int]:
        """Transactions that ``transaction_id`` is blocked behind."""
        return self.graph.successors_by_kind(transaction_id, EdgeKind.WAIT_FOR)

    def object_state(self, name: str) -> Any:
        """The currently visible state of an object (committed + uncommitted)."""
        return self.object(name).current_state

    def committed_state(self, name: str) -> Any:
        """The committed state of an object (effects of committed transactions only)."""
        return self.object(name).committed_state
