"""Derivation of compatibility tables from executable type specifications.

Section 3.2 of the paper notes that the compatibility table of an object "can
be derived from the semantics of the operations on an object".  This module
does exactly that: it evaluates Definition 1 (recoverability) and Definition 2
(commutativity) by enumeration over the type's *sample* states and *sample*
invocations, and folds the per-pair results into the paper's qualified
``Yes`` / ``Yes-SP`` / ``Yes-DP`` / ``No`` entries.

The derived tables serve three purposes:

* they regenerate Tables I-VIII of the paper directly from the ADT code
  (see ``benchmarks/test_tables_*.py``);
* they let the test suite check that every *declared* table shipped with an
  ADT is sound — it never claims a pair commutative or recoverable when the
  executable semantics says otherwise (:func:`check_declared_sound`);
* they allow new user-defined types to be used with the scheduler without
  hand-writing tables at all.

Because the check is by enumeration it is exact only with respect to the
sample space the type advertises.  The bundled ADTs choose samples rich enough
to expose every counterexample the paper relies on (empty containers,
duplicate elements, present and absent keys, and so on), and the property
tests in ``tests/test_derivation_properties.py`` cross-validate the derived
entries against randomly generated states.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .compatibility import Answer, CompatibilitySpec, RelationTable
from .errors import SpecificationError
from .specification import Invocation, TypeSpecification

__all__ = [
    "invocations_commute",
    "invocation_recoverable",
    "derive_commutativity_answer",
    "derive_recoverability_answer",
    "derive_commutativity_table",
    "derive_recoverability_table",
    "derive_compatibility",
    "SoundnessViolation",
    "check_declared_sound",
]


# ----------------------------------------------------------------------
# Point-wise checks on concrete invocations
# ----------------------------------------------------------------------
def invocations_commute(
    spec: TypeSpecification,
    first: Invocation,
    second: Invocation,
    states: Optional[Sequence[object]] = None,
) -> bool:
    """Check Definition 2 for two concrete invocations over ``states``.

    ``first`` and ``second`` commute iff for every sample state ``s`` the two
    execution orders produce the same final state *and* each operation returns
    the same value in both orders.
    """
    states = list(states) if states is not None else list(spec.sample_states())
    for state in states:
        first_then_second = spec.apply(state, first)
        second_then_first = spec.apply(state, second)
        state_fs = spec.next_state(first_then_second.state, second)
        state_sf = spec.next_state(second_then_first.state, first)
        if not spec.states_equal(state_fs, state_sf):
            return False
        # return(first, s) must equal return(first, state(second, s))
        if first_then_second.value != spec.return_value(second_then_first.state, first):
            return False
        # return(second, s) must equal return(second, state(first, s))
        if second_then_first.value != spec.return_value(first_then_second.state, second):
            return False
    return True


def invocation_recoverable(
    spec: TypeSpecification,
    requested: Invocation,
    executed: Invocation,
    states: Optional[Sequence[object]] = None,
) -> bool:
    """Check Definition 1: is ``requested`` recoverable relative to ``executed``?

    True iff for every sample state ``s``::

        return(requested, state(executed, s)) == return(requested, s)
    """
    states = list(states) if states is not None else list(spec.sample_states())
    for state in states:
        after_executed = spec.next_state(state, executed)
        if spec.return_value(after_executed, requested) != spec.return_value(state, requested):
            return False
    return True


# ----------------------------------------------------------------------
# Folding concrete pairs into qualified table entries
# ----------------------------------------------------------------------
def _partition_pairs(
    spec: TypeSpecification, requested_op: str, executed_op: str
) -> Tuple[List[Tuple[Invocation, Invocation]], List[Tuple[Invocation, Invocation]]]:
    """Split sample invocation pairs into same-parameter and different-parameter."""
    same: List[Tuple[Invocation, Invocation]] = []
    different: List[Tuple[Invocation, Invocation]] = []
    requested_samples = list(spec.sample_invocations(requested_op))
    executed_samples = list(spec.sample_invocations(executed_op))
    if not requested_samples or not executed_samples:
        raise SpecificationError(
            f"type {spec.name!r} provides no sample invocations for "
            f"({requested_op!r}, {executed_op!r})"
        )
    for requested, executed in itertools.product(requested_samples, executed_samples):
        if spec.conflict_parameter(requested) == spec.conflict_parameter(executed):
            same.append((requested, executed))
        else:
            different.append((requested, executed))
    return same, different


def _fold_answer(same_ok: Optional[bool], diff_ok: Optional[bool]) -> Answer:
    """Combine group verdicts into a qualified answer.

    ``None`` means the group was empty (no sample pairs of that kind), in
    which case the other group alone decides and the result is an
    unconditional ``Yes``/``No`` — e.g. two parameterless reads can only ever
    carry the "same" (empty) parameter, so their entry is plain ``Yes`` rather
    than ``Yes-SP``.
    """
    if same_ok is None and diff_ok is None:
        return Answer.NO
    if same_ok is None:
        return Answer.YES if diff_ok else Answer.NO
    if diff_ok is None:
        return Answer.YES if same_ok else Answer.NO
    if same_ok and diff_ok:
        return Answer.YES
    if same_ok:
        return Answer.YES_SP
    if diff_ok:
        return Answer.YES_DP
    return Answer.NO


def derive_commutativity_answer(
    spec: TypeSpecification, requested_op: str, executed_op: str
) -> Answer:
    """Derive the commutativity table entry for a pair of operation names."""
    same, different = _partition_pairs(spec, requested_op, executed_op)
    states = list(spec.sample_states())
    same_ok = (
        all(invocations_commute(spec, r, e, states) for r, e in same) if same else None
    )
    diff_ok = (
        all(invocations_commute(spec, r, e, states) for r, e in different)
        if different
        else None
    )
    return _fold_answer(same_ok, diff_ok)


def derive_recoverability_answer(
    spec: TypeSpecification, requested_op: str, executed_op: str
) -> Answer:
    """Derive the recoverability table entry for a pair of operation names."""
    same, different = _partition_pairs(spec, requested_op, executed_op)
    states = list(spec.sample_states())
    same_ok = (
        all(invocation_recoverable(spec, r, e, states) for r, e in same) if same else None
    )
    diff_ok = (
        all(invocation_recoverable(spec, r, e, states) for r, e in different)
        if different
        else None
    )
    return _fold_answer(same_ok, diff_ok)


def derive_commutativity_table(spec: TypeSpecification) -> RelationTable:
    """Derive the full commutativity table of a type by enumeration."""
    operations = spec.operation_names()
    entries: Dict[Tuple[str, str], Answer] = {}
    for requested in operations:
        for executed in operations:
            entries[(requested, executed)] = derive_commutativity_answer(
                spec, requested, executed
            )
    return RelationTable(
        name=f"derived commutativity for {spec.name}",
        operations=operations,
        entries=entries,
    )


def derive_recoverability_table(spec: TypeSpecification) -> RelationTable:
    """Derive the full recoverability table of a type by enumeration."""
    operations = spec.operation_names()
    entries: Dict[Tuple[str, str], Answer] = {}
    for requested in operations:
        for executed in operations:
            entries[(requested, executed)] = derive_recoverability_answer(
                spec, requested, executed
            )
    return RelationTable(
        name=f"derived recoverability for {spec.name}",
        operations=operations,
        entries=entries,
    )


def derive_compatibility(spec: TypeSpecification) -> CompatibilitySpec:
    """Derive both tables of a type and package them as a :class:`CompatibilitySpec`."""
    return CompatibilitySpec(
        type_name=spec.name,
        commutativity=derive_commutativity_table(spec),
        recoverability=derive_recoverability_table(spec),
    )


# ----------------------------------------------------------------------
# Soundness of declared tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SoundnessViolation:
    """A declared table entry that admits a pair the semantics rejects."""

    table: str
    requested: str
    executed: str
    declared: Answer
    derived: Answer

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.table}: ({self.requested}, {self.executed}) declared "
            f"{self.declared} but derivation finds {self.derived}"
        )


def check_declared_sound(
    spec: TypeSpecification, declared: Optional[CompatibilitySpec] = None
) -> List[SoundnessViolation]:
    """Check that declared tables never claim more than the semantics allows.

    A declared entry is *sound* when every invocation pair it admits is also
    admitted by the derived entry (``declared.implies(derived)``).  The
    converse need not hold: the paper's tables are deliberately coarse in a
    few places (for instance Table I marks ``(write, write)`` as
    non-commutative even though two writes of the same value commute), so the
    derived table may be strictly more permissive.
    """
    declared = declared if declared is not None else spec.compatibility()
    derived = derive_compatibility(spec)
    violations: List[SoundnessViolation] = []
    for requested in declared.operations:
        for executed in declared.operations:
            pairs = (
                (
                    "commutativity",
                    declared.commutativity.answer(requested, executed),
                    derived.commutativity.answer(requested, executed),
                ),
                (
                    "recoverability",
                    declared.recoverability.answer(requested, executed),
                    derived.recoverability.answer(requested, executed),
                ),
            )
            for table_name, declared_answer, derived_answer in pairs:
                if not declared_answer.implies(derived_answer):
                    violations.append(
                        SoundnessViolation(
                            table=f"{spec.name} {table_name}",
                            requested=requested,
                            executed=executed,
                            declared=declared_answer,
                            derived=derived_answer,
                        )
                    )
    return violations
