"""Slab/freelist pooling for the per-request boxes on the hot path.

With request pooling on, the scheduler retires every
:class:`~repro.core.requests.RequestHandle` (and every
``PendingRequest`` queue box) to a freelist when its transaction reaches a
terminal state, and later submits pop the freelist instead of constructing a
fresh instance.  The recycled object is *reinitialised field by field* by
the acquiring site, so the pooled path produces byte-identical observable
state to a fresh construction — the pinned equivalence suites prove the
event and RNG streams unchanged.

Safety comes from generation counters, not discipline: ``retire()`` bumps
``generation`` and stamps the box ``RECYCLED``, so a caller that stashed a
reference across the recycle gets a loud
:class:`~repro.core.errors.StaleHandleError` on its next status read rather
than silently aliasing another request.

The pool itself is deliberately dumb: a LIFO freelist with counters.  It
never constructs objects (``acquire`` returns ``None`` when empty, and the
call site constructs), so it stays agnostic of the pooled class's fields and
the hot paths can inline the ``pop``/reset sequence without calling into the
pool at all.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

__all__ = ["ObjectPool"]

T = TypeVar("T")


class ObjectPool(Generic[T]):
    """A LIFO freelist of retired, reusable instances of one class."""

    __slots__ = ("free", "created", "reused", "released")

    def __init__(self) -> None:
        #: The freelist.  Public so hot paths can inline ``free.pop()`` /
        #: ``free.append(obj)``; every object on it has been ``retire()``d.
        self.free: List[T] = []
        self.created = 0
        self.reused = 0
        self.released = 0

    def acquire(self) -> Optional[T]:
        """Pop a retired instance, or ``None`` when the caller must construct.

        The caller is responsible for reinitialising *every* caller-visible
        field of a reused instance (``generation`` excepted — it must keep
        counting up across reuses for staleness detection).
        """
        if self.free:
            self.reused += 1
            return self.free.pop()
        self.created += 1
        return None

    def release(self, obj: T) -> None:
        """Push a retired instance onto the freelist.

        The instance must already be ``retire()``d (generation bumped,
        status stamped ``RECYCLED``): the pool does not call it, so inlined
        release sites keep full control of the field resets.
        """
        self.released += 1
        self.free.append(obj)

    def __len__(self) -> int:
        return len(self.free)

    def as_dict(self) -> dict:
        """Counters for statistics surfaces (REP006: no silent counters)."""
        return {
            "created": self.created,
            "reused": self.reused,
            "released": self.released,
            "free": len(self.free),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ObjectPool free={len(self.free)} created={self.created} "
            f"reused={self.reused} released={self.released}>"
        )
