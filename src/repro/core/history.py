"""Execution logs (histories) of operations and termination events.

The paper reasons about a log ``E = (OP_E, <_E)``: the set of operations
executed by a group of transactions together with their execution order, plus
the special termination operations *commit* and *abort*.  This module provides
a concrete, append-only :class:`ExecutionLog` that the scheduler populates as
it runs and that the offline checkers in :mod:`repro.core.serializability`
consume.  Logs can also be written by hand (see the unit tests), which makes
it easy to replay the example sequences (1)-(3) from Section 3.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .specification import Event, Invocation

__all__ = ["RecordKind", "LogRecord", "ExecutionLog"]


class RecordKind(enum.Enum):
    """The kind of a log record."""

    OPERATION = "operation"
    COMMIT = "commit"
    PSEUDO_COMMIT = "pseudo-commit"
    ABORT = "abort"


@dataclass(frozen=True)
class LogRecord:
    """One entry of an execution log.

    ``OPERATION`` records carry an :class:`~repro.core.specification.Event`;
    termination records carry only the transaction id.  ``sequence`` is the
    global execution order (the total order the simulator/scheduler observed;
    the partial order ``<_E`` of the paper is a sub-relation of it).
    """

    kind: RecordKind
    transaction_id: int
    sequence: int
    event: Optional[Event] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is RecordKind.OPERATION and self.event is not None:
            return str(self.event)
        return f"({self.kind.value}, T{self.transaction_id})"


class ExecutionLog:
    """An append-only record of operations and terminations.

    The log offers the handful of queries the checkers need: the events of a
    given object or transaction in execution order, which transactions have
    committed / aborted, and which were still uncommitted when a given event
    executed.
    """

    def __init__(self) -> None:
        self._records: List[LogRecord] = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # Building the log
    # ------------------------------------------------------------------
    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def append_operation(
        self, object_name: str, invocation: Invocation, value: object, transaction_id: int
    ) -> Event:
        """Append an operation event and return it."""
        sequence = self._next_sequence()
        event = Event(
            object_name=object_name,
            invocation=invocation,
            value=value,
            transaction_id=transaction_id,
            sequence=sequence,
        )
        self._records.append(
            LogRecord(
                kind=RecordKind.OPERATION,
                transaction_id=transaction_id,
                sequence=sequence,
                event=event,
            )
        )
        return event

    def append_event(self, event: Event) -> Event:
        """Append a pre-built event, assigning it the next sequence number."""
        return self.append_operation(
            event.object_name, event.invocation, event.value, event.transaction_id
        )

    def append_commit(self, transaction_id: int) -> None:
        """Record the commit (durable termination) of a transaction."""
        self._records.append(
            LogRecord(RecordKind.COMMIT, transaction_id, self._next_sequence())
        )

    def append_pseudo_commit(self, transaction_id: int) -> None:
        """Record that a transaction pseudo-committed (completed for the user)."""
        self._records.append(
            LogRecord(RecordKind.PSEUDO_COMMIT, transaction_id, self._next_sequence())
        )

    def append_abort(self, transaction_id: int) -> None:
        """Record the abort of a transaction."""
        self._records.append(
            LogRecord(RecordKind.ABORT, transaction_id, self._next_sequence())
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self) -> Tuple[LogRecord, ...]:
        """All records in execution order."""
        return tuple(self._records)

    def events(self) -> List[Event]:
        """All operation events in execution order."""
        return [r.event for r in self._records if r.kind is RecordKind.OPERATION and r.event]

    def events_on(self, object_name: str) -> List[Event]:
        """Operation events on a single object, in execution order."""
        return [e for e in self.events() if e.object_name == object_name]

    def events_of(self, transaction_id: int) -> List[Event]:
        """Operation events invoked by one transaction, in execution order."""
        return [e for e in self.events() if e.transaction_id == transaction_id]

    def object_names(self) -> List[str]:
        """Names of every object touched by the log, in first-touch order."""
        seen: List[str] = []
        for event in self.events():
            if event.object_name not in seen:
                seen.append(event.object_name)
        return seen

    def transactions(self) -> Set[int]:
        """Every transaction id appearing in the log."""
        return {r.transaction_id for r in self._records}

    def committed(self) -> Set[int]:
        """Transactions with a COMMIT record."""
        return {
            r.transaction_id for r in self._records if r.kind is RecordKind.COMMIT
        }

    def aborted(self) -> Set[int]:
        """Transactions with an ABORT record."""
        return {r.transaction_id for r in self._records if r.kind is RecordKind.ABORT}

    def active(self) -> Set[int]:
        """Transactions that have neither committed nor aborted."""
        return self.transactions() - self.committed() - self.aborted()

    def committed_before(self, sequence: int) -> Set[int]:
        """Transactions whose COMMIT record precedes ``sequence``."""
        return {
            r.transaction_id
            for r in self._records
            if r.kind is RecordKind.COMMIT and r.sequence < sequence
        }

    def terminated_before(self, sequence: int) -> Set[int]:
        """Transactions that committed or aborted before ``sequence``."""
        return {
            r.transaction_id
            for r in self._records
            if r.kind in (RecordKind.COMMIT, RecordKind.ABORT) and r.sequence < sequence
        }

    def without_transactions(self, excluded: Iterable[int]) -> "ExecutionLog":
        """Return a copy of the log with all records of ``excluded`` removed.

        This is the paper's ``E || A_j`` construction: appending the abort of a
        transaction undoes and deletes its operations from the log.  Sequence
        numbers of the surviving records are preserved so ``<_E`` is unchanged.
        """
        excluded = set(excluded)
        clone = ExecutionLog()
        clone._records = [r for r in self._records if r.transaction_id not in excluded]
        clone._sequence = self._sequence
        return clone

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def render(self) -> str:
        """Render the log in the paper's ``X: (op, value, T)`` notation."""
        return "\n".join(str(record) for record in self._records)
