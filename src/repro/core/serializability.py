"""Offline correctness checkers: soundness, cascade-freedom, serializability.

Section 4.1 of the paper defines when an execution log is *correct*:

* every operation must be **sound** (Definition 4): its return value is the
  same in the log and in any extension of the log where other uncommitted
  transactions abort (their operations being deleted from the log);
* a log of sound operations is **free from cascading aborts** (Lemma 3);
* the log is **serializable** if the combined dependency graph — commit
  dependencies from recoverable pairs plus serialization edges from
  non-recoverable pairs — is acyclic (Lemma 4).

These checkers work on a finished :class:`~repro.core.history.ExecutionLog`
plus the specifications of the objects it touches.  They are deliberately
exhaustive (soundness enumerates subsets of abortable transactions), which is
fine for the hand-sized logs used in tests and examples, and they provide the
ground truth the property-based tests compare the scheduler against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .compatibility import CompatibilitySpec, ConflictClass
from .dependency_graph import DependencyGraph, EdgeKind
from .errors import SpecificationError
from .history import ExecutionLog
from .specification import Event, TypeSpecification

__all__ = [
    "ObjectUniverse",
    "replay_object",
    "event_return_value",
    "is_event_sound",
    "unsound_events",
    "is_log_sound",
    "is_free_of_cascading_aborts",
    "build_dependency_graph",
    "is_serializable",
    "serialization_orders",
    "is_rw_conflict_serializable",
]


@dataclass
class ObjectUniverse:
    """The specifications (and optional initial states) of a log's objects."""

    specs: Dict[str, TypeSpecification]
    initial_states: Dict[str, object] = None  # type: ignore[assignment]
    compatibilities: Dict[str, CompatibilitySpec] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.initial_states is None:
            self.initial_states = {}
        if self.compatibilities is None:
            self.compatibilities = {}

    @classmethod
    def uniform(
        cls,
        spec: TypeSpecification,
        object_names: Iterable[str],
        compatibility: Optional[CompatibilitySpec] = None,
    ) -> "ObjectUniverse":
        """All named objects share one type (and optionally one table)."""
        names = list(object_names)
        return cls(
            specs={name: spec for name in names},
            initial_states={},
            compatibilities={name: compatibility for name in names} if compatibility else {},
        )

    def spec_of(self, object_name: str) -> TypeSpecification:
        try:
            return self.specs[object_name]
        except KeyError:
            raise SpecificationError(f"no specification for object {object_name!r}") from None

    def initial_state_of(self, object_name: str) -> object:
        if object_name in self.initial_states:
            return self.initial_states[object_name]
        return self.spec_of(object_name).initial_state()

    def compatibility_of(self, object_name: str) -> CompatibilitySpec:
        table = self.compatibilities.get(object_name)
        if table is not None:
            return table
        return self.spec_of(object_name).compatibility()


# ----------------------------------------------------------------------
# Replaying logs against the executable specifications
# ----------------------------------------------------------------------
def replay_object(
    log: ExecutionLog, universe: ObjectUniverse, object_name: str
) -> Tuple[object, List[object]]:
    """Replay every event on one object; return (final state, return values)."""
    spec = universe.spec_of(object_name)
    state = universe.initial_state_of(object_name)
    values: List[object] = []
    for event in log.events_on(object_name):
        result = spec.apply(state, event.invocation)
        state = result.state
        values.append(result.value)
    return state, values


def event_return_value(
    log: ExecutionLog, universe: ObjectUniverse, event: Event
) -> object:
    """The value ``event`` would return when the log is replayed serially."""
    spec = universe.spec_of(event.object_name)
    state = universe.initial_state_of(event.object_name)
    for prior in log.events_on(event.object_name):
        if prior.sequence == event.sequence:
            return spec.return_value(state, event.invocation)
        state = spec.next_state(state, prior.invocation)
    raise SpecificationError(
        f"event {event} is not part of the supplied log"
    )


# ----------------------------------------------------------------------
# Soundness (Definition 4) and cascading aborts (Lemma 3)
# ----------------------------------------------------------------------
def _abortable_transactions(log: ExecutionLog, event: Event) -> Set[int]:
    """Transactions whose abort Definition 4 quantifies over for ``event``:
    every other transaction that has not committed before the event executed."""
    committed_before = log.committed_before(event.sequence)
    return {
        tid
        for tid in log.transactions()
        if tid != event.transaction_id and tid not in committed_before
    }


def is_event_sound(
    log: ExecutionLog, universe: ObjectUniverse, event: Event, exhaustive: bool = True
) -> bool:
    """Check Definition 4 for one event.

    The event's return value must be unchanged in every extension of the log
    that aborts some subset of the other not-yet-committed transactions.  With
    ``exhaustive=False`` only single-transaction aborts are checked (a much
    cheaper necessary condition used by the property tests on larger logs).
    """
    baseline = event_return_value(log, universe, event)
    candidates = sorted(_abortable_transactions(log, event))
    if exhaustive:
        subsets: Iterable[Tuple[int, ...]] = itertools.chain.from_iterable(
            itertools.combinations(candidates, size) for size in range(1, len(candidates) + 1)
        )
    else:
        subsets = ((tid,) for tid in candidates)
    for subset in subsets:
        reduced = log.without_transactions(subset)
        if event_return_value(reduced, universe, event) != baseline:
            return False
    return True


def unsound_events(
    log: ExecutionLog, universe: ObjectUniverse, exhaustive: bool = True
) -> List[Event]:
    """All events of the log that violate Definition 4."""
    return [
        event
        for event in log.events()
        if not is_event_sound(log, universe, event, exhaustive=exhaustive)
    ]


def is_log_sound(
    log: ExecutionLog, universe: ObjectUniverse, exhaustive: bool = True
) -> bool:
    """True when every operation in the log is sound (Theorem 1's guarantee)."""
    return not unsound_events(log, universe, exhaustive=exhaustive)


def is_free_of_cascading_aborts(
    log: ExecutionLog, universe: ObjectUniverse, exhaustive: bool = True
) -> bool:
    """Lemma 3: a log of sound operations is free from cascading aborts.

    Operationally: aborting any subset of uncommitted transactions never
    changes the return value observed by any other transaction's operations —
    which is exactly the soundness check.
    """
    return is_log_sound(log, universe, exhaustive=exhaustive)


# ----------------------------------------------------------------------
# Serializability (Definitions 5-6, Lemma 4)
# ----------------------------------------------------------------------
def build_dependency_graph(
    log: ExecutionLog,
    universe: ObjectUniverse,
    include_aborted: bool = False,
) -> DependencyGraph:
    """Build the combined dependency graph ``DG = G ∪ SG`` of a log.

    For every ordered pair of events ``e_earlier < e_later`` by different
    transactions on the same object:

    * commutative pairs contribute nothing;
    * recoverable (non-commutative) pairs contribute a commit-dependency edge
      ``later -> earlier`` (Definition 5);
    * non-recoverable pairs contribute a serialization edge, also oriented
      ``later -> earlier`` (Definition 6 up to a uniform reversal — orienting
      both edge families the same way preserves acyclicity and matches the
      run-time graph, where an edge means "must terminate after").

    Aborted transactions' events are excluded by default (their operations are
    deleted from the log when the abort is appended).
    """
    graph = DependencyGraph()
    aborted = log.aborted()
    for transaction_id in log.transactions():
        if include_aborted or transaction_id not in aborted:
            graph.add_node(transaction_id)
    for object_name in log.object_names():
        events = [
            event
            for event in log.events_on(object_name)
            if include_aborted or event.transaction_id not in aborted
        ]
        compatibility = universe.compatibility_of(object_name)
        spec = universe.spec_of(object_name)
        for earlier_index, earlier in enumerate(events):
            for later in events[earlier_index + 1 :]:
                if earlier.transaction_id == later.transaction_id:
                    continue
                conflict_class = compatibility.classify(
                    later.invocation, earlier.invocation, spec
                )
                if conflict_class is ConflictClass.COMMUTATIVE:
                    continue
                kind = (
                    EdgeKind.COMMIT_DEPENDENCY
                    if conflict_class is ConflictClass.RECOVERABLE
                    else EdgeKind.WAIT_FOR
                )
                graph.add_edge(later.transaction_id, earlier.transaction_id, kind)
    return graph


def is_serializable(log: ExecutionLog, universe: ObjectUniverse) -> bool:
    """Lemma 4: the log is serializable iff its dependency graph is acyclic."""
    return not build_dependency_graph(log, universe).has_cycle()


def serialization_orders(log: ExecutionLog, universe: ObjectUniverse) -> List[List[int]]:
    """Enumerate every total order of committed transactions consistent with
    the dependency graph (edge ``a -> b`` forces ``b`` before ``a``).

    Useful in tests to assert that a specific serial order — e.g. the commit
    order enforced by the scheduler — is among the admissible ones.  Only
    committed transactions are considered.
    """
    graph = build_dependency_graph(log, universe)
    committed = sorted(log.committed())
    orders: List[List[int]] = []
    for permutation in itertools.permutations(committed):
        position = {tid: index for index, tid in enumerate(permutation)}
        consistent = True
        for edge in graph.edges():
            if edge.source in position and edge.target in position:
                if position[edge.target] > position[edge.source]:
                    consistent = False
                    break
        if consistent:
            orders.append(list(permutation))
    return orders


# ----------------------------------------------------------------------
# Classical read/write conflict serializability (baseline cross-check)
# ----------------------------------------------------------------------
def is_rw_conflict_serializable(log: ExecutionLog) -> bool:
    """Classic conflict serializability for read/write logs.

    Two events conflict when they touch the same object and at least one is a
    ``write``.  The check builds the usual precedence graph (earlier ->
    later) over committed transactions and tests it for acyclicity.  Used to
    cross-validate the page/read-write workloads against textbook theory.
    """
    graph = DependencyGraph()
    aborted = log.aborted()
    for object_name in log.object_names():
        events = [e for e in log.events_on(object_name) if e.transaction_id not in aborted]
        for earlier_index, earlier in enumerate(events):
            for later in events[earlier_index + 1 :]:
                if earlier.transaction_id == later.transaction_id:
                    continue
                if "write" in (earlier.invocation.op, later.invocation.op):
                    graph.add_edge(
                        earlier.transaction_id, later.transaction_id, EdgeKind.WAIT_FOR
                    )
    return not graph.has_cycle()
