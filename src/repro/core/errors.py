"""Exception hierarchy for the recoverability-based concurrency-control library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still being able to distinguish scheduling outcomes (aborts, blocks) from
programming errors (unknown operations, misuse of the API).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SpecificationError(ReproError):
    """A data-type specification is malformed or used inconsistently."""


class UnknownOperationError(SpecificationError):
    """An operation name is not defined by the target data type."""

    def __init__(self, type_name: str, op_name: str):
        super().__init__(f"type {type_name!r} defines no operation {op_name!r}")
        self.type_name = type_name
        self.op_name = op_name


class UnknownObjectError(ReproError):
    """A request referenced an object name that is not registered."""

    def __init__(self, object_name: str):
        super().__init__(f"no object named {object_name!r} is registered")
        self.object_name = object_name


class TransactionStateError(ReproError):
    """A transaction was used in a state that does not permit the call.

    Examples: issuing an operation from a committed transaction, committing a
    transaction twice, or operating on behalf of an aborted transaction.
    """


class TransactionAborted(ReproError):
    """Raised (or reported) when the scheduler aborts the calling transaction.

    The scheduler aborts a transaction when admitting its request would create
    a cycle in the dependency graph (either a deadlock through wait-for edges
    or a cyclic commit dependency through recoverability edges).
    """

    def __init__(self, transaction_id: int, reason: str = "dependency cycle"):
        super().__init__(f"transaction {transaction_id} aborted: {reason}")
        self.transaction_id = transaction_id
        self.reason = reason


class RecoveryError(ReproError):
    """Recovery bookkeeping failed (e.g. undo requested for an unknown event)."""


class StaleHandleError(ReproError):
    """A pooled request handle was read after it was recycled.

    With request pooling on, :class:`~repro.core.requests.RequestHandle` and
    ``PendingRequest`` instances are retired to a freelist at transaction
    finish and reused by later submits.  A caller that held a reference
    across the recycle would silently observe another request's state; the
    generation counter turns that into this loud error instead.
    """

    def __init__(self, transaction_id: int, generation: int):
        super().__init__(
            f"request handle (last transaction {transaction_id}) was recycled "
            f"(generation {generation}); the reference is stale"
        )
        self.transaction_id = transaction_id
        self.generation = generation


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent internal state."""


class ExperimentError(ReproError):
    """An experiment definition or run request is invalid."""
