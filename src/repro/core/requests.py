"""Caller-visible request objects shared by the scheduler and its backends.

These classes used to live in :mod:`repro.core.scheduler`; they are split out
so that concurrency-control backends (:mod:`repro.core.backends`) can use them
without importing the scheduler module itself.  The scheduler re-exports them,
so existing ``from repro.core.scheduler import RequestHandle`` imports keep
working.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from .specification import Invocation

__all__ = ["RequestStatus", "AbortReason", "RequestHandle"]


class RequestStatus(enum.Enum):
    """Observable status of an operation request."""

    EXECUTED = "executed"
    BLOCKED = "blocked"
    ABORTED = "aborted"


class AbortReason(enum.Enum):
    """Why the scheduler (or the multi-site router) aborted a transaction."""

    DEADLOCK = "deadlock"
    DEPENDENCY_CYCLE = "commit-dependency cycle"
    USER = "user abort"
    #: A site this transaction wrote to failed (available-copies rule).
    SITE_FAILURE = "site failure"
    #: No live site could serve the requested operation.
    SITE_UNAVAILABLE = "site unavailable"


@dataclass(slots=True)
class RequestHandle:
    """The caller-visible result of :meth:`repro.core.scheduler.Scheduler.perform`.

    A handle starts in the status the scheduler decided immediately
    (``EXECUTED``, ``BLOCKED``, or ``ABORTED``).  A blocked handle is updated
    in place when the request is granted or the transaction is later aborted,
    so callers (and the simulator) can poll or react through listeners.
    """

    transaction_id: int
    object_name: str
    invocation: Invocation
    status: Optional[RequestStatus] = None
    value: Any = None
    abort_reason: Optional[AbortReason] = None

    @property
    def executed(self) -> bool:
        return self.status is RequestStatus.EXECUTED

    @property
    def blocked(self) -> bool:
        return self.status is RequestStatus.BLOCKED

    @property
    def aborted(self) -> bool:
        return self.status is RequestStatus.ABORTED
