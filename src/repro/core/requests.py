"""Caller-visible request objects shared by the scheduler and its backends.

These classes used to live in :mod:`repro.core.scheduler`; they are split out
so that concurrency-control backends (:mod:`repro.core.backends`) can use them
without importing the scheduler module itself.  The scheduler re-exports them,
so existing ``from repro.core.scheduler import RequestHandle`` imports keep
working.

Handles are *poolable*: when a scheduler runs with request pooling on
(:class:`~repro.core.pool.ObjectPool`), a handle is retired to a freelist at
transaction finish and reused by a later submit.  ``generation`` is bumped on
every retire so a caller that stashed a handle across its transaction's
termination observes a :class:`~repro.core.errors.StaleHandleError` on the
next status read instead of silently aliasing the recycled request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from .errors import StaleHandleError
from .specification import Invocation

__all__ = ["RequestStatus", "AbortReason", "RequestHandle"]


class RequestStatus(enum.Enum):
    """Observable status of an operation request."""

    EXECUTED = "executed"
    BLOCKED = "blocked"
    ABORTED = "aborted"
    #: The handle was retired to an object pool; any further status read is a
    #: use-after-recycle bug and raises :class:`StaleHandleError`.
    RECYCLED = "recycled"


class AbortReason(enum.Enum):
    """Why the scheduler (or the multi-site router) aborted a transaction."""

    DEADLOCK = "deadlock"
    DEPENDENCY_CYCLE = "commit-dependency cycle"
    USER = "user abort"
    #: A site this transaction wrote to failed (available-copies rule).
    SITE_FAILURE = "site failure"
    #: No live site could serve the requested operation.
    SITE_UNAVAILABLE = "site unavailable"


@dataclass(slots=True)
class RequestHandle:
    """The caller-visible result of :meth:`repro.core.scheduler.Scheduler.perform`.

    A handle starts in the status the scheduler decided immediately
    (``EXECUTED``, ``BLOCKED``, or ``ABORTED``).  A blocked handle is updated
    in place when the request is granted or the transaction is later aborted,
    so callers (and the simulator) can poll or react through listeners.
    """

    transaction_id: int
    object_name: str
    invocation: Invocation
    status: Optional[RequestStatus] = None
    value: Any = None
    abort_reason: Optional[AbortReason] = None
    #: Bumped each time the handle is retired to a pool.  A caller that
    #: captured ``(handle, handle.generation)`` can detect recycling; the
    #: status properties do it automatically by raising on ``RECYCLED``.
    generation: int = 0

    def retire(self) -> None:
        """Return the handle to its pool: invalidate every observable field."""
        self.generation += 1
        self.status = RequestStatus.RECYCLED
        self.value = None
        self.abort_reason = None

    @property
    def executed(self) -> bool:
        status = self.status
        if status is RequestStatus.RECYCLED:
            raise StaleHandleError(self.transaction_id, self.generation)
        return status is RequestStatus.EXECUTED

    @property
    def blocked(self) -> bool:
        status = self.status
        if status is RequestStatus.RECYCLED:
            raise StaleHandleError(self.transaction_id, self.generation)
        return status is RequestStatus.BLOCKED

    @property
    def aborted(self) -> bool:
        status = self.status
        if status is RequestStatus.RECYCLED:
            raise StaleHandleError(self.transaction_id, self.generation)
        return status is RequestStatus.ABORTED
