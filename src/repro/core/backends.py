"""Pluggable concurrency-control backends.

The :class:`~repro.core.scheduler.Scheduler` owns the machinery every
concurrency-control protocol needs — the transaction table, the per-object
managers with their blocked-request queues, the unified dependency graph, the
statistics, history and listeners — and delegates the protocol *decisions* to
a :class:`ConcurrencyControlBackend`:

``admit``
    decide whether a requested operation executes, blocks, or aborts its
    transaction;
``commit``
    decide whether a completed transaction durably commits at once or must
    wait (pseudo-commit);
``abort``
    abort a transaction (both user-requested and protocol-chosen victims route
    through here);
``on_terminate``
    react to a termination: release protocol state (e.g. locks) and retry
    blocked requests that may now be grantable.

Two backends are provided:

* :class:`SemanticBackend` — the paper's recoverability/commutativity protocol
  (Figure 2 admission, commit dependencies, pseudo-commit), driven by the
  compatibility tables through :class:`~repro.core.policy.ConflictPolicy`;
* :class:`TwoPhaseLockingBackend` — the classical baseline the paper measures
  against: page-level strict two-phase locking with shared/exclusive lock
  modes, FIFO waiting, and deadlock detection via the same wait-for graph.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from .compatibility import ConflictClass
from .dependency_graph import EdgeKind
from .errors import ReproError, TransactionStateError, UnknownObjectError, UnknownOperationError
from .object_manager import ObjectManager, _OperationGroup
from .policy import ConflictPolicy
from .requests import AbortReason, RequestHandle, RequestStatus
from .specification import Event, Invocation, OperationResult
from .transaction import Transaction, TransactionStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .scheduler import Scheduler

#: Signature of a fused submit fast path (see ``compile_submit``).
FusedSubmit = Callable[[int, str, Invocation], RequestHandle]

__all__ = [
    "ConcurrencyControlBackend",
    "SemanticBackend",
    "TwoPhaseLockingBackend",
    "LockMode",
    "make_backend",
]


class ConcurrencyControlBackend:
    """Protocol-specific half of the scheduler.

    A backend is attached to exactly one scheduler and may keep per-run state
    (the 2PL backend keeps its lock table here).  Subclasses must implement
    :meth:`admit`, :meth:`commit` and :meth:`blocking_conflicts`; the shared
    default implementations of :meth:`abort` and :meth:`on_terminate` cover
    the common bookkeeping.
    """

    #: Short name used in reports and ``repr``.
    name = "abstract"

    def __init__(self) -> None:
        self.scheduler: "Scheduler" = None  # type: ignore[assignment]

    def attach(self, scheduler: "Scheduler") -> None:
        """Bind the backend to its scheduler (called once, at construction).

        Backends hold per-run protocol state (the 2PL lock table, for one),
        so an instance must not be shared between schedulers — stale locks
        from a previous run would block the new one forever.
        """
        if self.scheduler is not None and self.scheduler is not scheduler:
            raise ReproError(
                f"{type(self).__name__} is already attached to a scheduler; "
                "construct a fresh backend instance per Scheduler"
            )
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    # Protocol decisions
    # ------------------------------------------------------------------
    def admit(
        self,
        transaction: Transaction,
        manager: "ObjectManager",
        handle: RequestHandle,
        from_queue: bool,
    ) -> None:
        """Decide the fate of an operation request (execute/block/abort).

        ``from_queue`` is True when the request is being re-admitted from an
        object's blocked queue; its stale wait-for edges must be dropped.
        """
        raise NotImplementedError

    def commit(self, transaction: Transaction) -> TransactionStatus:
        """Commit a completed transaction; returns the resulting status."""
        raise NotImplementedError

    def abort(
        self,
        transaction: Transaction,
        reason: AbortReason,
        handle: Optional[RequestHandle] = None,
    ) -> None:
        """Abort a transaction (user request or protocol-chosen victim)."""
        self.scheduler.internal_abort(transaction, reason, handle)

    def on_terminate(self, transaction: Transaction, retry_objects: Set[str]) -> None:
        """A transaction terminated: retry blocked requests that may now run.

        Consults the scheduler's blocked-object index rather than the full
        object table: an object with an empty queue has nothing to wake, so a
        termination touches exactly the objects with pending requests instead
        of rescanning every queue it visited.
        """
        scheduler = self.scheduler
        blocked_index = scheduler._blocked_objects
        if not blocked_index:
            return
        for object_name in sorted(retry_objects):
            manager = blocked_index.get(object_name)
            if manager is not None:
                scheduler.retry_blocked(manager)

    def reset(self) -> None:
        """Drop per-run protocol state (for :meth:`Scheduler.reset`).

        The base backends keep no state beyond the scheduler reference; the
        2PL backend clears its lock table here.
        """

    def compile_submit(self) -> Optional[FusedSubmit]:
        """An optional fused fast path that replaces ``Scheduler.submit``.

        Called once at scheduler construction, after :meth:`attach`.  A
        backend may return a closure with the exact semantics of
        ``Scheduler.submit`` that short-circuits the common no-conflict case
        (falling back to :meth:`admit` whenever a protocol decision is
        needed); returning ``None`` keeps the general path — the default, and
        what subclasses of the built-in backends get unless they opt in.
        """
        return None

    # ------------------------------------------------------------------
    # Hooks used by the shared scheduler machinery
    # ------------------------------------------------------------------
    def after_execute(self, manager: "ObjectManager", event: Event) -> None:
        """Called after every executed operation (blocked-waiter upkeep)."""

    def blocking_conflicts(
        self,
        manager: "ObjectManager",
        invocation: Invocation,
        transaction_id: int,
        upto: Optional[int] = None,
    ) -> Set[int]:
        """The transactions currently preventing ``invocation`` from running.

        Used by the shared retry loop to decide whether a queued request is
        still blocked, and against whom its wait-for edges should point.
        ``upto`` restricts the fairness check to queue entries ahead of the
        candidate.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def _grant_fused(
    scheduler: "Scheduler",
    transaction: Transaction,
    manager: ObjectManager,
    handle: RequestHandle,
    invocation: Invocation,
    transaction_id: int,
    key: Optional[tuple],
) -> Optional[Event]:
    """Execute an already-admitted request without re-entering the scheduler.

    This is ``Scheduler.execute_operation`` + ``ObjectManager.execute`` +
    ``Transaction.record_event`` flattened into one frame, shared by the fused
    submit closures.  ``key`` is the precomputed ``(op id, conflict param)``
    group identity, or ``None`` to index through the manager's general path.

    Returns the executed event, or ``None`` when the manager's spec cannot be
    direct-applied — in that case *nothing has been mutated* and the caller
    must fall back to the general admission path.
    """
    if manager.materialize_state:
        fns = manager._op_functions
        if fns is None:
            return None
        try:
            fn = fns[invocation.op]
        except KeyError:
            return None
        sequence = scheduler._sequence + 1
        scheduler._sequence = sequence
        result = fn(manager.current_state, invocation.args)
        if result.__class__ is not OperationResult:
            # Non-conforming return: re-run through the legacy chain for its
            # exact validation error (functions are pure, so this is safe).
            result = manager.spec.apply(manager.current_state, invocation)
        manager.current_state = result.state
        value = result.value
    else:
        sequence = scheduler._sequence + 1
        scheduler._sequence = sequence
        value = None
    event = Event(
        object_name=manager.name,
        invocation=invocation,
        value=value,
        transaction_id=transaction_id,
        sequence=sequence,
    )
    manager.uncommitted.append(event)
    by_tid = manager._events_by_tid
    try:
        by_tid[transaction_id].append(event)
    except KeyError:
        by_tid[transaction_id] = [event]
    if key is None:
        manager._index_event(event)
    else:
        groups = manager._op_groups
        try:
            group = groups[key]
        except KeyError:
            group = groups[key] = _OperationGroup(
                invocation=invocation, op_id=key[0], param=key[1]
            )
            manager._group_key_by_event[id(event)] = key
            group.owners[transaction_id] = 1
        except TypeError:
            # Unhashable conflict parameter: the general path gives the
            # event its own fallback group.
            manager._index_event(event)
        else:
            manager._group_key_by_event[id(event)] = key
            owners = group.owners
            try:
                owners[transaction_id] += 1
            except KeyError:
                owners[transaction_id] = 1
    history = scheduler.history
    if history is not None:
        history.append_event(event)
    transaction.events.append(event)
    transaction.objects_visited.add(manager.name)
    transaction.status = TransactionStatus.ACTIVE
    handle.status = RequestStatus.EXECUTED
    handle.value = value
    scheduler.stats.operations_executed += 1
    for on_executed in scheduler._on_executed:
        on_executed(transaction_id, handle, event)
    return event


class SemanticBackend(ConcurrencyControlBackend):
    """Recoverability/commutativity concurrency control (Sections 4.2-4.3).

    Implements the operation-admission algorithm of Figure 2: a request is
    classified against the uncommitted operations of other transactions; it
    blocks behind conflicts (wait-for edges), executes immediately over
    recoverable operations (commit-dependency edges), and the transaction is
    aborted if either edge set would close a cycle.  Which classifications
    count as conflicts is decided by the scheduler's
    :class:`~repro.core.policy.ConflictPolicy`.
    """

    name = "semantic"

    # ------------------------------------------------------------------
    # Admission (Figure 2)
    # ------------------------------------------------------------------
    def admit(
        self,
        transaction: Transaction,
        manager: "ObjectManager",
        handle: RequestHandle,
        from_queue: bool,
    ) -> None:
        scheduler = self.scheduler
        invocation = handle.invocation
        if from_queue:
            # The request is leaving the blocked queue: its wait-for edges
            # described the old conflict set and must not linger (they would
            # cause spurious deadlock aborts later).
            scheduler.graph.remove_edges_from(transaction.tid, EdgeKind.WAIT_FOR)
        classification = manager.classify_request(invocation, transaction.tid, scheduler.policy)
        conflicting = set(classification.conflicting)
        if scheduler.fair and not from_queue:
            conflicting |= manager.blocked_conflicts(invocation, transaction.tid, scheduler.policy)

        if conflicting:
            scheduler.block_request(transaction, manager, handle, conflicting)
            return

        if classification.recoverable:
            scheduler.stats.cycle_checks += 1
            transaction.cycle_checks += 1
            if scheduler.graph.creates_cycle(transaction.tid, classification.recoverable):
                self.abort(transaction, AbortReason.DEPENDENCY_CYCLE, handle)
                return
            scheduler.graph.add_edges(
                transaction.tid, classification.recoverable, EdgeKind.COMMIT_DEPENDENCY
            )
            scheduler.stats.commit_dependency_edges += len(classification.recoverable)

        scheduler.execute_operation(transaction, manager, handle, from_queue=from_queue)

    def compile_submit(self) -> Optional[FusedSubmit]:
        """Fuse submit → admit → classification for the no-conflict case.

        The compiled closure replays ``Scheduler.submit``'s exact lookup and
        error sequence, then scans the manager's operation groups inline: if
        the object has no queued requests and the invocation commutes with
        every uncommitted operation of other transactions, the grant is
        executed in this same frame (``_grant_fused``).  Any other outcome —
        a queued request (fairness), an operation outside the compiled
        tables, a non-commutative pair — bails out to :meth:`admit`, which
        recomputes the classification from scratch: the scan is pure, so the
        fallback is bit-identical to never having taken the fast path.
        """
        if type(self) is not SemanticBackend:
            # Subclasses may override admission; they must opt in explicitly.
            return None
        scheduler = self.scheduler
        admit = self.admit
        active = TransactionStatus.ACTIVE
        commutative = ConflictClass.COMMUTATIVE
        pool_requests = scheduler.pool_requests
        handle_pool = scheduler.handle_pool

        def fused_submit(
            transaction_id: int, object_name: str, invocation: Invocation
        ) -> RequestHandle:
            try:
                transaction = scheduler.transactions[transaction_id]
            except KeyError:
                raise TransactionStateError(
                    f"unknown transaction {transaction_id}"
                ) from None
            if transaction.status is not active:
                transaction.require(active)
            try:
                manager = scheduler.objects[object_name]
            except KeyError:
                raise UnknownObjectError(object_name) from None
            if pool_requests and handle_pool.free:
                # The fused submit writes into a pooled handle: every
                # caller-visible field is reinitialised, so the reused box is
                # indistinguishable from a fresh construction (generation
                # excepted — it keeps counting for staleness detection).
                handle_pool.reused += 1
                handle = handle_pool.free.pop()
                handle.transaction_id = transaction_id
                handle.object_name = object_name
                handle.invocation = invocation
                handle.status = None
            else:
                handle_pool.created += pool_requests
                handle = RequestHandle(
                    transaction_id=transaction_id,
                    object_name=object_name,
                    invocation=invocation,
                )
            if manager.blocked:
                admit(transaction, manager, handle, False)
                if pool_requests:
                    handles = transaction.handles
                    if handles is None:
                        handles = transaction.handles = []
                    handles.append(handle)
                return handle
            try:
                requested_id = manager._op_index[invocation.op]
            except KeyError:
                admit(transaction, manager, handle, False)
                if pool_requests:
                    handles = transaction.handles
                    if handles is None:
                        handles = transaction.handles = []
                    handles.append(handle)
                return handle
            if manager._param_is_args:
                requested_param = invocation.args
            else:
                requested_param = manager.spec.conflict_parameter(invocation)
            groups = manager._op_groups
            if groups:
                policy = scheduler.policy
                if policy is manager._compiled_policy:
                    tables = manager._compiled_tables
                else:
                    tables = manager._tables_for(policy)
                assert tables is not None
                unconditional_table = tables[0]
                base = requested_id * manager._n_ops
                for group in groups.values():
                    owners = group.owners
                    if not owners or (len(owners) == 1 and transaction_id in owners):
                        continue
                    group_id = group.op_id
                    if group_id < 0:
                        admit(transaction, manager, handle, False)
                        if pool_requests:
                            handles = transaction.handles
                            if handles is None:
                                handles = transaction.handles = []
                            handles.append(handle)
                        return handle
                    index = base + group_id
                    pairwise = unconditional_table[index]
                    if pairwise is None:
                        if requested_param == group.param:
                            pairwise = tables[1][index]
                        else:
                            pairwise = tables[2][index]
                    if pairwise is not commutative:
                        admit(transaction, manager, handle, False)
                        if pool_requests:
                            handles = transaction.handles
                            if handles is None:
                                handles = transaction.handles = []
                            handles.append(handle)
                        return handle
            if (
                _grant_fused(
                    scheduler,
                    transaction,
                    manager,
                    handle,
                    invocation,
                    transaction_id,
                    (requested_id, requested_param),
                )
                is None
            ):
                admit(transaction, manager, handle, False)
            if pool_requests:
                handles = transaction.handles
                if handles is None:
                    handles = transaction.handles = []
                handles.append(handle)
            return handle

        return fused_submit

    def after_execute(self, manager: "ObjectManager", event: Event) -> None:
        """Keep blocked transactions' wait-for edges complete.

        Every blocked request must hold wait-for edges to *all* transactions
        with conflicting uncommitted operations, otherwise a deadlock can go
        undetected.  When a new operation executes (either under unfair
        scheduling or because a queued request was granted ahead of others),
        blocked requests that conflict with it gain an edge to the executor;
        if that edge closes a cycle the blocked transaction is the victim.
        """
        scheduler = self.scheduler
        if not manager.blocked:
            return
        for pending in list(manager.blocked):
            if pending.transaction_id == event.transaction_id:
                continue
            waiter = scheduler.transactions.get(pending.transaction_id)
            if waiter is None or waiter.status is not TransactionStatus.BLOCKED:
                continue
            pairwise = manager.classify_pair(pending.invocation, event.invocation, scheduler.policy)
            if pairwise is not ConflictClass.CONFLICT:
                continue
            if scheduler.graph.has_edge(waiter.tid, event.transaction_id, EdgeKind.WAIT_FOR):
                continue
            scheduler.stats.cycle_checks += 1
            waiter.cycle_checks += 1
            if scheduler.graph.creates_cycle(waiter.tid, {event.transaction_id}):
                self.abort(waiter, AbortReason.DEADLOCK)
                continue
            scheduler.graph.add_edge(waiter.tid, event.transaction_id, EdgeKind.WAIT_FOR)
            scheduler.stats.wait_for_edges += 1

    # ------------------------------------------------------------------
    # Commit protocol (Section 4.3)
    # ------------------------------------------------------------------
    def commit(self, transaction: Transaction) -> TransactionStatus:
        scheduler = self.scheduler
        if scheduler.graph.out_degree(transaction.tid) > 0:
            return scheduler.record_pseudo_commit(transaction)
        scheduler.finalize_commit(transaction)
        return TransactionStatus.COMMITTED

    # ------------------------------------------------------------------
    # Retry support
    # ------------------------------------------------------------------
    def blocking_conflicts(
        self,
        manager: "ObjectManager",
        invocation: Invocation,
        transaction_id: int,
        upto: Optional[int] = None,
    ) -> Set[int]:
        scheduler = self.scheduler
        conflicting = set(
            manager.classify_request(invocation, transaction_id, scheduler.policy).conflicting
        )
        if scheduler.fair:
            conflicting |= manager.blocked_conflicts(
                invocation, transaction_id, scheduler.policy, upto=upto
            )
        return conflicting


class LockMode(enum.Enum):
    """Lock modes of the strict-2PL backend."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def conflicts_with(self, other: "LockMode") -> bool:
        """Two lock requests conflict unless both are shared."""
        return self is LockMode.EXCLUSIVE or other is LockMode.EXCLUSIVE


class TwoPhaseLockingBackend(ConcurrencyControlBackend):
    """Page-level strict two-phase locking — the paper's classical baseline.

    Every object carries one lock with shared/exclusive modes: an operation
    whose :class:`~repro.core.specification.OperationSpec` is marked
    ``is_read_only`` takes a shared lock, everything else an exclusive lock
    (page-level locking is deliberately blind to operation semantics — that is
    the point of the baseline).  Locks are held until the owning transaction
    terminates (*strict* 2PL), so commits are always immediate and no commit
    dependencies ever arise.  Waiting is FIFO per object, deadlocks are
    detected with the scheduler's shared wait-for graph, and the requester
    that would close a cycle is the victim — the same victim rule as the
    semantic backend, which keeps the two backends comparable.
    """

    name = "two-phase-locking"

    def __init__(self) -> None:
        super().__init__()
        #: object name -> {transaction id -> granted mode}
        self._locks: Dict[str, Dict[int, LockMode]] = {}
        #: transaction id -> object names where it holds a lock
        self._held: Dict[int, Set[str]] = {}

    # ------------------------------------------------------------------
    # Lock-table helpers
    # ------------------------------------------------------------------
    def required_mode(self, manager: "ObjectManager", invocation: Invocation) -> LockMode:
        """The lock mode ``invocation`` needs on ``manager``'s object."""
        try:
            operation = manager.spec.operation(invocation.op)
        except UnknownOperationError:
            return LockMode.EXCLUSIVE
        return LockMode.SHARED if operation.is_read_only else LockMode.EXCLUSIVE

    def holders(self, object_name: str) -> Dict[int, LockMode]:
        """Current lock holders of one object (empty when unlocked)."""
        return dict(self._locks.get(object_name, {}))

    def _lock_conflicts(
        self, manager: "ObjectManager", mode: LockMode, transaction_id: int
    ) -> Set[int]:
        holders = self._locks.get(manager.name)
        if not holders:
            return set()
        return {
            tid
            for tid, granted in holders.items()
            if tid != transaction_id and mode.conflicts_with(granted)
        }

    def _queued_conflicts(
        self,
        manager: "ObjectManager",
        mode: LockMode,
        transaction_id: int,
        upto: Optional[int] = None,
    ) -> Set[int]:
        queue = manager.blocked if upto is None else manager.blocked[:upto]
        owners: Set[int] = set()
        for pending in queue:
            if pending.transaction_id == transaction_id:
                continue
            if mode.conflicts_with(self.required_mode(manager, pending.invocation)):
                owners.add(pending.transaction_id)
        return owners

    def _acquire(self, object_name: str, transaction_id: int, mode: LockMode) -> bool:
        """Grant (or extend) a lock; returns True when the table changed."""
        holders = self._locks.setdefault(object_name, {})
        current = holders.get(transaction_id)
        changed = False
        if current is not LockMode.EXCLUSIVE:
            granted = mode if current is None else (
                LockMode.EXCLUSIVE if mode is LockMode.EXCLUSIVE else current
            )
            changed = granted is not current
            holders[transaction_id] = granted
        self._held.setdefault(transaction_id, set()).add(object_name)
        return changed

    # ------------------------------------------------------------------
    # Protocol decisions
    # ------------------------------------------------------------------
    def _covered(self, held: Optional[LockMode], mode: LockMode) -> bool:
        """True when a held lock already licenses a request of ``mode``."""
        return held is LockMode.EXCLUSIVE or (held is not None and mode is LockMode.SHARED)

    def admit(
        self,
        transaction: Transaction,
        manager: "ObjectManager",
        handle: RequestHandle,
        from_queue: bool,
    ) -> None:
        scheduler = self.scheduler
        if from_queue:
            scheduler.graph.remove_edges_from(transaction.tid, EdgeKind.WAIT_FOR)
        mode = self.required_mode(manager, handle.invocation)
        held = self._locks.get(manager.name, {}).get(transaction.tid)
        if not self._covered(held, mode):
            conflicting = self._lock_conflicts(manager, mode, transaction.tid)
            # Fair FIFO queueing applies only to *new* lock requests.  An
            # upgrade (shared held, exclusive needed) waits on the other
            # holders alone: queueing it behind requests that are themselves
            # waiting on its shared lock would manufacture a deadlock.
            if held is None and scheduler.fair and not from_queue:
                conflicting |= self._queued_conflicts(manager, mode, transaction.tid)
            if conflicting:
                scheduler.block_request(transaction, manager, handle, conflicting)
                return
        changed = self._acquire(manager.name, transaction.tid, mode)
        scheduler.execute_operation(transaction, manager, handle, from_queue=from_queue)
        # Waiters' conflict sets can only change when the lock table did, so
        # operations under an already-held covering lock skip the refresh.
        # (after_execute stays a no-op for this backend: the decision needs
        # the acquire outcome, which lives in this frame — instance state
        # would be clobbered if a listener ever re-entered the scheduler.)
        if changed:
            self._refresh_waiters(manager)

    def compile_submit(self) -> Optional[FusedSubmit]:
        """Fuse submit → lock check → execute for the uncontended case.

        The fast path applies when the object has no queued requests and the
        needed lock is either already covered or free of conflicting holders;
        the lock table update still goes through :meth:`_acquire`, and the
        waiter refresh is skipped because an empty queue has no edges to
        re-point.  Everything else bails out to :meth:`admit`, whose lock
        check is pure up to that point — the fallback is bit-identical.
        """
        if type(self) is not TwoPhaseLockingBackend:
            return None
        scheduler = self.scheduler
        backend = self
        admit = self.admit
        active = TransactionStatus.ACTIVE
        exclusive = LockMode.EXCLUSIVE
        shared = LockMode.SHARED
        pool_requests = scheduler.pool_requests
        handle_pool = scheduler.handle_pool

        def fused_submit(
            transaction_id: int, object_name: str, invocation: Invocation
        ) -> RequestHandle:
            try:
                transaction = scheduler.transactions[transaction_id]
            except KeyError:
                raise TransactionStateError(
                    f"unknown transaction {transaction_id}"
                ) from None
            if transaction.status is not active:
                transaction.require(active)
            try:
                manager = scheduler.objects[object_name]
            except KeyError:
                raise UnknownObjectError(object_name) from None
            if pool_requests and handle_pool.free:
                # Pooled handle: reinitialised field by field, so the fast
                # path's observable state matches a fresh construction.
                handle_pool.reused += 1
                handle = handle_pool.free.pop()
                handle.transaction_id = transaction_id
                handle.object_name = object_name
                handle.invocation = invocation
                handle.status = None
            else:
                handle_pool.created += pool_requests
                handle = RequestHandle(
                    transaction_id=transaction_id,
                    object_name=object_name,
                    invocation=invocation,
                )
            if manager.blocked or (
                manager.materialize_state and manager._op_functions is None
            ):
                admit(transaction, manager, handle, False)
                if pool_requests:
                    handles = transaction.handles
                    if handles is None:
                        handles = transaction.handles = []
                    handles.append(handle)
                return handle
            mode = backend.required_mode(manager, invocation)
            try:
                holders = backend._locks[object_name]
            except KeyError:
                holders = None
                held = None
            else:
                held = holders.get(transaction_id)
            if not (held is exclusive or (held is not None and mode is shared)):
                if holders:
                    for tid, granted in holders.items():
                        if tid != transaction_id and (
                            mode is exclusive or granted is exclusive
                        ):
                            admit(transaction, manager, handle, False)
                            if pool_requests:
                                handles = transaction.handles
                                if handles is None:
                                    handles = transaction.handles = []
                                handles.append(handle)
                            return handle
            changed = backend._acquire(object_name, transaction_id, mode)
            if (
                _grant_fused(
                    scheduler,
                    transaction,
                    manager,
                    handle,
                    invocation,
                    transaction_id,
                    None,
                )
                is None
            ):
                # The spec cannot be direct-applied: finish through the
                # general path (the second _acquire is a no-op).
                admit(transaction, manager, handle, False)
                if pool_requests:
                    handles = transaction.handles
                    if handles is None:
                        handles = transaction.handles = []
                    handles.append(handle)
                return handle
            if changed:
                backend._refresh_waiters(manager)
            if pool_requests:
                handles = transaction.handles
                if handles is None:
                    handles = transaction.handles = []
                handles.append(handle)
            return handle

        return fused_submit

    def _refresh_waiters(self, manager: "ObjectManager") -> None:
        """Re-point waiters' wait-for edges after a lock grant or upgrade.

        A newly granted (or upgraded) lock may add the grantee to the conflict
        set of requests already waiting on the object; their wait-for edges
        must reflect that or a deadlock could go undetected.
        """
        scheduler = self.scheduler
        restart = True
        while restart:
            restart = False
            # Iterate the live queue so ``upto`` always describes the current
            # FIFO order.  The only mutating outcome is an abort (refresh
            # returns True), whose termination cascade may dequeue or grant
            # other waiters — restart the scan from a consistent view then.
            for index, pending in enumerate(manager.blocked):
                waiter = scheduler.transactions.get(pending.transaction_id)
                if waiter is None or waiter.status is not TransactionStatus.BLOCKED:
                    continue
                conflicting = self.blocking_conflicts(
                    manager, pending.invocation, pending.transaction_id, upto=index
                )
                if scheduler.refresh_wait_edges(waiter, conflicting):
                    restart = True
                    break

    def commit(self, transaction: Transaction) -> TransactionStatus:
        # Strict 2PL: all locks were held to this point, so the commit is
        # always immediate — pseudo-commit never arises.
        self.scheduler.finalize_commit(transaction)
        return TransactionStatus.COMMITTED

    def on_terminate(self, transaction: Transaction, retry_objects: Set[str]) -> None:
        held = self._held.pop(transaction.tid, set())
        for object_name in held:
            holders = self._locks.get(object_name)
            if holders is not None:
                holders.pop(transaction.tid, None)
                if not holders:
                    del self._locks[object_name]
        super().on_terminate(transaction, set(retry_objects) | held)

    def reset(self) -> None:
        self._locks.clear()
        self._held.clear()

    # ------------------------------------------------------------------
    # Retry support
    # ------------------------------------------------------------------
    def blocking_conflicts(
        self,
        manager: "ObjectManager",
        invocation: Invocation,
        transaction_id: int,
        upto: Optional[int] = None,
    ) -> Set[int]:
        mode = self.required_mode(manager, invocation)
        held = self._locks.get(manager.name, {}).get(transaction_id)
        if self._covered(held, mode):
            return set()
        conflicting = self._lock_conflicts(manager, mode, transaction_id)
        if held is None and self.scheduler.fair:
            conflicting |= self._queued_conflicts(manager, mode, transaction_id, upto=upto)
        return conflicting


def make_backend(policy: ConflictPolicy) -> ConcurrencyControlBackend:
    """Construct the backend a :class:`~repro.core.policy.ConflictPolicy` selects."""
    if policy is ConflictPolicy.TWO_PHASE_LOCKING:
        return TwoPhaseLockingBackend()
    return SemanticBackend()
