"""Per-object managers: execution logs, conflict classification, and state.

The paper assumes "the existence of an object manager for each object" that
"maintains an execution log of uncommitted operations on that object" and
uses the compatibility table to decide, at run time, how a requested operation
relates to the uncommitted operations already executed (Section 4).

This module implements that manager.  State handling follows the paper's own
abort semantics (Definition 4): the *committed* state of the object is kept
separately from the log of uncommitted operations, and the visible state is
the committed state with all uncommitted operations replayed over it.  Undoing
a transaction is then literally "its operations are deleted from the log" —
the visible state is recomputed from what remains, which is correct for any
sound log and needs no type-specific undo code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .compatibility import CompatibilitySpec, ConflictClass
from .policy import ConflictPolicy, effective_class
from .specification import Event, Invocation, OperationResult, TypeSpecification

#: One compiled policy table: ``(unconditional, same_param, diff_param)``
#: flat arrays indexed by ``requested_id * n_ops + executed_id``.  The
#: ``unconditional`` entry is the :class:`ConflictClass` when the pair's
#: classification does not depend on parameters (the overwhelmingly common
#: case), else ``None`` — then the parameter comparison picks between the
#: ``same_param`` and ``diff_param`` arrays (the paper's Yes-SP / Yes-DP
#: qualifiers).
_CompiledTables = Tuple[
    Tuple[Optional[ConflictClass], ...],
    Tuple[ConflictClass, ...],
    Tuple[ConflictClass, ...],
]

__all__ = ["PendingRequest", "Classification", "ObjectManager"]


@dataclass(slots=True)
class PendingRequest:
    """A blocked operation request queued at an object manager.

    ``payload`` is opaque to the manager; the scheduler stores its
    :class:`~repro.core.scheduler.RequestHandle` there so it can publish the
    result when the request is eventually granted.  ``op_id`` and ``param``
    are the manager-interned identity of the invocation, stamped once by
    :meth:`ObjectManager.enqueue_blocked` so queue scans never re-derive them
    (``op_id == -1`` marks an invocation outside the compiled tables).
    """

    transaction_id: int
    invocation: Invocation
    payload: Any = None
    op_id: int = -1
    param: Any = None
    #: Bumped each time the box is retired to an object pool (request
    #: pooling); mirrors :class:`~repro.core.requests.RequestHandle`.
    generation: int = 0

    def retire(self) -> None:
        """Return the box to its pool: drop every request-specific field."""
        self.generation += 1
        self.payload = None
        self.param = None
        self.op_id = -1


@dataclass(slots=True)
class _OperationGroup:
    """All uncommitted operations sharing one (op id, conflict parameter).

    Classification depends on an invocation only through its operation name
    and its :meth:`~repro.core.specification.TypeSpecification.conflict_parameter`,
    so one representative invocation stands for the whole group.  ``owners``
    counts live operations per transaction, which lets
    :meth:`ObjectManager.classify_request` touch each *distinct* operation
    once instead of walking the full uncommitted log.  ``op_id`` is the
    interned small-int id of the operation (``-1`` for the fallback groups of
    unhashable-parameter or table-unknown invocations) and ``param`` its
    conflict parameter — together they index the compiled policy tables
    without rebuilding a tuple key per probe.
    """

    invocation: Invocation
    op_id: int
    param: Any
    owners: Dict[int, int] = field(default_factory=dict)


@dataclass(slots=True)
class Classification:
    """Outcome of classifying a request against the uncommitted operations.

    ``conflicting`` and ``recoverable`` are sets of transaction ids: the
    still-live transactions whose uncommitted operations the request does not
    commute with.  A transaction appears in ``conflicting`` if *any* of its
    operations is a (policy-effective) conflict with the request, otherwise in
    ``recoverable`` if any of its operations requires a commit dependency.
    Transactions all of whose operations commute with the request appear in
    neither set.
    """

    conflicting: Set[int] = field(default_factory=set)
    recoverable: Set[int] = field(default_factory=set)

    @property
    def admissible(self) -> bool:
        """True when the request can execute right away (possibly with
        commit dependencies)."""
        return not self.conflicting

    @property
    def is_commutative(self) -> bool:
        """True when the request commutes with every uncommitted operation."""
        return not self.conflicting and not self.recoverable


class ObjectManager:
    """Manager of a single shared object.

    Parameters
    ----------
    name:
        The object's name (unique within a scheduler).
    spec:
        The object's :class:`~repro.core.specification.TypeSpecification`.
    compatibility:
        The compatibility tables to use.  Defaults to the type's declared
        tables; the simulation workloads pass randomly generated tables here.
    initial_state:
        Starting committed state; defaults to ``spec.initial_state()``.
    materialize_state:
        When ``False`` the manager skips applying operations to real states
        and records ``None`` return values.  The simulator uses this for the
        abstract-data-type workload, whose operations have no executable
        semantics (their behaviour is fully described by the random table).
    """

    def __init__(
        self,
        name: str,
        spec: TypeSpecification,
        compatibility: Optional[CompatibilitySpec] = None,
        initial_state: Any = None,
        materialize_state: bool = True,
    ):
        self.name = name
        self.spec = spec
        self.compatibility = compatibility if compatibility is not None else spec.compatibility()
        self.materialize_state = materialize_state
        self.committed_state: Any = (
            spec.initial_state() if initial_state is None else initial_state
        )
        self.current_state: Any = self.committed_state
        #: The committed state this manager started from.  ``reset()``
        #: restores it by reference: states are treated as immutable by the
        #: whole framework (operations return new states), so sharing is safe.
        self._initial_committed: Any = self.committed_state
        #: Uncommitted operations, in execution order.  Operations of
        #: pseudo-committed transactions stay here until the durable commit.
        self.uncommitted: List[Event] = []
        #: FIFO queue of blocked requests.
        self.blocked: List[PendingRequest] = []
        #: Uncommitted operations grouped by (op id, conflict parameter);
        #: kept in sync with ``uncommitted`` by ``execute``/``remove_transaction``.
        self._op_groups: Dict[Any, _OperationGroup] = {}
        #: Uncommitted events per transaction (same objects as ``uncommitted``).
        self._events_by_tid: Dict[int, List[Event]] = {}
        #: Interned operation ids: table operations in declared order.  The
        #: compiled per-policy tables below are flat arrays indexed by
        #: ``requested_id * n + executed_id`` — classification is two int
        #: index operations instead of tuple-key construction + dict probes.
        operations = self.compatibility.operations
        self._op_index: Dict[str, int] = {op: i for i, op in enumerate(operations)}
        self._n_ops = len(operations)
        #: True when the spec uses the default conflict parameter (the raw
        #: argument tuple) — lets the hot path skip a method call per probe.
        self._param_is_args = (
            type(self.spec).conflict_parameter is TypeSpecification.conflict_parameter
        )
        #: Raw operation functions keyed by op name, for specs that use the
        #: stock ``apply``/``operation`` dispatch.  Applying through the chain
        #: ``spec.apply -> spec.operation -> OperationSpec.apply -> function``
        #: costs four interpreter frames per operation; on the hot execute and
        #: replay paths the manager calls the function directly instead.  A
        #: spec that overrides either hook keeps the full legacy path
        #: (``_op_functions`` stays ``None``).
        self._op_functions: Optional[Dict[str, Callable[[Any, Tuple[Any, ...]], Any]]]
        if (
            type(self.spec).apply is TypeSpecification.apply
            and type(self.spec).operation is TypeSpecification.operation
        ):
            self._op_functions = {
                op_name: op.function for op_name, op in self.spec.operations().items()
            }
        else:
            self._op_functions = None
        #: Compiled tables per policy, built on first use.  A run exercises a
        #: single policy, so the hot paths check ``_compiled_policy`` by
        #: identity (no enum hash) before falling back to the dict.  Tables
        #: are fixed for the manager's lifetime, so entries never go stale.
        self._policy_tables: Dict[ConflictPolicy, _CompiledTables] = {}
        self._compiled_policy: Optional[ConflictPolicy] = None
        self._compiled_tables: Optional[_CompiledTables] = None
        #: Group key per live uncommitted event (keyed by ``id(event)``;
        #: entries are dropped in ``_unindex_event`` while the event is still
        #: referenced, so ids cannot be recycled underneath the map).
        self._group_key_by_event: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _compile_policy(self, policy: ConflictPolicy) -> _CompiledTables:
        """Precompile both relation tables into flat per-policy arrays.

        Every (requested, executed) operation pair is resolved through the
        paper's Figure-2 algorithm (commutativity first, then recoverability)
        for both the same-parameter and different-parameter case, then mapped
        through the policy; parameter-independent results land in the
        ``unconditional`` array so the fast path never compares parameters.
        """
        commutativity = self.compatibility.commutativity
        recoverability = self.compatibility.recoverability
        operations = self.compatibility.operations
        count = len(operations) * len(operations)
        unconditional: List[Optional[ConflictClass]] = [None] * count
        same_param: List[ConflictClass] = [ConflictClass.CONFLICT] * count
        diff_param: List[ConflictClass] = [ConflictClass.CONFLICT] * count
        index = 0
        for requested_op in operations:
            for executed_op in operations:
                commute = commutativity.answer(requested_op, executed_op)
                recover = recoverability.answer(requested_op, executed_op)
                if commute.holds(True):
                    same_case = ConflictClass.COMMUTATIVE
                elif recover.holds(True):
                    same_case = ConflictClass.RECOVERABLE
                else:
                    same_case = ConflictClass.CONFLICT
                if commute.holds(False):
                    diff_case = ConflictClass.COMMUTATIVE
                elif recover.holds(False):
                    diff_case = ConflictClass.RECOVERABLE
                else:
                    diff_case = ConflictClass.CONFLICT
                same_case = effective_class(policy, same_case)
                diff_case = effective_class(policy, diff_case)
                same_param[index] = same_case
                diff_param[index] = diff_case
                if same_case is diff_case:
                    unconditional[index] = same_case
                index += 1
        compiled = (tuple(unconditional), tuple(same_param), tuple(diff_param))
        self._policy_tables[policy] = compiled
        return compiled

    def _tables_for(self, policy: ConflictPolicy) -> _CompiledTables:
        """The compiled tables of ``policy`` (identity-checked fast path)."""
        if policy is self._compiled_policy:
            tables = self._compiled_tables
            assert tables is not None
            return tables
        tables = self._policy_tables.get(policy)
        if tables is None:
            tables = self._compile_policy(policy)
        self._compiled_policy = policy
        self._compiled_tables = tables
        return tables

    def _conflict_param(self, invocation: Invocation) -> Any:
        """The invocation's conflict parameter (same/different-parameter key)."""
        if self._param_is_args:
            return invocation.args
        return self.spec.conflict_parameter(invocation)

    def classify_pair(
        self, requested: Invocation, executed: Invocation, policy: ConflictPolicy
    ) -> ConflictClass:
        """Classify one requested/executed invocation pair under ``policy``."""
        op_index = self._op_index
        requested_id = op_index.get(requested.op)
        executed_id = op_index.get(executed.op)
        if requested_id is None or executed_id is None:
            # Operation outside the declared tables (test-only territory):
            # resolve through the tables' default answers directly.
            pairwise = self.compatibility.classify(requested, executed, self.spec)
            return effective_class(policy, pairwise)
        if policy is self._compiled_policy:
            tables = self._compiled_tables
        else:
            tables = self._tables_for(policy)
        index = requested_id * self._n_ops + executed_id
        unconditional = tables[0][index]
        if unconditional is not None:
            return unconditional
        if self._conflict_param(requested) == self._conflict_param(executed):
            return tables[1][index]
        return tables[2][index]

    def classify_request(
        self, invocation: Invocation, transaction_id: int, policy: ConflictPolicy
    ) -> Classification:
        """Classify a request against every uncommitted operation of *other*
        transactions (a transaction never conflicts with itself)."""
        result = Classification()
        op_groups = self._op_groups
        if not op_groups:
            return result
        requested_id = self._op_index.get(invocation.op)
        if policy is self._compiled_policy:
            tables = self._compiled_tables
        else:
            tables = self._tables_for(policy)
        unconditional_table, same_table, diff_table = tables
        if self._param_is_args:
            requested_param = invocation.args
        else:
            requested_param = self.spec.conflict_parameter(invocation)
        base = -1 if requested_id is None else requested_id * self._n_ops
        conflicting = result.conflicting
        recoverable = result.recoverable
        commutative = ConflictClass.COMMUTATIVE
        conflict = ConflictClass.CONFLICT
        for group in op_groups.values():
            owners = group.owners
            if not owners or (len(owners) == 1 and transaction_id in owners):
                continue
            group_id = group.op_id
            if group_id < 0 or base < 0:
                pairwise = self.classify_pair(invocation, group.invocation, policy)
            else:
                index = base + group_id
                pairwise = unconditional_table[index]
                if pairwise is None:
                    if requested_param == group.param:
                        pairwise = same_table[index]
                    else:
                        pairwise = diff_table[index]
            if pairwise is commutative:
                continue
            others = [tid for tid in owners if tid != transaction_id]
            if pairwise is conflict:
                conflicting.update(others)
            else:
                recoverable.update(others)
        recoverable -= conflicting
        return result

    def blocked_conflicts(
        self,
        invocation: Invocation,
        transaction_id: int,
        policy: ConflictPolicy,
        upto: Optional[int] = None,
    ) -> Set[int]:
        """Owners of *blocked* requests the invocation conflicts with.

        Used by fair scheduling: an incoming request must not overtake a
        blocked request it conflicts with.  ``upto`` restricts the check to
        the first ``upto`` queue entries (used when re-examining the queue
        itself, where only requests *ahead* of the candidate matter).
        """
        owners: Set[int] = set()
        queue = self.blocked
        limit = len(queue) if upto is None else min(upto, len(queue))
        if not limit:
            return owners
        requested_id = self._op_index.get(invocation.op)
        if policy is self._compiled_policy:
            tables = self._compiled_tables
        else:
            tables = self._tables_for(policy)
        unconditional_table, same_table, diff_table = tables
        if self._param_is_args:
            requested_param = invocation.args
        else:
            requested_param = self.spec.conflict_parameter(invocation)
        base = -1 if requested_id is None else requested_id * self._n_ops
        conflict = ConflictClass.CONFLICT
        for position in range(limit):
            pending = queue[position]
            if pending.transaction_id == transaction_id:
                continue
            executed_id = pending.op_id
            if executed_id < 0 or base < 0:
                pairwise = self.classify_pair(invocation, pending.invocation, policy)
            else:
                index = base + executed_id
                pairwise = unconditional_table[index]
                if pairwise is None:
                    if requested_param == pending.param:
                        pairwise = same_table[index]
                    else:
                        pairwise = diff_table[index]
            if pairwise is conflict:
                owners.add(pending.transaction_id)
        return owners

    # ------------------------------------------------------------------
    # Execution and the uncommitted log
    # ------------------------------------------------------------------
    def execute(self, invocation: Invocation, transaction_id: int, sequence: int) -> Event:
        """Execute an admitted invocation against the visible state.

        Returns the resulting :class:`Event` (already appended to the
        manager's uncommitted log).
        """
        if self.materialize_state:
            fns = self._op_functions
            if fns is not None:
                try:
                    fn = fns[invocation.op]
                except KeyError:
                    fn = None
                if fn is not None:
                    result = fn(self.current_state, invocation.args)
                    if result.__class__ is not OperationResult:
                        # Non-conforming return: re-run through the legacy
                        # chain for its exact validation error (functions are
                        # pure, so the second application is safe).
                        result = self.spec.apply(self.current_state, invocation)
                else:
                    result = self.spec.apply(self.current_state, invocation)
            else:
                result = self.spec.apply(self.current_state, invocation)
            self.current_state = result.state
            value = result.value
        else:
            value = None
        event = Event(
            object_name=self.name,
            invocation=invocation,
            value=value,
            transaction_id=transaction_id,
            sequence=sequence,
        )
        self.uncommitted.append(event)
        self._events_by_tid.setdefault(transaction_id, []).append(event)
        self._index_event(event)
        return event

    def _group_key(self, invocation: Invocation) -> Any:
        """Interned (op id, conflict parameter) identity of an invocation,
        or ``None`` when the op is outside the tables or the parameter is
        unhashable — such events get their own fallback group."""
        op_id = self._op_index.get(invocation.op)
        if op_id is None:
            return None
        if self._param_is_args:
            param = invocation.args
        else:
            param = self.spec.conflict_parameter(invocation)
        try:
            hash(param)
        except TypeError:
            return None
        return (op_id, param)

    def _index_event(self, event: Event) -> None:
        key = self._group_key(event.invocation)
        if key is None:
            # Unhashable parameter or table-unknown op: give the event its
            # own group so classification still sees it (without sharing).
            key = ("__unhashable__", id(event))
            op_id: int = -1
            param: Any = None
        else:
            op_id, param = key
        self._group_key_by_event[id(event)] = key
        group = self._op_groups.get(key)
        if group is None:
            group = self._op_groups[key] = _OperationGroup(
                invocation=event.invocation, op_id=op_id, param=param
            )
        owners = group.owners
        owners[event.transaction_id] = owners.get(event.transaction_id, 0) + 1

    def _unindex_event(self, event: Event) -> None:
        key = self._group_key_by_event.pop(id(event), None)
        if key is None:
            key = self._group_key(event.invocation)
            if key is None:
                key = ("__unhashable__", id(event))
        group = self._op_groups.get(key)
        if group is None:
            return
        count = group.owners.get(event.transaction_id, 0) - 1
        if count > 0:
            group.owners[event.transaction_id] = count
        else:
            group.owners.pop(event.transaction_id, None)
            if not group.owners:
                del self._op_groups[key]

    def live_transactions(self) -> Set[int]:
        """Transactions with at least one uncommitted operation here."""
        return set(self._events_by_tid)

    def events_of(self, transaction_id: int) -> List[Event]:
        """Uncommitted events of one transaction, in execution order."""
        return list(self._events_by_tid.get(transaction_id, ()))

    def remove_transaction(self, transaction_id: int, commit: bool) -> List[Event]:
        """Remove a transaction's operations from the uncommitted log.

        On *commit* the operations are folded into the committed state (in
        their original execution order); on *abort* they are simply dropped.
        Either way the visible state is recomputed by replaying the surviving
        uncommitted operations over the committed state — the paper's
        ``E || A_j`` semantics.
        """
        removed = self._events_by_tid.pop(transaction_id, None)
        if not removed:
            return []
        self.uncommitted = [
            e for e in self.uncommitted if e.transaction_id != transaction_id
        ]
        for event in removed:
            self._unindex_event(event)
        if commit and self.materialize_state:
            self.committed_state = self._replay(self.committed_state, removed)
        if self.materialize_state:
            if not self.uncommitted:
                self.current_state = self.committed_state
            elif commit and removed[-1].sequence < self.uncommitted[0].sequence:
                # The committed operations formed a prefix of the uncommitted
                # log, so folding them into the committed state leaves the
                # visible state exactly as it was — no replay needed.
                pass
            else:
                self.current_state = self._replay(self.committed_state, self.uncommitted)
        return removed

    def _replay(self, state: Any, events: List[Event]) -> Any:
        """Fold ``events`` over ``state`` (the replay kernel of removal).

        Calls the raw operation functions directly when the spec uses the
        stock dispatch; the legacy ``next_state`` chain costs several
        interpreter frames per replayed event.
        """
        fns = self._op_functions
        spec = self.spec
        if fns is None:
            for event in events:
                state = spec.next_state(state, event.invocation)
            return state
        for event in events:
            invocation = event.invocation
            try:
                fn = fns[invocation.op]
            except KeyError:
                state = spec.apply(state, invocation).state
                continue
            result = fn(state, invocation.args)
            if result.__class__ is not OperationResult:
                result = spec.apply(state, invocation)
            state = result.state
        return state

    # ------------------------------------------------------------------
    # Blocked queue maintenance
    # ------------------------------------------------------------------
    def enqueue_blocked(self, request: PendingRequest) -> None:
        """Append a blocked request to the FIFO queue.

        Stamps the manager-interned (op id, conflict parameter) identity on
        the request so queue scans (:meth:`blocked_conflicts`) classify it
        with two int index operations instead of re-deriving tuple keys.
        """
        invocation = request.invocation
        op_id = self._op_index.get(invocation.op)
        if op_id is not None:
            request.op_id = op_id
            if self._param_is_args:
                request.param = invocation.args
            else:
                request.param = self.spec.conflict_parameter(invocation)
        self.blocked.append(request)

    def remove_blocked_of(self, transaction_id: int) -> List[PendingRequest]:
        """Drop (and return) every queued request owned by ``transaction_id``."""
        removed = [p for p in self.blocked if p.transaction_id == transaction_id]
        if removed:
            self.blocked = [p for p in self.blocked if p.transaction_id != transaction_id]
        return removed

    # ------------------------------------------------------------------
    # Reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the manager to its just-constructed state.

        Run state (log, queue, indexes, visible state) goes back to the
        initial committed state; the construction-time artifacts that make
        managers expensive to build — compiled policy tables, interned
        operation ids, the direct-apply function table — are kept, which is
        the whole point of resetting instead of rebuilding.
        """
        self.committed_state = self._initial_committed
        self.current_state = self._initial_committed
        self.uncommitted.clear()
        self.blocked.clear()
        self._op_groups.clear()
        self._events_by_tid.clear()
        self._group_key_by_event.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ObjectManager {self.name!r} type={self.spec.name!r} "
            f"uncommitted={len(self.uncommitted)} blocked={len(self.blocked)}>"
        )
