"""Per-object managers: execution logs, conflict classification, and state.

The paper assumes "the existence of an object manager for each object" that
"maintains an execution log of uncommitted operations on that object" and
uses the compatibility table to decide, at run time, how a requested operation
relates to the uncommitted operations already executed (Section 4).

This module implements that manager.  State handling follows the paper's own
abort semantics (Definition 4): the *committed* state of the object is kept
separately from the log of uncommitted operations, and the visible state is
the committed state with all uncommitted operations replayed over it.  Undoing
a transaction is then literally "its operations are deleted from the log" —
the visible state is recomputed from what remains, which is correct for any
sound log and needs no type-specific undo code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .compatibility import CompatibilitySpec, ConflictClass
from .errors import SpecificationError
from .policy import ConflictPolicy, effective_class
from .specification import Event, Invocation, TypeSpecification

__all__ = ["PendingRequest", "Classification", "ObjectManager"]


@dataclass
class PendingRequest:
    """A blocked operation request queued at an object manager.

    ``payload`` is opaque to the manager; the scheduler stores its
    :class:`~repro.core.scheduler.RequestHandle` there so it can publish the
    result when the request is eventually granted.
    """

    transaction_id: int
    invocation: Invocation
    payload: Any = None


@dataclass
class Classification:
    """Outcome of classifying a request against the uncommitted operations.

    ``conflicting`` and ``recoverable`` are sets of transaction ids: the
    still-live transactions whose uncommitted operations the request does not
    commute with.  A transaction appears in ``conflicting`` if *any* of its
    operations is a (policy-effective) conflict with the request, otherwise in
    ``recoverable`` if any of its operations requires a commit dependency.
    Transactions all of whose operations commute with the request appear in
    neither set.
    """

    conflicting: Set[int] = field(default_factory=set)
    recoverable: Set[int] = field(default_factory=set)

    @property
    def admissible(self) -> bool:
        """True when the request can execute right away (possibly with
        commit dependencies)."""
        return not self.conflicting

    @property
    def is_commutative(self) -> bool:
        """True when the request commutes with every uncommitted operation."""
        return not self.conflicting and not self.recoverable


class ObjectManager:
    """Manager of a single shared object.

    Parameters
    ----------
    name:
        The object's name (unique within a scheduler).
    spec:
        The object's :class:`~repro.core.specification.TypeSpecification`.
    compatibility:
        The compatibility tables to use.  Defaults to the type's declared
        tables; the simulation workloads pass randomly generated tables here.
    initial_state:
        Starting committed state; defaults to ``spec.initial_state()``.
    materialize_state:
        When ``False`` the manager skips applying operations to real states
        and records ``None`` return values.  The simulator uses this for the
        abstract-data-type workload, whose operations have no executable
        semantics (their behaviour is fully described by the random table).
    """

    def __init__(
        self,
        name: str,
        spec: TypeSpecification,
        compatibility: Optional[CompatibilitySpec] = None,
        initial_state: Any = None,
        materialize_state: bool = True,
    ):
        self.name = name
        self.spec = spec
        self.compatibility = compatibility if compatibility is not None else spec.compatibility()
        self.materialize_state = materialize_state
        self.committed_state: Any = (
            spec.initial_state() if initial_state is None else initial_state
        )
        self.current_state: Any = self.committed_state
        #: Uncommitted operations, in execution order.  Operations of
        #: pseudo-committed transactions stay here until the durable commit.
        self.uncommitted: List[Event] = []
        #: FIFO queue of blocked requests.
        self.blocked: List[PendingRequest] = []

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify_pair(
        self, requested: Invocation, executed: Invocation, policy: ConflictPolicy
    ) -> ConflictClass:
        """Classify one requested/executed invocation pair under ``policy``."""
        pairwise = self.compatibility.classify(requested, executed, self.spec)
        return effective_class(policy, pairwise)

    def classify_request(
        self, invocation: Invocation, transaction_id: int, policy: ConflictPolicy
    ) -> Classification:
        """Classify a request against every uncommitted operation of *other*
        transactions (a transaction never conflicts with itself)."""
        result = Classification()
        for event in self.uncommitted:
            if event.transaction_id == transaction_id:
                continue
            pairwise = self.classify_pair(invocation, event.invocation, policy)
            if pairwise is ConflictClass.CONFLICT:
                result.conflicting.add(event.transaction_id)
                result.recoverable.discard(event.transaction_id)
            elif pairwise is ConflictClass.RECOVERABLE:
                if event.transaction_id not in result.conflicting:
                    result.recoverable.add(event.transaction_id)
        return result

    def blocked_conflicts(
        self,
        invocation: Invocation,
        transaction_id: int,
        policy: ConflictPolicy,
        upto: Optional[int] = None,
    ) -> Set[int]:
        """Owners of *blocked* requests the invocation conflicts with.

        Used by fair scheduling: an incoming request must not overtake a
        blocked request it conflicts with.  ``upto`` restricts the check to
        the first ``upto`` queue entries (used when re-examining the queue
        itself, where only requests *ahead* of the candidate matter).
        """
        owners: Set[int] = set()
        queue = self.blocked if upto is None else self.blocked[:upto]
        for pending in queue:
            if pending.transaction_id == transaction_id:
                continue
            if self.classify_pair(invocation, pending.invocation, policy) is ConflictClass.CONFLICT:
                owners.add(pending.transaction_id)
        return owners

    # ------------------------------------------------------------------
    # Execution and the uncommitted log
    # ------------------------------------------------------------------
    def execute(self, invocation: Invocation, transaction_id: int, sequence: int) -> Event:
        """Execute an admitted invocation against the visible state.

        Returns the resulting :class:`Event` (already appended to the
        manager's uncommitted log).
        """
        if self.materialize_state:
            result = self.spec.apply(self.current_state, invocation)
            self.current_state = result.state
            value = result.value
        else:
            value = None
        event = Event(
            object_name=self.name,
            invocation=invocation,
            value=value,
            transaction_id=transaction_id,
            sequence=sequence,
        )
        self.uncommitted.append(event)
        return event

    def live_transactions(self) -> Set[int]:
        """Transactions with at least one uncommitted operation here."""
        return {event.transaction_id for event in self.uncommitted}

    def events_of(self, transaction_id: int) -> List[Event]:
        """Uncommitted events of one transaction, in execution order."""
        return [e for e in self.uncommitted if e.transaction_id == transaction_id]

    def remove_transaction(self, transaction_id: int, commit: bool) -> List[Event]:
        """Remove a transaction's operations from the uncommitted log.

        On *commit* the operations are folded into the committed state (in
        their original execution order); on *abort* they are simply dropped.
        Either way the visible state is recomputed by replaying the surviving
        uncommitted operations over the committed state — the paper's
        ``E || A_j`` semantics.
        """
        removed = self.events_of(transaction_id)
        if not removed:
            return removed
        if commit and self.materialize_state:
            state = self.committed_state
            for event in removed:
                state = self.spec.next_state(state, event.invocation)
            self.committed_state = state
        self.uncommitted = [
            e for e in self.uncommitted if e.transaction_id != transaction_id
        ]
        if self.materialize_state:
            state = self.committed_state
            for event in self.uncommitted:
                state = self.spec.next_state(state, event.invocation)
            self.current_state = state
        return removed

    # ------------------------------------------------------------------
    # Blocked queue maintenance
    # ------------------------------------------------------------------
    def enqueue_blocked(self, request: PendingRequest) -> None:
        """Append a blocked request to the FIFO queue."""
        self.blocked.append(request)

    def remove_blocked_of(self, transaction_id: int) -> List[PendingRequest]:
        """Drop (and return) every queued request owned by ``transaction_id``."""
        removed = [p for p in self.blocked if p.transaction_id == transaction_id]
        if removed:
            self.blocked = [p for p in self.blocked if p.transaction_id != transaction_id]
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ObjectManager {self.name!r} type={self.spec.name!r} "
            f"uncommitted={len(self.uncommitted)} blocked={len(self.blocked)}>"
        )
