"""Per-object managers: execution logs, conflict classification, and state.

The paper assumes "the existence of an object manager for each object" that
"maintains an execution log of uncommitted operations on that object" and
uses the compatibility table to decide, at run time, how a requested operation
relates to the uncommitted operations already executed (Section 4).

This module implements that manager.  State handling follows the paper's own
abort semantics (Definition 4): the *committed* state of the object is kept
separately from the log of uncommitted operations, and the visible state is
the committed state with all uncommitted operations replayed over it.  Undoing
a transaction is then literally "its operations are deleted from the log" —
the visible state is recomputed from what remains, which is correct for any
sound log and needs no type-specific undo code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from .compatibility import CompatibilitySpec, ConflictClass
from .policy import ConflictPolicy, effective_class
from .specification import Event, Invocation, TypeSpecification

__all__ = ["PendingRequest", "Classification", "ObjectManager"]


@dataclass(slots=True)
class PendingRequest:
    """A blocked operation request queued at an object manager.

    ``payload`` is opaque to the manager; the scheduler stores its
    :class:`~repro.core.scheduler.RequestHandle` there so it can publish the
    result when the request is eventually granted.
    """

    transaction_id: int
    invocation: Invocation
    payload: Any = None


@dataclass(slots=True)
class _OperationGroup:
    """All uncommitted operations sharing one (op name, conflict parameter).

    Classification depends on an invocation only through its operation name
    and its :meth:`~repro.core.specification.TypeSpecification.conflict_parameter`,
    so one representative invocation stands for the whole group.  ``owners``
    counts live operations per transaction, which lets
    :meth:`ObjectManager.classify_request` touch each *distinct* operation
    once instead of walking the full uncommitted log.
    """

    invocation: Invocation
    owners: Dict[int, int] = field(default_factory=dict)


@dataclass(slots=True)
class Classification:
    """Outcome of classifying a request against the uncommitted operations.

    ``conflicting`` and ``recoverable`` are sets of transaction ids: the
    still-live transactions whose uncommitted operations the request does not
    commute with.  A transaction appears in ``conflicting`` if *any* of its
    operations is a (policy-effective) conflict with the request, otherwise in
    ``recoverable`` if any of its operations requires a commit dependency.
    Transactions all of whose operations commute with the request appear in
    neither set.
    """

    conflicting: Set[int] = field(default_factory=set)
    recoverable: Set[int] = field(default_factory=set)

    @property
    def admissible(self) -> bool:
        """True when the request can execute right away (possibly with
        commit dependencies)."""
        return not self.conflicting

    @property
    def is_commutative(self) -> bool:
        """True when the request commutes with every uncommitted operation."""
        return not self.conflicting and not self.recoverable


class ObjectManager:
    """Manager of a single shared object.

    Parameters
    ----------
    name:
        The object's name (unique within a scheduler).
    spec:
        The object's :class:`~repro.core.specification.TypeSpecification`.
    compatibility:
        The compatibility tables to use.  Defaults to the type's declared
        tables; the simulation workloads pass randomly generated tables here.
    initial_state:
        Starting committed state; defaults to ``spec.initial_state()``.
    materialize_state:
        When ``False`` the manager skips applying operations to real states
        and records ``None`` return values.  The simulator uses this for the
        abstract-data-type workload, whose operations have no executable
        semantics (their behaviour is fully described by the random table).
    """

    def __init__(
        self,
        name: str,
        spec: TypeSpecification,
        compatibility: Optional[CompatibilitySpec] = None,
        initial_state: Any = None,
        materialize_state: bool = True,
    ):
        self.name = name
        self.spec = spec
        self.compatibility = compatibility if compatibility is not None else spec.compatibility()
        self.materialize_state = materialize_state
        self.committed_state: Any = (
            spec.initial_state() if initial_state is None else initial_state
        )
        self.current_state: Any = self.committed_state
        #: Uncommitted operations, in execution order.  Operations of
        #: pseudo-committed transactions stay here until the durable commit.
        self.uncommitted: List[Event] = []
        #: FIFO queue of blocked requests.
        self.blocked: List[PendingRequest] = []
        #: Uncommitted operations grouped by (op name, conflict parameter);
        #: kept in sync with ``uncommitted`` by ``execute``/``remove_transaction``.
        self._op_groups: Dict[Any, _OperationGroup] = {}
        #: Uncommitted events per transaction (same objects as ``uncommitted``).
        self._events_by_tid: Dict[int, List[Event]] = {}
        #: Memo of pairwise classifications, one dict per policy, keyed by
        #: the two invocations' (op, conflict parameter) pairs.  Keeping the
        #: policy out of the per-lookup key spares an enum ``__hash__`` per
        #: probe on the classification fast path.  Tables are fixed for the
        #: manager's lifetime, so entries never go stale.
        self._pair_caches: Dict[ConflictPolicy, Dict[Any, ConflictClass]] = {}

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _conflict_key(self, invocation: Invocation) -> Any:
        """Hashable identity of an invocation for classification purposes,
        or ``None`` when its conflict parameter is unhashable."""
        try:
            key = (invocation.op, self.spec.conflict_parameter(invocation))
            hash(key)
        except TypeError:
            return None
        return key

    def classify_pair(
        self, requested: Invocation, executed: Invocation, policy: ConflictPolicy
    ) -> ConflictClass:
        """Classify one requested/executed invocation pair under ``policy``."""
        requested_key = self._conflict_key(requested)
        executed_key = self._conflict_key(executed)
        if requested_key is None or executed_key is None:
            pairwise = self.compatibility.classify(requested, executed, self.spec)
            return effective_class(policy, pairwise)
        pair_cache = self._pair_caches.get(policy)
        if pair_cache is None:
            pair_cache = self._pair_caches[policy] = {}
        cache_key = (requested_key, executed_key)
        cached = pair_cache.get(cache_key)
        if cached is None:
            pairwise = self.compatibility.classify(requested, executed, self.spec)
            cached = effective_class(policy, pairwise)
            pair_cache[cache_key] = cached
        return cached

    def classify_request(
        self, invocation: Invocation, transaction_id: int, policy: ConflictPolicy
    ) -> Classification:
        """Classify a request against every uncommitted operation of *other*
        transactions (a transaction never conflicts with itself)."""
        result = Classification()
        op_groups = self._op_groups
        if not op_groups:
            return result
        requested_key = self._conflict_key(invocation)
        pair_cache = self._pair_caches.get(policy)
        if pair_cache is None:
            pair_cache = self._pair_caches[policy] = {}
        conflicting = result.conflicting
        recoverable = result.recoverable
        commutative = ConflictClass.COMMUTATIVE
        conflict = ConflictClass.CONFLICT
        for group_key, group in op_groups.items():
            owners = group.owners
            if not owners or (len(owners) == 1 and transaction_id in owners):
                continue
            # A hashable group's dict key *is* the executed side of the memo
            # key, so the hot path costs one cache lookup per distinct group.
            if requested_key is None or group_key[0] == "__unhashable__":
                pairwise = self.classify_pair(invocation, group.invocation, policy)
            else:
                pairwise = pair_cache.get((requested_key, group_key))
                if pairwise is None:
                    pairwise = effective_class(
                        policy,
                        self.compatibility.classify(invocation, group.invocation, self.spec),
                    )
                    pair_cache[(requested_key, group_key)] = pairwise
            if pairwise is commutative:
                continue
            others = [tid for tid in owners if tid != transaction_id]
            if pairwise is conflict:
                conflicting.update(others)
            else:
                recoverable.update(others)
        recoverable -= conflicting
        return result

    def blocked_conflicts(
        self,
        invocation: Invocation,
        transaction_id: int,
        policy: ConflictPolicy,
        upto: Optional[int] = None,
    ) -> Set[int]:
        """Owners of *blocked* requests the invocation conflicts with.

        Used by fair scheduling: an incoming request must not overtake a
        blocked request it conflicts with.  ``upto`` restricts the check to
        the first ``upto`` queue entries (used when re-examining the queue
        itself, where only requests *ahead* of the candidate matter).
        """
        owners: Set[int] = set()
        queue = self.blocked if upto is None else self.blocked[:upto]
        for pending in queue:
            if pending.transaction_id == transaction_id:
                continue
            if self.classify_pair(invocation, pending.invocation, policy) is ConflictClass.CONFLICT:
                owners.add(pending.transaction_id)
        return owners

    # ------------------------------------------------------------------
    # Execution and the uncommitted log
    # ------------------------------------------------------------------
    def execute(self, invocation: Invocation, transaction_id: int, sequence: int) -> Event:
        """Execute an admitted invocation against the visible state.

        Returns the resulting :class:`Event` (already appended to the
        manager's uncommitted log).
        """
        if self.materialize_state:
            result = self.spec.apply(self.current_state, invocation)
            self.current_state = result.state
            value = result.value
        else:
            value = None
        event = Event(
            object_name=self.name,
            invocation=invocation,
            value=value,
            transaction_id=transaction_id,
            sequence=sequence,
        )
        self.uncommitted.append(event)
        self._events_by_tid.setdefault(transaction_id, []).append(event)
        self._index_event(event)
        return event

    def _index_event(self, event: Event) -> None:
        key = self._conflict_key(event.invocation)
        if key is None:
            # Unhashable conflict parameter: give the event its own group so
            # classification still sees it (just without any sharing).
            key = ("__unhashable__", id(event))
        group = self._op_groups.get(key)
        if group is None:
            group = self._op_groups[key] = _OperationGroup(invocation=event.invocation)
        group.owners[event.transaction_id] = group.owners.get(event.transaction_id, 0) + 1

    def _unindex_event(self, event: Event) -> None:
        key = self._conflict_key(event.invocation)
        if key is None:
            key = ("__unhashable__", id(event))
        group = self._op_groups.get(key)
        if group is None:
            return
        count = group.owners.get(event.transaction_id, 0) - 1
        if count > 0:
            group.owners[event.transaction_id] = count
        else:
            group.owners.pop(event.transaction_id, None)
            if not group.owners:
                del self._op_groups[key]

    def live_transactions(self) -> Set[int]:
        """Transactions with at least one uncommitted operation here."""
        return set(self._events_by_tid)

    def events_of(self, transaction_id: int) -> List[Event]:
        """Uncommitted events of one transaction, in execution order."""
        return list(self._events_by_tid.get(transaction_id, ()))

    def remove_transaction(self, transaction_id: int, commit: bool) -> List[Event]:
        """Remove a transaction's operations from the uncommitted log.

        On *commit* the operations are folded into the committed state (in
        their original execution order); on *abort* they are simply dropped.
        Either way the visible state is recomputed by replaying the surviving
        uncommitted operations over the committed state — the paper's
        ``E || A_j`` semantics.
        """
        removed = self._events_by_tid.pop(transaction_id, None)
        if not removed:
            return []
        self.uncommitted = [
            e for e in self.uncommitted if e.transaction_id != transaction_id
        ]
        for event in removed:
            self._unindex_event(event)
        if commit and self.materialize_state:
            state = self.committed_state
            for event in removed:
                state = self.spec.next_state(state, event.invocation)
            self.committed_state = state
        if self.materialize_state:
            if not self.uncommitted:
                self.current_state = self.committed_state
            elif commit and removed[-1].sequence < self.uncommitted[0].sequence:
                # The committed operations formed a prefix of the uncommitted
                # log, so folding them into the committed state leaves the
                # visible state exactly as it was — no replay needed.
                pass
            else:
                state = self.committed_state
                for event in self.uncommitted:
                    state = self.spec.next_state(state, event.invocation)
                self.current_state = state
        return removed

    # ------------------------------------------------------------------
    # Blocked queue maintenance
    # ------------------------------------------------------------------
    def enqueue_blocked(self, request: PendingRequest) -> None:
        """Append a blocked request to the FIFO queue."""
        self.blocked.append(request)

    def remove_blocked_of(self, transaction_id: int) -> List[PendingRequest]:
        """Drop (and return) every queued request owned by ``transaction_id``."""
        removed = [p for p in self.blocked if p.transaction_id == transaction_id]
        if removed:
            self.blocked = [p for p in self.blocked if p.transaction_id != transaction_id]
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ObjectManager {self.name!r} type={self.spec.name!r} "
            f"uncommitted={len(self.uncommitted)} blocked={len(self.blocked)}>"
        )
