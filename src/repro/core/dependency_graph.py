"""The unified dependency graph: wait-for edges plus commit-dependency edges.

Section 4.2 of the paper combines deadlock detection and commit-dependency
cycle detection in a single graph.  Nodes are active transactions; an edge
``T_i -> T_j`` means *T_i cannot commit (or proceed) until T_j terminates*:

* a **wait-for** edge is added when ``T_i`` requests an operation that is not
  recoverable relative to an uncommitted operation of ``T_j`` — ``T_i`` blocks;
* a **commit-dependency** edge is added when ``T_i`` executes an operation that
  is recoverable (but not commutative) relative to an uncommitted operation of
  ``T_j`` — ``T_i`` may run now but must commit after ``T_j``.

A cycle (which may mix both edge kinds) would make the execution
unserializable or deadlocked, so the transaction whose request would close the
cycle is aborted.  Because both readings point "towards the transaction that
must terminate first", the commit rule for pseudo-committed transactions is
simply: a pseudo-committed transaction whose node has **out-degree zero** has
no one left to wait for and can be durably committed (Section 4.3).

Cycle checks are served by an **online topological order** maintained
Pearce–Kelly style (Pearce & Kelly 2006, "A Dynamic Topological Sort
Algorithm for Directed Acyclic Graphs").  The invariant, while the graph is
acyclic, is ``ord[u] > ord[v]`` for every edge ``u -> v`` — dependencies sort
*below* their dependents.  New transactions receive increasing positions, and
since a requester is almost always younger than the transactions it waits on,
the typical ``add_edge`` already respects the order and costs O(1); only an
order-violating insertion searches (and reorders) the affected region
``[ord[v], ord[u]]``.  ``creates_cycle(source, targets)`` is then O(1) for
order-respecting candidates: ``source`` can only be reachable from a target
placed *above* it.  Edge/node removals never invalidate a topological order,
so they need no maintenance at all — the old reachability cache and its
per-mutation eviction scan are gone.

The scheduler never inserts a cycle-closing edge (it asks first), but the
test suite builds deliberately cyclic graphs, so insertion tolerates them:
each edge that closes a cycle is recorded in ``_back_edges``; while any are
present the order is suspended and queries fall back to a plain DFS, and when
the last recorded back edge is removed the order is rebuilt from scratch.
Every cycle contains at least one recorded edge (its last-inserted edge was
detected as cycle-closing when added), so an empty ``_back_edges`` proves the
graph acyclic and the fast path sound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import AbstractSet, Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["EdgeKind", "Edge", "DependencyGraph"]


class EdgeKind(enum.Enum):
    """The two kinds of edges in the unified dependency graph."""

    WAIT_FOR = "wait-for"
    COMMIT_DEPENDENCY = "commit-dependency"


@dataclass(frozen=True)
class Edge:
    """A directed edge ``source -> target`` of a given kind."""

    source: int
    target: int
    kind: EdgeKind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.source} -[{self.kind.value}]-> T{self.target}"


class DependencyGraph:
    """Directed multigraph over transaction ids with typed edges.

    The graph is intentionally small (one node per active transaction) and the
    operations the scheduler needs — add edges, test for a cycle through a
    given node, drop a node, find nodes whose out-degree became zero — are all
    amortised near-constant thanks to the maintained topological order.
    """

    def __init__(self) -> None:
        # successors[node][target] -> set of edge kinds
        self._successors: Dict[int, Dict[int, Set[EdgeKind]]] = {}
        self._predecessors: Dict[int, Set[int]] = {}
        #: Online topological position per node; invariant (while acyclic):
        #: ``ord[u] > ord[v]`` for every edge ``u -> v``.
        self._ord: Dict[int, int] = {}
        self._next_ord = 0
        #: Edges recorded as cycle-closing at insertion time.  Non-empty means
        #: the graph may be cyclic: the order is suspended and cycle queries
        #: use a full DFS until these edges are gone (test-only territory —
        #: the scheduler checks ``creates_cycle`` before every insertion).
        self._back_edges: Set[Tuple[int, int]] = set()
        #: Monotonic count of topology changes (edges gained or lost).  An
        #: unchanged value guarantees the successor sets are unchanged, which
        #: lets derived structures (the multi-site router's union-graph cycle
        #: check) skip recomputation cheaply.
        self.mutations = 0

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> None:
        """Ensure ``node`` exists (idempotent)."""
        if node not in self._successors:
            self._successors[node] = {}
            self._predecessors[node] = set()
            self._ord[node] = self._next_ord
            self._next_ord += 1

    def has_node(self, node: int) -> bool:
        return node in self._successors

    def nodes(self) -> Set[int]:
        return set(self._successors)

    def remove_node(self, node: int) -> Set[int]:
        """Remove ``node`` and every edge touching it.

        Returns the set of former predecessors — the transactions that were
        waiting on (or commit-dependent on) the removed one.  The caller uses
        this to find pseudo-committed transactions that may now commit and
        blocked transactions that should be retried.
        """
        if node not in self._successors:
            return set()
        for target in list(self._successors[node]):
            self._predecessors[target].discard(node)
        former_predecessors = set(self._predecessors.get(node, ()))
        for predecessor in former_predecessors:
            self._successors[predecessor].pop(node, None)
        del self._successors[node]
        del self._predecessors[node]
        del self._ord[node]
        if self._back_edges:
            self._back_edges = {
                pair for pair in self._back_edges if node not in pair
            }
            if not self._back_edges:
                self._rebuild_order()
        self.mutations += 1
        return former_predecessors

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, source: int, target: int, kind: EdgeKind) -> None:
        """Add a typed edge; self-loops are ignored (a transaction never
        depends on itself)."""
        if source == target:
            return
        self.add_node(source)
        self.add_node(target)
        kinds = self._successors[source].setdefault(target, set())
        if not kinds:
            # Reachability only changes when the (source, target) pair gains
            # its *first* edge; a second kind is a no-op for the order too.
            self.mutations += 1
            self._order_edge_added(source, target)
        kinds.add(kind)
        self._predecessors[target].add(source)

    def _order_edge_added(self, source: int, target: int) -> None:
        """Restore the topological invariant after inserting an edge."""
        if self._back_edges:
            # Order suspended: just record whether this edge closes (another)
            # cycle, via an unbounded walk — the graph may already be cyclic.
            if self._dfs_reaches(target, source):
                self._back_edges.add((source, target))
            return
        ord_ = self._ord
        lower = ord_[source]
        upper = ord_[target]
        if lower > upper:
            return  # order-respecting: the common case, O(1)
        # Affected region is [lower, upper].  Forward walk from ``target``
        # collecting nodes that may need to move below ``source``; meeting
        # ``source`` means the new edge closes a cycle.
        successors = self._successors
        delta_forward = [target]
        seen_forward = {target}
        stack = [target]
        while stack:
            node = stack.pop()
            for child in successors[node]:
                if child == source:
                    # Cycle: keep the (now invalid) order frozen and fall
                    # back to DFS queries until this edge is removed.
                    self._back_edges.add((source, target))
                    return
                if child not in seen_forward and ord_[child] > lower:
                    seen_forward.add(child)
                    delta_forward.append(child)
                    stack.append(child)
        # Backward walk from ``source``: nodes inside the region that must
        # stay above everything reachable from ``target``.
        predecessors = self._predecessors
        delta_backward = [source]
        seen_backward = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            for parent in predecessors[node]:
                if parent not in seen_backward and ord_[parent] < upper:
                    seen_backward.add(parent)
                    delta_backward.append(parent)
                    stack.append(parent)
        # Reassign the pooled positions: the forward set (reachable from
        # ``target``) takes the low slots, the backward set (reaching
        # ``source``) the high slots; relative order inside each set is kept.
        delta_forward.sort(key=ord_.__getitem__)
        delta_backward.sort(key=ord_.__getitem__)
        moved = delta_forward + delta_backward
        pool = sorted(ord_[node] for node in moved)
        for position, node in zip(pool, moved):
            ord_[node] = position

    def add_edges(self, source: int, targets: Iterable[int], kind: EdgeKind) -> None:
        """Add edges from ``source`` to every node in ``targets``."""
        for target in targets:
            self.add_edge(source, target, kind)

    def remove_edges_from(self, source: int, kind: Optional[EdgeKind] = None) -> None:
        """Remove all outgoing edges of ``source`` (of one kind, or of any kind).

        Used when a blocked transaction's request is finally granted: its
        wait-for edges are stale and must not linger (they would cause
        spurious deadlock aborts later).  Removals never invalidate a valid
        topological order, so no maintenance is needed.
        """
        if source not in self._successors:
            return
        was_suspended = bool(self._back_edges)
        dropped_any = False
        for target in list(self._successors[source]):
            kinds = self._successors[source][target]
            if kind is None:
                kinds.clear()
            else:
                kinds.discard(kind)
            if not kinds:
                del self._successors[source][target]
                self._predecessors[target].discard(source)
                dropped_any = True
                if was_suspended:
                    self._back_edges.discard((source, target))
        if dropped_any:
            self.mutations += 1
            # The order only needs rebuilding when the graph just became
            # provably acyclic again after a cyclic episode (test-only path).
            if was_suspended and not self._back_edges:
                self._rebuild_order()

    def has_edge(self, source: int, target: int, kind: Optional[EdgeKind] = None) -> bool:
        kinds = self._successors.get(source, {}).get(target)
        if not kinds:
            return False
        return kind is None or kind in kinds

    def edges(self) -> List[Edge]:
        """All edges, one :class:`Edge` per (source, target, kind) triple."""
        result: List[Edge] = []
        for source, targets in self._successors.items():
            for target, kinds in targets.items():
                for kind in kinds:
                    result.append(Edge(source, target, kind))
        return result

    def successors(self, node: int) -> AbstractSet[int]:
        """Read-only view of ``node``'s successors (do not mutate)."""
        targets = self._successors.get(node)
        return targets.keys() if targets is not None else frozenset()

    def predecessors(self, node: int) -> AbstractSet[int]:
        """Read-only view of ``node``'s predecessors (do not mutate)."""
        sources = self._predecessors.get(node)
        return sources if sources is not None else frozenset()

    def successors_by_kind(self, node: int, kind: EdgeKind) -> Set[int]:
        """Successors linked from ``node`` by an edge of ``kind``."""
        targets = self._successors.get(node)
        if not targets:
            return set()
        return {target for target, kinds in targets.items() if kind in kinds}

    def out_degree(self, node: int, kind: Optional[EdgeKind] = None) -> int:
        """Number of distinct successor nodes (optionally of one edge kind)."""
        targets = self._successors.get(node, {})
        if kind is None:
            return len(targets)
        return sum(1 for kinds in targets.values() if kind in kinds)

    def edge_count(self, kind: Optional[EdgeKind] = None) -> int:
        """Number of typed edges (a pair linked by both kinds counts twice)."""
        return sum(
            len(kinds) if kind is None else (1 if kind in kinds else 0)
            for targets in self._successors.values()
            for kinds in targets.values()
        )

    # ------------------------------------------------------------------
    # Cycle detection
    # ------------------------------------------------------------------
    def _rebuild_order(self) -> None:
        """Recompute ``_ord`` from scratch (graph known acyclic).

        Iterative DFS postorder: a node finishes after all its successors,
        so assigning positions in finish order satisfies the invariant.
        Only runs when a cyclic episode ends — never on scheduler paths.
        """
        successors = self._successors
        order: Dict[int, int] = {}
        counter = 0
        visited: Set[int] = set()
        for root in successors:
            if root in visited:
                continue
            visited.add(root)
            stack: List[Tuple[int, Iterable[int]]] = [(root, iter(successors[root]))]
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if child not in visited:
                        visited.add(child)
                        stack.append((child, iter(successors[child])))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    order[node] = counter
                    counter += 1
        self._ord = order
        self._next_ord = counter

    def _dfs_reaches(self, start: int, goal: int) -> bool:
        """Unbounded DFS: can ``goal`` be reached from ``start``?

        The fallback (and test oracle) path — used only while the graph may
        be cyclic, when the topological bound cannot prune the walk.
        """
        successors = self._successors
        stack = list(successors.get(start, ()))
        seen: Set[int] = set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(successors[node])
        return False

    def reachable(self, start: int, goal: int) -> bool:
        """True if ``goal`` can be reached from ``start`` following edges.

        Kept as the plain full-DFS oracle for the equivalence tests; the
        scheduler paths use :meth:`creates_cycle`, which answers through the
        maintained order instead.
        """
        if start not in self._successors or goal not in self._successors:
            return False
        if start == goal:
            return True
        return self._dfs_reaches(start, goal)

    def creates_cycle(self, source: int, targets: Iterable[int]) -> bool:
        """Would adding edges ``source -> t`` for each target close a cycle?

        The new edges close a cycle exactly when ``source`` is already
        reachable from one of the targets (including the degenerate
        ``target == source`` case, which the scheduler filters out earlier).
        With the topological order, a target placed *below* ``source``
        (``ord[t] < ord[source]``) cannot reach it — answered in O(1); only
        targets above ``source`` trigger a walk, and that walk is pruned to
        the region above ``ord[source]``.
        """
        successors = self._successors
        if source not in successors:
            return False
        if self._back_edges:
            for target in targets:
                if target == source or target not in successors:
                    continue
                if self._dfs_reaches(target, source):
                    return True
            return False
        ord_ = self._ord
        source_position = ord_[source]
        stack: Optional[List[int]] = None
        for target in targets:
            if target == source or target not in successors:
                continue
            if ord_[target] > source_position:
                if stack is None:
                    stack = [target]
                else:
                    stack.append(target)
        if stack is None:
            return False
        seen = set(stack)
        while stack:
            node = stack.pop()
            for child in successors[node]:
                if child == source:
                    return True
                if child not in seen and ord_[child] > source_position:
                    seen.add(child)
                    stack.append(child)
        return False

    def has_cycle(self) -> bool:
        """Full-graph cycle test (used by tests and the offline checkers)."""
        return self.find_cycle() is not None

    def find_cycle(self) -> Optional[List[int]]:
        """Return one cycle as a list of nodes, or ``None`` if acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {node: WHITE for node in self._successors}
        parent: Dict[int, Optional[int]] = {}

        def visit(root: int) -> Optional[List[int]]:
            stack: List[Tuple[int, Iterable[int]]] = [(root, iter(self._successors[root]))]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [child, node]
                        walk = parent.get(node)
                        while walk is not None and walk != child:
                            cycle.append(walk)
                            walk = parent.get(walk)
                        cycle.reverse()
                        return cycle
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(self._successors[child])))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
            return None

        for node in self._successors:
            if colour[node] == WHITE:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None

    def order_violations(self) -> List[Tuple[int, int]]:
        """Edges violating the topological invariant (diagnostics/tests).

        Empty whenever ``_back_edges`` is empty — the property suite asserts
        exactly that after every mutation step.
        """
        ord_ = self._ord
        return [
            (source, target)
            for source, targets in self._successors.items()
            for target in targets
            if ord_[source] <= ord_[target]
        ]

    def zero_out_degree_nodes(self, candidates: Optional[Iterable[int]] = None) -> Set[int]:
        """Nodes with no outgoing edges (restricted to ``candidates`` if given)."""
        successors = self._successors
        if candidates is None:
            return {node for node, targets in successors.items() if not targets}
        return {
            node
            for node in candidates
            if node in successors and not successors[node]
        }

    def __len__(self) -> int:
        return len(self._successors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DependencyGraph nodes={len(self)} "
            f"wait_for={self.edge_count(EdgeKind.WAIT_FOR)} "
            f"commit_dep={self.edge_count(EdgeKind.COMMIT_DEPENDENCY)}>"
        )
