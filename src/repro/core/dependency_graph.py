"""The unified dependency graph: wait-for edges plus commit-dependency edges.

Section 4.2 of the paper combines deadlock detection and commit-dependency
cycle detection in a single graph.  Nodes are active transactions; an edge
``T_i -> T_j`` means *T_i cannot commit (or proceed) until T_j terminates*:

* a **wait-for** edge is added when ``T_i`` requests an operation that is not
  recoverable relative to an uncommitted operation of ``T_j`` — ``T_i`` blocks;
* a **commit-dependency** edge is added when ``T_i`` executes an operation that
  is recoverable (but not commutative) relative to an uncommitted operation of
  ``T_j`` — ``T_i`` may run now but must commit after ``T_j``.

A cycle (which may mix both edge kinds) would make the execution
unserializable or deadlocked, so the transaction whose request would close the
cycle is aborted.  Because both readings point "towards the transaction that
must terminate first", the commit rule for pseudo-committed transactions is
simply: a pseudo-committed transaction whose node has **out-degree zero** has
no one left to wait for and can be durably committed (Section 4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["EdgeKind", "Edge", "DependencyGraph"]


class EdgeKind(enum.Enum):
    """The two kinds of edges in the unified dependency graph."""

    WAIT_FOR = "wait-for"
    COMMIT_DEPENDENCY = "commit-dependency"


@dataclass(frozen=True)
class Edge:
    """A directed edge ``source -> target`` of a given kind."""

    source: int
    target: int
    kind: EdgeKind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.source} -[{self.kind.value}]-> T{self.target}"


class DependencyGraph:
    """Directed multigraph over transaction ids with typed edges.

    The graph is intentionally small (one node per active transaction) and the
    operations the scheduler needs — add edges, test for a cycle through a
    given node, drop a node, find nodes whose out-degree became zero — are all
    O(nodes + edges) or better.
    """

    def __init__(self) -> None:
        # successors[node][target] -> set of edge kinds
        self._successors: Dict[int, Dict[int, Set[EdgeKind]]] = {}
        self._predecessors: Dict[int, Set[int]] = {}
        # Reachability cache: node -> set of nodes reachable from it (the node
        # itself included only when it lies on a cycle).  Entries are evicted
        # whenever a mutation can change the set — see _note_edge_added /
        # _note_edge_removed — so a present entry is always exact.
        self._reach_cache: Dict[int, Set[int]] = {}
        #: Monotonic count of topology changes (edges gained or lost).  An
        #: unchanged value guarantees the successor sets are unchanged, which
        #: lets derived structures (the multi-site router's union-graph cycle
        #: check) skip recomputation cheaply.
        self.mutations = 0

    # ------------------------------------------------------------------
    # Reachability cache maintenance
    # ------------------------------------------------------------------
    def _note_edge_added(self, source: int) -> None:
        """A new edge leaves ``source``: any cached set that contains
        ``source`` (or is ``source``'s own) may have grown."""
        self.mutations += 1
        if not self._reach_cache:
            return
        stale = [
            node
            for node, reach in self._reach_cache.items()
            if node == source or source in reach
        ]
        for node in stale:
            del self._reach_cache[node]

    def _note_edge_removed(self, source: int) -> None:
        """An edge leaving ``source`` is gone: any cached set that contains
        ``source`` (or is ``source``'s own) may have shrunk."""
        # Growth and shrinkage invalidate the same entries: exactly those
        # whose walks could pass through ``source``.
        self._note_edge_added(source)

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> None:
        """Ensure ``node`` exists (idempotent)."""
        self._successors.setdefault(node, {})
        self._predecessors.setdefault(node, set())

    def has_node(self, node: int) -> bool:
        return node in self._successors

    def nodes(self) -> Set[int]:
        return set(self._successors)

    def remove_node(self, node: int) -> Set[int]:
        """Remove ``node`` and every edge touching it.

        Returns the set of former predecessors — the transactions that were
        waiting on (or commit-dependent on) the removed one.  The caller uses
        this to find pseudo-committed transactions that may now commit and
        blocked transactions that should be retried.
        """
        if node not in self._successors:
            return set()
        for target in list(self._successors[node]):
            self._predecessors[target].discard(node)
        former_predecessors = set(self._predecessors.get(node, ()))
        for predecessor in former_predecessors:
            self._successors[predecessor].pop(node, None)
        del self._successors[node]
        del self._predecessors[node]
        # Every removed edge either left ``node`` or pointed at it, so the
        # affected cache entries are exactly those that mention ``node``.
        self._note_edge_removed(node)
        return former_predecessors

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, source: int, target: int, kind: EdgeKind) -> None:
        """Add a typed edge; self-loops are ignored (a transaction never
        depends on itself)."""
        if source == target:
            return
        self.add_node(source)
        self.add_node(target)
        kinds = self._successors[source].setdefault(target, set())
        if not kinds:
            # Reachability only changes when the (source, target) pair gains
            # its *first* edge; adding a second kind is a no-op for the cache.
            self._note_edge_added(source)
        kinds.add(kind)
        self._predecessors[target].add(source)

    def add_edges(self, source: int, targets: Iterable[int], kind: EdgeKind) -> None:
        """Add edges from ``source`` to every node in ``targets``."""
        for target in targets:
            self.add_edge(source, target, kind)

    def remove_edges_from(self, source: int, kind: Optional[EdgeKind] = None) -> None:
        """Remove all outgoing edges of ``source`` (of one kind, or of any kind).

        Used when a blocked transaction's request is finally granted: its
        wait-for edges are stale and must not linger (they would cause
        spurious deadlock aborts later).
        """
        if source not in self._successors:
            return
        dropped_any = False
        for target in list(self._successors[source]):
            kinds = self._successors[source][target]
            if kind is None:
                kinds.clear()
            else:
                kinds.discard(kind)
            if not kinds:
                del self._successors[source][target]
                self._predecessors[target].discard(source)
                dropped_any = True
        if dropped_any:
            self._note_edge_removed(source)

    def has_edge(self, source: int, target: int, kind: Optional[EdgeKind] = None) -> bool:
        kinds = self._successors.get(source, {}).get(target)
        if not kinds:
            return False
        return kind is None or kind in kinds

    def edges(self) -> List[Edge]:
        """All edges, one :class:`Edge` per (source, target, kind) triple."""
        result: List[Edge] = []
        for source, targets in self._successors.items():
            for target, kinds in targets.items():
                for kind in kinds:
                    result.append(Edge(source, target, kind))
        return result

    def successors(self, node: int) -> Set[int]:
        return set(self._successors.get(node, ()))

    def predecessors(self, node: int) -> Set[int]:
        return set(self._predecessors.get(node, ()))

    def out_degree(self, node: int, kind: Optional[EdgeKind] = None) -> int:
        """Number of distinct successor nodes (optionally of one edge kind)."""
        targets = self._successors.get(node, {})
        if kind is None:
            return len(targets)
        return sum(1 for kinds in targets.values() if kind in kinds)

    def edge_count(self, kind: Optional[EdgeKind] = None) -> int:
        """Number of typed edges (a pair linked by both kinds counts twice)."""
        return sum(
            len(kinds) if kind is None else (1 if kind in kinds else 0)
            for targets in self._successors.values()
            for kinds in targets.values()
        )

    # ------------------------------------------------------------------
    # Cycle detection
    # ------------------------------------------------------------------
    def _reachable_set(self, start: int) -> Set[int]:
        """The set of nodes reachable from ``start`` (cached).

        ``start`` itself appears in the set only when it lies on a cycle.
        """
        cached = self._reach_cache.get(start)
        if cached is not None:
            return cached
        seen: Set[int] = set()
        stack = list(self._successors.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._successors.get(node, ()))
        self._reach_cache[start] = seen
        return seen

    def reachable(self, start: int, goal: int) -> bool:
        """True if ``goal`` can be reached from ``start`` following edges."""
        if start not in self._successors or goal not in self._successors:
            return False
        if start == goal:
            return True
        return goal in self._reachable_set(start)

    def creates_cycle(self, source: int, targets: Iterable[int]) -> bool:
        """Would adding edges ``source -> t`` for each target close a cycle?

        The new edges close a cycle exactly when ``source`` is already
        reachable from one of the targets (including the degenerate
        ``target == source`` case, which the scheduler filters out earlier).
        """
        for target in targets:
            if target == source:
                continue
            if target not in self._successors or source not in self._successors:
                continue
            if source in self._reachable_set(target):
                return True
        return False

    def has_cycle(self) -> bool:
        """Full-graph cycle test (used by tests and the offline checkers)."""
        return self.find_cycle() is not None

    def find_cycle(self) -> Optional[List[int]]:
        """Return one cycle as a list of nodes, or ``None`` if acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {node: WHITE for node in self._successors}
        parent: Dict[int, Optional[int]] = {}

        def visit(root: int) -> Optional[List[int]]:
            stack: List[Tuple[int, Iterable[int]]] = [(root, iter(self._successors[root]))]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [child, node]
                        walk = parent.get(node)
                        while walk is not None and walk != child:
                            cycle.append(walk)
                            walk = parent.get(walk)
                        cycle.reverse()
                        return cycle
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(self._successors[child])))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
            return None

        for node in self._successors:
            if colour[node] == WHITE:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None

    def zero_out_degree_nodes(self, candidates: Optional[Iterable[int]] = None) -> Set[int]:
        """Nodes with no outgoing edges (restricted to ``candidates`` if given)."""
        pool = self.nodes() if candidates is None else set(candidates) & self.nodes()
        return {node for node in pool if self.out_degree(node) == 0}

    def __len__(self) -> int:
        return len(self._successors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DependencyGraph nodes={len(self)} "
            f"wait_for={self.edge_count(EdgeKind.WAIT_FOR)} "
            f"commit_dep={self.edge_count(EdgeKind.COMMIT_DEPENDENCY)}>"
        )
