"""Conflict policies: what counts as a conflict at the object managers.

The simulation study of Section 5 compares two ways of interpreting the same
compatibility tables:

``COMMUTATIVITY``
    the baseline — only commuting operations may run concurrently; a
    recoverable-but-non-commuting request is treated as a conflict and blocks;
``RECOVERABILITY``
    the paper's contribution — recoverable requests execute immediately and a
    commit dependency is recorded instead.

The policy only changes how a pairwise :class:`~repro.core.compatibility.ConflictClass`
is *interpreted*; the tables themselves are shared, which mirrors the paper's
claim that "the cost of concurrency control is the same ... except for the
additional commit-dependency edges".
"""

from __future__ import annotations

import enum

from .compatibility import ConflictClass

__all__ = ["ConflictPolicy", "effective_class"]


class ConflictPolicy(enum.Enum):
    """How pairwise classifications are interpreted by the scheduler."""

    #: Conflict whenever the pair does not commute (the classical semantic
    #: locking baseline, e.g. Weihl-style commutativity locking).
    COMMUTATIVITY = "commutativity"
    #: Conflict only when the pair is neither commutative nor recoverable;
    #: recoverable pairs execute and record a commit dependency.
    RECOVERABILITY = "recoverability"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def effective_class(policy: ConflictPolicy, pairwise: ConflictClass) -> ConflictClass:
    """Map a pairwise classification through the active policy.

    Under the commutativity policy a ``RECOVERABLE`` pair is downgraded to a
    ``CONFLICT`` (the requester must wait); under the recoverability policy the
    classification is used as-is.
    """
    if policy is ConflictPolicy.COMMUTATIVITY and pairwise is ConflictClass.RECOVERABLE:
        return ConflictClass.CONFLICT
    return pairwise
