"""Conflict policies: what counts as a conflict at the object managers.

The simulation study of Section 5 compares two ways of interpreting the same
compatibility tables:

``COMMUTATIVITY``
    the baseline — only commuting operations may run concurrently; a
    recoverable-but-non-commuting request is treated as a conflict and blocks;
``RECOVERABILITY``
    the paper's contribution — recoverable requests execute immediately and a
    commit dependency is recorded instead.

The policy only changes how a pairwise :class:`~repro.core.compatibility.ConflictClass`
is *interpreted*; the tables themselves are shared, which mirrors the paper's
claim that "the cost of concurrency control is the same ... except for the
additional commit-dependency edges".
"""

from __future__ import annotations

import enum

from .compatibility import ConflictClass

__all__ = ["ConflictPolicy", "effective_class"]


class ConflictPolicy(enum.Enum):
    """How conflicts between concurrent operations are decided.

    The first two policies interpret the semantic compatibility tables; the
    third ignores semantics entirely and selects the page-level strict
    two-phase-locking backend (the classical baseline the paper compares
    against).
    """

    #: Conflict whenever the pair does not commute (the classical semantic
    #: locking baseline, e.g. Weihl-style commutativity locking).
    COMMUTATIVITY = "commutativity"
    #: Conflict only when the pair is neither commutative nor recoverable;
    #: recoverable pairs execute and record a commit dependency.
    RECOVERABILITY = "recoverability"
    #: Page-level strict two-phase locking: shared locks for read-only
    #: operations, exclusive locks for everything else, all held to commit.
    #: Selects :class:`repro.core.backends.TwoPhaseLockingBackend`.
    TWO_PHASE_LOCKING = "2pl"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def effective_class(policy: ConflictPolicy, pairwise: ConflictClass) -> ConflictClass:
    """Map a pairwise classification through the active policy.

    Under the commutativity policy a ``RECOVERABLE`` pair is downgraded to a
    ``CONFLICT`` (the requester must wait); under the recoverability policy the
    classification is used as-is.  The 2PL policy never consults the tables at
    run time (its backend uses lock modes); should it ever be asked, it is as
    conservative as the commutativity baseline.
    """
    if pairwise is ConflictClass.RECOVERABLE and policy is not ConflictPolicy.RECOVERABILITY:
        return ConflictClass.CONFLICT
    return pairwise
