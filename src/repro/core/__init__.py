"""Core concurrency-control machinery (the paper's primary contribution).

The subpackage is organised bottom-up:

* :mod:`~repro.core.specification` — the ``state``/``return`` model of
  operations on atomic data types;
* :mod:`~repro.core.compatibility` — commutativity and recoverability tables;
* :mod:`~repro.core.derivation` — deriving those tables from executable specs;
* :mod:`~repro.core.history` — execution logs;
* :mod:`~repro.core.dependency_graph` — the unified wait-for /
  commit-dependency graph;
* :mod:`~repro.core.object_manager`, :mod:`~repro.core.transaction`,
  :mod:`~repro.core.policy`, :mod:`~repro.core.scheduler` — the run-time
  protocol of Section 4;
* :mod:`~repro.core.recovery` — intentions lists and undo logs;
* :mod:`~repro.core.serializability` — offline soundness / serializability
  checkers used by the tests.
"""

from .backends import (
    ConcurrencyControlBackend,
    LockMode,
    SemanticBackend,
    TwoPhaseLockingBackend,
    make_backend,
)
from .compatibility import Answer, CompatibilitySpec, ConflictClass, RelationTable
from .dependency_graph import DependencyGraph, Edge, EdgeKind
from .derivation import (
    check_declared_sound,
    derive_commutativity_table,
    derive_compatibility,
    derive_recoverability_table,
    invocation_recoverable,
    invocations_commute,
)
from .errors import (
    RecoveryError,
    ReproError,
    SimulationError,
    SpecificationError,
    TransactionAborted,
    TransactionStateError,
    UnknownObjectError,
    UnknownOperationError,
)
from .history import ExecutionLog, LogRecord, RecordKind
from .object_manager import Classification, ObjectManager, PendingRequest
from .policy import ConflictPolicy, effective_class
from .recovery import IntentionsList, UndoLog
from .scheduler import (
    AbortReason,
    RequestHandle,
    RequestStatus,
    Scheduler,
    SchedulerListener,
    SchedulerStatistics,
)
from .serializability import (
    ObjectUniverse,
    build_dependency_graph,
    is_free_of_cascading_aborts,
    is_log_sound,
    is_rw_conflict_serializable,
    is_serializable,
    serialization_orders,
)
from .specification import (
    Event,
    FunctionalTypeSpecification,
    Invocation,
    OperationResult,
    OperationSpec,
    TypeSpecification,
    apply_sequence,
)
from .transaction import Transaction, TransactionStatus

__all__ = [
    "ConcurrencyControlBackend",
    "LockMode",
    "SemanticBackend",
    "TwoPhaseLockingBackend",
    "make_backend",
    "Answer",
    "CompatibilitySpec",
    "ConflictClass",
    "RelationTable",
    "DependencyGraph",
    "Edge",
    "EdgeKind",
    "check_declared_sound",
    "derive_commutativity_table",
    "derive_compatibility",
    "derive_recoverability_table",
    "invocation_recoverable",
    "invocations_commute",
    "ReproError",
    "SpecificationError",
    "UnknownOperationError",
    "UnknownObjectError",
    "TransactionStateError",
    "TransactionAborted",
    "RecoveryError",
    "SimulationError",
    "ExecutionLog",
    "LogRecord",
    "RecordKind",
    "Classification",
    "ObjectManager",
    "PendingRequest",
    "ConflictPolicy",
    "effective_class",
    "IntentionsList",
    "UndoLog",
    "AbortReason",
    "RequestHandle",
    "RequestStatus",
    "Scheduler",
    "SchedulerListener",
    "SchedulerStatistics",
    "ObjectUniverse",
    "build_dependency_graph",
    "is_free_of_cascading_aborts",
    "is_log_sound",
    "is_rw_conflict_serializable",
    "is_serializable",
    "serialization_orders",
    "Event",
    "FunctionalTypeSpecification",
    "Invocation",
    "OperationResult",
    "OperationSpec",
    "TypeSpecification",
    "apply_sequence",
    "Transaction",
    "TransactionStatus",
]
