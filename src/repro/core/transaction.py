"""Transactions and their lifecycle.

A transaction in this library is the unit the scheduler reasons about: a set
of executed operation events, a status, and bookkeeping used by the commit
protocol and by the performance metrics of Section 5 (number of blocks,
restarts, and the length at abort time).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set

from .errors import TransactionStateError
from .specification import Event, Invocation

__all__ = ["TransactionStatus", "Transaction"]


class TransactionStatus(enum.Enum):
    """The lifecycle states of a transaction.

    ``ACTIVE``
        executing operations (or between operations);
    ``BLOCKED``
        its latest request conflicted and is queued at an object manager;
    ``PSEUDO_COMMITTED``
        finished from the user's point of view, waiting for the transactions
        it has commit dependencies on to terminate (Section 4.3);
    ``COMMITTED``
        durably committed — effects merged into the committed object states;
    ``ABORTED``
        rolled back — its operations were removed from every object log.
    """

    ACTIVE = "active"
    BLOCKED = "blocked"
    PSEUDO_COMMITTED = "pseudo-committed"
    COMMITTED = "committed"
    ABORTED = "aborted"

    @property
    def is_terminated(self) -> bool:
        """True once the transaction has durably committed or aborted."""
        return self in (TransactionStatus.COMMITTED, TransactionStatus.ABORTED)

    @property
    def is_live(self) -> bool:
        """True while the transaction's operations still participate in
        conflict detection (this includes pseudo-committed transactions)."""
        return not self.is_terminated


@dataclass(slots=True)
class Transaction:
    """Scheduler-side record of one transaction."""

    tid: int
    status: TransactionStatus = TransactionStatus.ACTIVE
    #: Events executed so far, in execution order.
    events: List[Event] = field(default_factory=list)
    #: Names of the objects this transaction has visited (executed at least
    #: one operation on) — the paper's "visits" relation.
    objects_visited: Set[str] = field(default_factory=set)
    #: Objects where this transaction currently has a blocked request queued
    #: (at most one in practice: a blocked transaction cannot issue more).
    #: Lets abort drop queued requests without scanning every object manager.
    blocked_at: Set[str] = field(default_factory=set)
    #: Number of times this transaction blocked (for the blocking ratio).
    blocks: int = 0
    #: Number of cycle-detection invocations charged to this transaction.
    cycle_checks: int = 0
    #: Arbitrary per-transaction annotation (used by the simulator).
    label: Optional[str] = None
    #: Request handles issued to this transaction, tracked only when the
    #: scheduler runs with request pooling on: they are retired to the
    #: handle freelist when the transaction reaches a terminal state.
    handles: Optional[List[object]] = None

    # ------------------------------------------------------------------
    # Status transitions (the scheduler drives these)
    # ------------------------------------------------------------------
    def require(self, *allowed: TransactionStatus) -> None:
        """Raise unless the current status is one of ``allowed``."""
        if self.status not in allowed:
            raise TransactionStateError(
                f"transaction {self.tid} is {self.status.value}; expected one of "
                f"{[status.value for status in allowed]}"
            )

    def record_event(self, event: Event) -> None:
        """Record an executed operation event."""
        self.events.append(event)
        self.objects_visited.add(event.object_name)

    @property
    def operation_count(self) -> int:
        """Number of operations executed so far (the paper's abort length
        metric is this value at the moment of abort)."""
        return len(self.events)

    def invocations_on(self, object_name: str) -> List[Invocation]:
        """The invocations this transaction has executed on ``object_name``."""
        return [e.invocation for e in self.events if e.object_name == object_name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Transaction T{self.tid} {self.status.value} "
            f"ops={self.operation_count} objects={sorted(self.objects_visited)}>"
        )
