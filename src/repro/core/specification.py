"""Formal specification framework for atomic data types.

The paper models each object as an instance of an abstract data type whose
operations are specified as a total function ``S -> S x V``: executing an
operation in state ``s`` yields a new state ``state(o, s)`` and a return value
``return(o, s)``.  Both commutativity (Definition 2) and recoverability
(Definition 1) are expressed purely in terms of these two components, so the
whole concurrency-control machinery in this package is built on top of the
classes defined here.

A :class:`TypeSpecification` is the executable form of such a specification:
it owns a set of named :class:`OperationSpec` objects, each a *pure* function
from ``(state, args)`` to an :class:`OperationResult`.  States are ordinary
immutable (or treated-as-immutable) Python values; the framework never mutates
a state in place, which makes it trivial to replay, undo, and enumerate
histories — exactly what the recoverability definitions require.

Two further pieces of vocabulary come from the paper:

* an :class:`Invocation` is an operation name plus its arguments
  (``push(4)``, ``member(3)``);
* an :class:`Event` is a *paired invocation and response* in Weihl's notation:
  object, invocation, returned value, and the invoking transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .errors import SpecificationError, UnknownOperationError

__all__ = [
    "OperationResult",
    "OperationSpec",
    "Invocation",
    "Event",
    "TypeSpecification",
    "FunctionalTypeSpecification",
    "apply_sequence",
]


@dataclass(frozen=True, slots=True)
class OperationResult:
    """The outcome of applying an operation in a given state.

    Attributes
    ----------
    state:
        The state produced by the operation (``state(o, s)`` in the paper).
    value:
        The value returned by the operation (``return(o, s)``).  The paper
        assumes every operation returns at least a status code; specifications
        in this package follow that convention (pure mutators return ``"ok"``).
    """

    state: Any
    value: Any


@dataclass(frozen=True, slots=True)
class OperationSpec:
    """A single named operation of an abstract data type.

    Attributes
    ----------
    name:
        The operation name (``"push"``, ``"insert"`` ...).
    function:
        A pure function ``(state, args) -> OperationResult``.  It must not
        mutate ``state``.
    is_read_only:
        ``True`` when the operation never changes the object state.  Read-only
        operations need no undo information; recovery uses this flag.
    inverse:
        Optional logical-undo constructor.  Given ``(state_before, args,
        value)`` of a completed execution it returns an :class:`Invocation`
        that, applied to a state containing the operation's effect, removes
        that effect (e.g. the inverse of ``push(x)`` is ``pop()``).  ``None``
        means the type offers no logical inverse for this operation and
        recovery must fall back to replay-based undo.
    """

    name: str
    function: Callable[[Any, Tuple[Any, ...]], OperationResult]
    is_read_only: bool = False
    inverse: Optional[Callable[[Any, Tuple[Any, ...], Any], "Invocation"]] = None

    def apply(self, state: Any, args: Tuple[Any, ...] = ()) -> OperationResult:
        """Apply the operation to ``state`` with ``args`` and return the result."""
        result = self.function(state, args)
        if not isinstance(result, OperationResult):
            raise SpecificationError(
                f"operation {self.name!r} returned {type(result).__name__}, "
                "expected OperationResult"
            )
        return result


@dataclass(frozen=True, slots=True)
class Invocation:
    """An operation invocation: a name plus an argument tuple."""

    op: str
    args: Tuple[Any, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.op}({rendered})"


@dataclass(frozen=True, slots=True)
class Event:
    """A paired invocation and response, attributed to a transaction.

    Sequence (1) of the paper, ``X: (insert(3), ok, T1)``, is represented as
    ``Event(object_name="X", invocation=Invocation("insert", (3,)), value="ok",
    transaction_id=1)``.
    """

    object_name: str
    invocation: Invocation
    value: Any
    transaction_id: int
    sequence: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.object_name}: ({self.invocation}, {self.value!r}, "
            f"T{self.transaction_id})"
        )


class TypeSpecification:
    """Executable specification of an atomic data type.

    Subclasses (see :mod:`repro.adts`) provide the concrete operations, the
    initial state, sample states and sample arguments (used by
    :mod:`repro.core.derivation` to derive compatibility tables by
    enumeration), and the declared compatibility tables from the paper.
    """

    #: Human-readable type name; subclasses override.
    name: str = "abstract"

    def __init__(self, operations: Optional[Mapping[str, OperationSpec]] = None):
        self._operations: Dict[str, OperationSpec] = dict(operations or {})

    # ------------------------------------------------------------------
    # Core specification interface
    # ------------------------------------------------------------------
    def initial_state(self) -> Any:
        """Return the state of a freshly created object of this type."""
        raise NotImplementedError

    def operations(self) -> Mapping[str, OperationSpec]:
        """Return the mapping from operation name to :class:`OperationSpec`."""
        return dict(self._operations)

    def operation(self, op_name: str) -> OperationSpec:
        """Return the specification of ``op_name``.

        Raises :class:`~repro.core.errors.UnknownOperationError` if the type
        does not define the operation.
        """
        try:
            return self._operations[op_name]
        except KeyError:
            raise UnknownOperationError(self.name, op_name) from None

    def operation_names(self) -> Tuple[str, ...]:
        """Return operation names in a stable, deterministic order."""
        return tuple(self._operations)

    def apply(self, state: Any, invocation: Invocation) -> OperationResult:
        """Apply ``invocation`` to ``state`` (the ``S -> S x V`` function)."""
        return self.operation(invocation.op).apply(state, invocation.args)

    def return_value(self, state: Any, invocation: Invocation) -> Any:
        """``return(o, s)`` of the paper."""
        return self.apply(state, invocation).value

    def next_state(self, state: Any, invocation: Invocation) -> Any:
        """``state(o, s)`` of the paper."""
        return self.apply(state, invocation).state

    # ------------------------------------------------------------------
    # Hooks used to *derive* compatibility tables by enumeration
    # ------------------------------------------------------------------
    def sample_states(self) -> Sequence[Any]:
        """Return a representative collection of states for table derivation.

        The derived tables are exact only with respect to this sample; types
        should include empty, small, and duplicate-bearing states so that the
        counterexamples the paper relies on (e.g. a ``delete`` of a present
        versus absent element) are all reachable.
        """
        return [self.initial_state()]

    def sample_invocations(self, op_name: str) -> Sequence[Invocation]:
        """Return representative invocations of ``op_name`` for derivation."""
        return [Invocation(op_name)]

    def conflict_parameter(self, invocation: Invocation) -> Hashable:
        """Return the value used to decide *same parameter* vs *different*.

        The paper's Yes-SP / Yes-DP table entries qualify compatibility by
        whether two invocations carry the *Same* or *Different* input
        Parameter.  By default the full argument tuple is the parameter; types
        such as the keyed Table override this so that only the key matters.
        """
        return invocation.args

    # ------------------------------------------------------------------
    # Declared semantics (the paper's published tables)
    # ------------------------------------------------------------------
    def compatibility(self):  # -> CompatibilitySpec (import cycle avoided)
        """Return the declared :class:`~repro.core.compatibility.CompatibilitySpec`.

        Subclasses override this with the tables published in the paper
        (Tables I-VIII).  The default raises, because a type without declared
        semantics can still be used via derived tables
        (:func:`repro.core.derivation.derive_compatibility`).
        """
        raise SpecificationError(
            f"type {self.name!r} declares no compatibility tables; "
            "derive them with repro.core.derivation.derive_compatibility"
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def states_equal(self, left: Any, right: Any) -> bool:
        """State equality used by the derivation machinery (override if needed)."""
        return left == right

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(self.operation_names())
        return f"<{type(self).__name__} {self.name!r} ops=[{ops}]>"


class FunctionalTypeSpecification(TypeSpecification):
    """A :class:`TypeSpecification` assembled from plain functions.

    Useful in tests and in the simulation workloads where an object's
    semantics are given directly by a compatibility table rather than by real
    state-transforming code.
    """

    def __init__(
        self,
        name: str,
        initial_state: Any,
        operations: Mapping[str, OperationSpec],
        sample_states: Optional[Sequence[Any]] = None,
        sample_invocations: Optional[Mapping[str, Sequence[Invocation]]] = None,
        compatibility: Optional[Any] = None,
    ):
        super().__init__(operations)
        self.name = name
        self._initial_state = initial_state
        self._sample_states = list(sample_states) if sample_states is not None else None
        self._sample_invocations = (
            {k: list(v) for k, v in sample_invocations.items()}
            if sample_invocations is not None
            else None
        )
        self._compatibility = compatibility

    def initial_state(self) -> Any:
        return self._initial_state

    def sample_states(self) -> Sequence[Any]:
        if self._sample_states is not None:
            return list(self._sample_states)
        return super().sample_states()

    def sample_invocations(self, op_name: str) -> Sequence[Invocation]:
        if self._sample_invocations is not None and op_name in self._sample_invocations:
            return list(self._sample_invocations[op_name])
        return super().sample_invocations(op_name)

    def compatibility(self):
        if self._compatibility is not None:
            return self._compatibility
        return super().compatibility()


def apply_sequence(
    spec: TypeSpecification, state: Any, invocations: Iterable[Invocation]
) -> OperationResult:
    """Apply a sequence of invocations, returning the final state and the
    value of the *last* operation (``state(O, s)`` extended to sequences).

    An empty sequence returns the input state with value ``None``.
    """
    value: Any = None
    for invocation in invocations:
        result = spec.apply(state, invocation)
        state, value = result.state, result.value
    return OperationResult(state=state, value=value)
