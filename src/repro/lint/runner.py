"""Collect files, run every REP rule, render text or JSON."""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .base import Project, SourceFile, Violation
from .rules import ALL_RULES

__all__ = ["collect_files", "lint_paths", "lint_sources", "rule_counts", "render_text", "render_json"]


def collect_files(paths: Sequence[str]) -> List[str]:
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        collected.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            collected.append(path)
    return collected


def _run(project: Project, rules: Optional[Iterable[type]] = None) -> List[Violation]:
    violations: List[Violation] = []
    for rule_class in rules if rules is not None else ALL_RULES:
        violations.extend(rule_class().check(project))
    by_path = {source.path: source for source in project.files}
    kept = [
        violation
        for violation in violations
        if by_path[violation.path].allows(violation)
    ]
    return sorted(kept, key=lambda v: (v.path, v.line, v.rule, v.message))


def lint_paths(
    paths: Sequence[str], rules: Optional[Iterable[type]] = None
) -> List[Violation]:
    """Lint files and directories on disk."""
    sources = []
    for path in collect_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            sources.append(SourceFile(path=path, text=handle.read()))
    return _run(Project(sources), rules)


def lint_sources(
    sources: Mapping[str, str], rules: Optional[Iterable[type]] = None
) -> List[Violation]:
    """Lint in-memory sources (path → text); used by the fixture tests."""
    files = [SourceFile(path=path, text=text) for path, text in sources.items()]
    return _run(Project(files), rules)


def rule_counts(violations: Iterable[Violation]) -> Dict[str, int]:
    """Violations per rule id, with every registered rule present."""
    counts = {rule.id: 0 for rule in ALL_RULES}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return counts


def render_text(violations: Sequence[Violation]) -> str:
    if not violations:
        return "repro lint: no violations\n"
    lines = [violation.render() for violation in violations]
    lines.append(f"repro lint: {len(violations)} violation(s)")
    return "\n".join(lines) + "\n"


def render_json(violations: Sequence[Violation], checked_files: int) -> str:
    payload = {
        "checked_files": checked_files,
        "counts": rule_counts(violations),
        "violations": [
            {
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "message": violation.message,
            }
            for violation in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
