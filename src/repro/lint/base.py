"""Shared infrastructure for the ``repro lint`` static analyzer.

The analyzer is deliberately repo-specific: its rules encode the invariants
this reproduction's determinism and protocol seams depend on (see the REP
rule modules under :mod:`repro.lint.rules`).  Everything works on plain
:mod:`ast` trees — no third-party dependencies — so the linter runs anywhere
the package itself runs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "SourceFile",
    "Project",
    "Rule",
    "module_name_for_path",
    "module_layer",
]

#: ``# repro-lint: disable=REP001,REP002`` suppresses the named rules on the
#: line carrying the pragma; a bare ``# repro-lint: disable`` suppresses all.
_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path, anchored at the ``repro`` package.

    ``src/repro/sim/engine.py`` → ``repro.sim.engine``;
    ``src/repro/sim/__init__.py`` → ``repro.sim``.  Paths outside the package
    (tests, fixtures) fall back to their stem, which keeps them out of the
    layer map.
    """
    parts = re.split(r"[\\/]", path)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        return ".".join(parts[parts.index("repro") :])
    return parts[-1] if parts else path


def module_layer(module: str) -> Optional[str]:
    """The layering-rule layer of a module (None when unlayered).

    ``repro.core`` and ``repro.adts`` form the bottom layer, ``repro.sim``
    sits above them, ``repro.distributed`` above that; other modules
    (``repro.cli``, ``repro.analysis``, ``repro.lint``, tests) are unlayered
    and may import anything.
    """
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    second = parts[1]
    if second in ("core", "adts"):
        return "core"
    if second in ("sim", "distributed"):
        return second
    return None


class SourceFile:
    """One parsed file plus its suppression pragmas."""

    def __init__(self, path: str, text: str, module: Optional[str] = None):
        self.path = path
        self.text = text
        self.module = module if module is not None else module_name_for_path(path)
        #: Package ``__init__`` files resolve ``from .`` against themselves,
        #: plain modules against their parent package (see REP004).
        self.is_package = path.replace("\\", "/").endswith("/__init__.py")
        self.tree = ast.parse(text, filename=path)
        #: line number → set of disabled rule ids (empty set = all rules).
        self.disabled: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            names = match.group(1)
            if names is None:
                self.disabled[lineno] = set()
            else:
                self.disabled[lineno] = {
                    part.strip().upper() for part in names.split(",") if part.strip()
                }

    def allows(self, violation: Violation) -> bool:
        """False when a pragma on the violation's line disables its rule."""
        rules = self.disabled.get(violation.line)
        if rules is None:
            return True
        return bool(rules) and violation.rule not in rules


class Project:
    """The set of files one lint run analyzes, with lookup helpers."""

    def __init__(self, files: Sequence[SourceFile]):
        self.files = list(files)
        self._by_module = {f.module: f for f in self.files}

    def module(self, name: str) -> Optional[SourceFile]:
        return self._by_module.get(name)

    def walk(self) -> Iterator[Tuple[SourceFile, ast.AST]]:
        """Every node of every file, paired with its file."""
        for source in self.files:
            for node in ast.walk(source.tree):
                yield source, node


class Rule:
    """Base class: one registered REP rule."""

    id: str = "REP000"
    summary: str = ""

    def check(self, project: Project) -> Iterable[Violation]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers shared by several rules
    # ------------------------------------------------------------------
    @staticmethod
    def dotted_name(node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, else None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    @staticmethod
    def raises_not_implemented(function: ast.AST) -> bool:
        """True when the function body raises NotImplementedError."""
        for node in ast.walk(function):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id == "NotImplementedError":
                return True
        return False
