"""``repro lint`` — the repo-specific determinism & conformance analyzer.

Nine AST rules guard the invariants the reproduction's pinned random streams,
pluggable protocol seams and hot-loop budget depend on:

* **REP001** randomness only through ``RandomSource``;
* **REP002** no iteration over unordered sets/dict-keys in sim/distributed;
* **REP003** no wall-clock inside the deterministic layers;
* **REP004** import layering (core/adts < sim < distributed);
* **REP005** protocol subclasses in sync with factory registries and CLI;
* **REP006** every incremented counter surfaced in a summary;
* **REP007** classes instantiated on per-event paths declare ``__slots__``;
* **REP008** no tuple-keyed dict lookups on per-event paths;
* **REP009** no lambda/closure allocation inside per-event functions;
* **REP010** pool-managed request boxes constructed only by their pools.

Suppress a finding with an inline ``# repro-lint: disable=REPxxx`` pragma on
the offending line.  See README "Static analysis & determinism guarantees".
"""

from .base import Project, Rule, SourceFile, Violation
from .rules import ALL_RULES
from .runner import lint_paths, lint_sources, render_json, render_text, rule_counts

__all__ = [
    "ALL_RULES",
    "Project",
    "Rule",
    "SourceFile",
    "Violation",
    "lint_paths",
    "lint_sources",
    "render_json",
    "render_text",
    "rule_counts",
]
