"""REP008 — no dict lookups keyed by freshly-built tuples on per-event paths.

A probe like ``cache[(op, param)]`` or ``table.get((requested, executed))``
allocates a tuple and hashes every element on *each* call; on the
simulator's per-event paths those probes add up to a measurable share of
the interpreter calls per event.  The compiled-compatibility kernel removed
exactly this pattern from operation classification (invocations are
interned to dense ids at construction and the tables are flat arrays
indexed by ``requested_id * n_ops + executed_id``); this rule keeps the
pattern from creeping back.

Checked: lookups (``[...]`` reads and ``.get``/``.setdefault``/``.pop``
calls with a tuple literal key) inside function bodies of ``repro.core``,
``repro.sim`` and ``repro.distributed``.  Not checked: ``__init__`` /
``__post_init__`` bodies and the allow-listed functions below (setup,
compile-time table building, teardown and reporting run a bounded number of
times per run — a tuple key there is the clear way to write it), plus
anything under a standard pragma (``# repro-lint: disable=REP008``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Set

from ..base import Project, Rule, SourceFile, Violation

__all__ = ["Rep008TupleKeyLookup"]

#: Packages whose function bodies the rule examines.
_CHECKED_PREFIXES = ("repro.core", "repro.sim", "repro.distributed")

#: Dict methods whose first argument is a key.
_LOOKUP_METHODS = ("get", "setdefault", "pop")

#: Functions that run a bounded number of times per run (setup, compile-time
#: table building, reporting/teardown) — not per event, so the tuple-key
#: clarity wins over the interning machinery.
_ALLOWED_FUNCTIONS = {
    "_compile_policy",   # ObjectManager: builds the flat tables, once per policy
    "answer",            # RelationTable: compile-time/fallback classification
    "classify",          # CompatibilitySpec: legacy fallback for unknown ops
}


class Rep008TupleKeyLookup(Rule):
    id = "REP008"
    summary = "dict lookup keyed by a freshly-built tuple on a per-event path"

    def check(self, project: Project) -> Iterable[Violation]:
        for source in project.files:
            if not source.module.startswith(_CHECKED_PREFIXES):
                continue
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Violation]:
        #: Lines inside setup / allow-listed function bodies are exempt.
        exempt_lines: Set[int] = set()
        #: Annotation subtrees — ``Dict[int, str]`` is also a Subscript with
        #: a Tuple slice — are never lookups.
        annotation_nodes: Set[int] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in ("__init__", "__post_init__") or (
                    node.name in _ALLOWED_FUNCTIONS
                ):
                    for inner in ast.walk(node):
                        lineno = getattr(inner, "lineno", None)
                        if lineno is not None:
                            exempt_lines.add(lineno)
                if node.returns is not None:
                    for sub in ast.walk(node.returns):
                        annotation_nodes.add(id(sub))
            annotation = getattr(node, "annotation", None)
            if annotation is not None:
                for sub in ast.walk(annotation):
                    annotation_nodes.add(id(sub))
        for function in ast.walk(source.tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if function.name in ("__init__", "__post_init__"):
                continue
            if function.name in _ALLOWED_FUNCTIONS:
                continue
            for node in ast.walk(function):
                key = self._tuple_key(node, annotation_nodes)
                if key is None or node.lineno in exempt_lines:
                    continue
                yield Violation(
                    rule=self.id,
                    path=source.path,
                    line=node.lineno,
                    message=(
                        f"dict lookup keyed by a freshly-built tuple ({key}) "
                        "on a per-event path builds and hashes the key on "
                        "every call; intern the components to dense ids (see "
                        "ObjectManager's compiled tables), allow-list the "
                        "function in rep008.py if it is per-run setup, or "
                        "suppress with '# repro-lint: disable=REP008'"
                    ),
                )

    def _tuple_key(self, node: ast.AST, annotation_nodes: Set[int]):
        """The rendered tuple key of a flagged lookup, or None."""
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Tuple)
            and id(node) not in annotation_nodes
        ):
            return ast.unparse(node.slice)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LOOKUP_METHODS
            and node.args
            and isinstance(node.args[0], ast.Tuple)
        ):
            return ast.unparse(node.args[0])
        return None
