"""REP007 — classes instantiated on per-event paths must declare ``__slots__``.

The simulator's hot loop allocates objects per event, per request and per
transaction; a class without ``__slots__`` pays an extra ``__dict__``
allocation on every instance, which is exactly the overhead the hot-loop
optimization pass removed.  This rule keeps it removed: any class *defined*
in ``repro.sim`` / ``repro.distributed`` and *instantiated* inside a
function body of those packages (i.e. at simulation time, not at module
import) must declare ``__slots__`` — directly or via
``@dataclass(slots=True)``.

Construction inside ``__init__`` / ``__post_init__`` / ``reset`` is setup
wiring (``reset`` is the reuse protocol's constructor analogue, run once per
parameter point), not a per-event path, and is not checked.  Classes that are allocated a bounded
number of times per *run* (engines, routers, protocol objects, frozen
result values) are allow-listed below; genuinely deliberate exceptions can
use the standard pragma (``# repro-lint: disable=REP007``) on the
instantiation line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Set

from ..base import Project, Rule, SourceFile, Violation

__all__ = ["Rep007SlotlessHotClass"]

#: Packages whose classes and call sites the rule examines.
_CHECKED_PREFIXES = ("repro.sim", "repro.distributed")

#: Classes allocated per *run* (or per rare control event), not per event:
#: the ``__dict__`` cost is paid a bounded number of times regardless of the
#: simulated workload, so slots would buy nothing.
_ALLOWED_CLASS_NAMES = {
    "RandomSource",              # one per seeded stream (spawned at setup)
    "RunMetrics",                # frozen once per run by MetricsCollector.freeze
    "MetricsCollector",          # one per run
    "SimulationEngine",          # one per run
    "Simulation",                # one per run
    "TransactionRouter",         # one per run (built by the routing seam)
    "FifoServer",                # per resource unit at setup (has slots anyway)
    "ReadWriteWorkload",         # one per run (make_workload factory)
    "AbstractDataTypeWorkload",  # one per run (make_workload factory)
    "GlobalResourceModel",       # one per run (make_resource_charger factory)
    "PerSiteResources",          # one per run (make_resource_charger factory)
    "QuorumConsensus",           # one per run (replication-protocol factory)
    "TwoPhase",                  # one per run (commit-protocol factory)
    "_Registration",             # one per (object, site) at registration time
}

#: Base-class names whose subclasses are exempt: enums keep their members on
#: the class, exceptions need ``args``/``__dict__`` machinery, and typing
#: protocols are never instantiated.
_EXEMPT_BASES = {"Enum", "IntEnum", "StrEnum", "Flag", "Protocol", "NamedTuple"}


def _is_dataclass_with_slots(decorator: ast.expr) -> bool:
    """True for ``@dataclass(..., slots=True)``."""
    if not isinstance(decorator, ast.Call):
        return False
    name = decorator.func
    target = name.attr if isinstance(name, ast.Attribute) else getattr(name, "id", None)
    if target != "dataclass":
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "slots" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _declares_slots(class_def: ast.ClassDef) -> bool:
    for statement in class_def.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return any(_is_dataclass_with_slots(d) for d in class_def.decorator_list)


def _is_exempt(class_def: ast.ClassDef) -> bool:
    for base in class_def.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", None)
        if name is None:
            continue
        if name in _EXEMPT_BASES or name.endswith(("Error", "Exception", "Warning")):
            return True
    return False


class Rep007SlotlessHotClass(Rule):
    id = "REP007"
    summary = "slotless class instantiated on a per-event path"

    def check(self, project: Project) -> Iterable[Violation]:
        slotless: Dict[str, str] = {}  # class name -> defining module
        for source, node in project.walk():
            if not source.module.startswith(_CHECKED_PREFIXES):
                continue
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in _ALLOWED_CLASS_NAMES:
                continue
            if _declares_slots(node) or _is_exempt(node):
                continue
            slotless[node.name] = source.module
        if not slotless:
            return
        for source in project.files:
            if not source.module.startswith(_CHECKED_PREFIXES):
                continue
            yield from self._check_calls(source, slotless)

    def _check_calls(
        self, source: SourceFile, slotless: Dict[str, str]
    ) -> Iterator[Violation]:
        #: Call sites inside setup methods are not per-event paths.
        setup_lines: Set[int] = set()
        for node in ast.walk(source.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in ("__init__", "__post_init__", "reset")
            ):
                for inner in ast.walk(node):
                    lineno = getattr(inner, "lineno", None)
                    if lineno is not None:
                        setup_lines.add(lineno)
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in ("__init__", "__post_init__", "reset"):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                if not isinstance(inner.func, ast.Name):
                    continue
                name = inner.func.id
                if name not in slotless or inner.lineno in setup_lines:
                    continue
                yield Violation(
                    rule=self.id,
                    path=source.path,
                    line=inner.lineno,
                    message=(
                        f"class {name} (defined in {slotless[name]}) is "
                        "instantiated on a per-event path but declares no "
                        "__slots__; add __slots__ (or dataclass(slots=True)), "
                        "allow-list it in rep007.py if it is per-run, or "
                        "suppress with '# repro-lint: disable=REP007'"
                    ),
                )
