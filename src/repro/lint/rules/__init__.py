"""The REP rule set of ``repro lint`` — one visitor module per rule."""

from .rep001 import Rep001RandomSource
from .rep002 import Rep002UnorderedIteration
from .rep003 import Rep003WallClock
from .rep004 import Rep004ImportLayering
from .rep005 import Rep005SeamConformance
from .rep006 import Rep006CounterSurfacing
from .rep007 import Rep007SlotlessHotClass
from .rep008 import Rep008TupleKeyLookup
from .rep009 import Rep009ClosureAllocation
from .rep010 import Rep010PooledConstruction

#: Every registered rule, in id order; the runner instantiates these.
ALL_RULES = (
    Rep001RandomSource,
    Rep002UnorderedIteration,
    Rep003WallClock,
    Rep004ImportLayering,
    Rep005SeamConformance,
    Rep006CounterSurfacing,
    Rep007SlotlessHotClass,
    Rep008TupleKeyLookup,
    Rep009ClosureAllocation,
    Rep010PooledConstruction,
)

__all__ = [
    "ALL_RULES",
    "Rep001RandomSource",
    "Rep002UnorderedIteration",
    "Rep003WallClock",
    "Rep004ImportLayering",
    "Rep005SeamConformance",
    "Rep006CounterSurfacing",
    "Rep007SlotlessHotClass",
    "Rep008TupleKeyLookup",
    "Rep009ClosureAllocation",
    "Rep010PooledConstruction",
]
