"""REP002 — no iteration over unordered collections in sim/distributed.

Python sets iterate in hash order, which for strings varies with
``PYTHONHASHSEED`` — so a ``for`` loop over a bare set inside event
scheduling, replica selection or victim choice silently breaks run-to-run
reproducibility.  Inside ``repro.sim`` and ``repro.distributed`` every
iteration over a set-valued expression (or an explicit ``dict.keys()`` call)
must go through ``sorted()`` or an explicitly ordered structure.

Detection is intentionally conservative but cross-file aware: the rule
indexes every function whose return annotation is ``Set``/``FrozenSet`` and
every attribute annotated as a set anywhere in the analyzed tree, then flags
``for``/comprehension iteration whose iterable is

* a set literal / set comprehension,
* a ``set()`` / ``frozenset()`` call or a set-operator expression
  (``|``, ``&``, ``-``, ``^`` over sets; ``.union()`` etc.),
* a call to an indexed set-returning function,
* an attribute or local variable known to hold a set,
* a direct ``.keys()`` call.

Wrapping the iterable in ``sorted(...)`` resolves the violation.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..base import Project, Rule, SourceFile, Violation, module_layer

__all__ = ["Rep002UnorderedIteration"]

_SET_TYPE_NAMES = {"Set", "FrozenSet", "MutableSet", "AbstractSet", "set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}


def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
    """True when an annotation names a set type (plain or subscripted)."""
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):  # typing.Set[...]
        return node.attr in _SET_TYPE_NAMES
    if isinstance(node, ast.Name):
        return node.id in _SET_TYPE_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _is_set_annotation(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return False
    return False


class _SetIndex:
    """Names known — project-wide — to denote set values."""

    def __init__(self, project: Project):
        #: function/method names whose return annotation is a set type.
        self.set_returning: Set[str] = set()
        #: attribute names annotated (or initialised) as sets.
        self.set_attributes: Set[str] = set()
        for _, node in project.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_set_annotation(node.returns):
                    self.set_returning.add(node.name)
            elif isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
                target = node.target
                if isinstance(target, ast.Attribute):
                    self.set_attributes.add(target.attr)
                elif isinstance(target, ast.Name):
                    # Class-level dataclass fields become instance attributes.
                    self.set_attributes.add(target.id)


class _FunctionScope(ast.NodeVisitor):
    """Walks one function (or module) body tracking set-valued locals."""

    def __init__(self, rule: "Rep002UnorderedIteration", source: SourceFile, index: _SetIndex):
        self.rule = rule
        self.source = source
        self.index = index
        self.set_locals: Set[str] = set()
        self.violations: List[Violation] = []

    # -- assignments feed the local set-tracking ------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_locals.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and (
            _is_set_annotation(node.annotation)
            or (node.value is not None and self._is_set_expr(node.value))
        ):
            self.set_locals.add(node.target.id)
        self.generic_visit(node)

    # -- nested functions get their own scope ---------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.rule.check_scope(self.source, self.index, node, self.violations)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.rule.check_scope(self.source, self.index, node, self.violations)

    # -- iteration contexts ---------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set *from* a set is order-insensitive by construction.
        self.generic_visit(node)

    # -- classification --------------------------------------------------
    def _check_iterable(self, iterable: ast.AST) -> None:
        reason = self._unordered_reason(iterable)
        if reason is not None:
            self.violations.append(
                Violation(
                    rule=self.rule.id,
                    path=self.source.path,
                    line=getattr(iterable, "lineno", 1),
                    message=(
                        f"iteration over {reason}: wrap in sorted() or use an "
                        "ordered structure (set order feeds scheduling / "
                        "replica / victim decisions)"
                    ),
                )
            )

    def _unordered_reason(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            if self._is_set_expr(node.left) or self._is_set_expr(node.right):
                return "a set-operator expression"
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return f"a {func.id}() value"
                if func.id in self.index.set_returning:
                    return f"the set returned by {func.id}()"
            elif isinstance(func, ast.Attribute):
                if func.attr == "keys":
                    return "dict.keys()"
                if func.attr in _SET_METHODS:
                    return f"a .{func.attr}() result"
                if func.attr in self.index.set_returning:
                    return f"the set returned by .{func.attr}()"
            return None
        if isinstance(node, ast.Name) and node.id in self.set_locals:
            return f"set-valued local '{node.id}'"
        if isinstance(node, ast.Attribute) and node.attr in self.index.set_attributes:
            return f"set-valued attribute '.{node.attr}'"
        return None

    def _is_set_expr(self, node: ast.AST) -> bool:
        return self._unordered_reason(node) is not None


class Rep002UnorderedIteration(Rule):
    id = "REP002"
    summary = "iteration over an unordered set/dict-keys value"

    def check(self, project: Project) -> Iterable[Violation]:
        index = _SetIndex(project)
        violations: List[Violation] = []
        for source in project.files:
            if module_layer(source.module) not in ("sim", "distributed"):
                continue
            self.check_scope(source, index, source.tree, violations)
        return violations

    def check_scope(
        self,
        source: SourceFile,
        index: _SetIndex,
        scope: ast.AST,
        violations: List[Violation],
    ) -> None:
        """Lint one function/module scope (recursing into nested scopes)."""
        visitor = _FunctionScope(self, source, index)
        # Parameters annotated as sets count as set-valued locals.
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in list(scope.args.args) + list(scope.args.kwonlyargs):
                if _is_set_annotation(arg.annotation):
                    visitor.set_locals.add(arg.arg)
            for statement in scope.body:
                visitor.visit(statement)
        else:
            for statement in scope.body:  # type: ignore[attr-defined]
                visitor.visit(statement)
        violations.extend(visitor.violations)
