"""REP010 — pool-managed request boxes are constructed only by their pools.

With request pooling on, :class:`~repro.core.requests.RequestHandle` and
:class:`~repro.core.object_manager.PendingRequest` instances are recycled
through per-scheduler :class:`~repro.core.pool.ObjectPool` freelists: the
scheduler (and the backends' fused submit closures) acquire from the
freelist and reinitialise, and retirement stamps the box ``RECYCLED`` with
a bumped generation.  A direct construction anywhere else silently forks
the lifecycle: the fresh box is never tracked on its transaction, never
retired, and splits the "pooled and unpooled runs are bit-identical"
invariant into one that only holds for the sites that remembered the
freelist.

Checked: ``RequestHandle(...)`` and ``PendingRequest(...)`` call
expressions in ``repro.sim`` and ``repro.distributed`` — the layers above
the pool seam, which must go through ``Scheduler.submit`` /
``Scheduler.acquire_handle`` instead of constructing request boxes.  Not
checked: ``repro.core`` itself (the pools and their factories live there),
annotations (a bare name in a type position is not a call), and anything
under the standard pragma (``# repro-lint: disable=REP010``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Project, Rule, SourceFile, Violation

__all__ = ["Rep010PooledConstruction"]

#: Packages whose call expressions the rule examines: everything above the
#: pool seam.  ``repro.core`` owns the pools and legitimately constructs.
_CHECKED_PREFIXES = ("repro.sim", "repro.distributed")

#: Classes whose instances are pool-managed.
_POOLED_CLASSES = ("RequestHandle", "PendingRequest")


class Rep010PooledConstruction(Rule):
    id = "REP010"
    summary = "pool-managed request box constructed outside its pool"

    def check(self, project: Project) -> Iterable[Violation]:
        for source in project.files:
            if not source.module.startswith(_CHECKED_PREFIXES):
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = self._called_name(node.func)
                if name in _POOLED_CLASSES:
                    yield self._violation(source, node, name)

    @staticmethod
    def _called_name(func: ast.expr) -> str:
        """The plain or dotted-attribute name a call expression targets."""
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return ""

    def _violation(self, source: SourceFile, node: ast.Call, name: str) -> Violation:
        return Violation(
            rule=self.id,
            path=source.path,
            line=node.lineno,
            message=(
                f"direct construction of pool-managed {name}; with request "
                "pooling on these boxes are recycled through the scheduler's "
                "freelists — go through Scheduler.submit / "
                "Scheduler.acquire_handle (repro.core owns construction), or "
                "suppress with '# repro-lint: disable=REP010'"
            ),
        )
