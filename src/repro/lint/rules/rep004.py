"""REP004 — import layering.

``repro.core`` and ``repro.adts`` are the bottom layer and never import the
simulation or distributed packages; ``repro.sim`` sits above them and never
imports ``repro.distributed`` (the router arrives through the
:mod:`repro.sim.routing` seam).  ``repro.distributed`` may import anything
below it.  Violations are exactly the imports whose target layer ranks above
the importing file's layer.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from ..base import Project, Rule, Violation, module_layer

__all__ = ["Rep004ImportLayering"]

_RANK = {"core": 0, "sim": 1, "distributed": 2}


def _resolve_relative(module: str, is_package: bool, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    # ``from . import x`` in a plain module drops the module's own name
    # first; a package __init__ is already named after its package.
    if parts and not is_package:
        parts = parts[:-1]
    hops = node.level - 1
    if hops:
        if hops > len(parts):
            return None
        parts = parts[: len(parts) - hops]
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts)


class Rep004ImportLayering(Rule):
    id = "REP004"
    summary = "import crosses the layer boundary upward"

    def check(self, project: Project) -> Iterable[Violation]:
        for source in project.files:
            layer = module_layer(source.module)
            if layer is None:
                continue
            yield from self._check_file(source, layer)

    def _check_file(self, source, layer: str) -> Iterator[Violation]:
        rank = _RANK[layer]
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._check_target(source, node, rank, alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_relative(source.module, source.is_package, node)
                if target is not None:
                    yield from self._check_target(source, node, rank, target)

    def _check_target(self, source, node: ast.stmt, rank: int, target: str) -> Iterator[Violation]:
        target_layer = module_layer(target)
        if target_layer is None or _RANK[target_layer] <= rank:
            return
        yield Violation(
            rule=self.id,
            path=source.path,
            line=node.lineno,
            message=(
                f"'{source.module}' ({module_layer(source.module)} layer) "
                f"imports '{target}' ({target_layer} layer); dependencies "
                "must point downward (core/adts < sim < distributed)"
            ),
        )
