"""REP003 — no wall-clock time inside ``repro`` outside the reporting layer.

Simulated time comes from the event engine; reading the host clock inside
the model would couple results to the machine running them.  The analysis /
reporting layer (``repro.analysis``) may time real-world work.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Set

from ..base import Project, Rule, Violation

__all__ = ["Rep003WallClock"]

#: ``time.<attr>`` accessors that read the host clock.
_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
#: ``datetime.<attr>`` / ``date.<attr>`` constructors that read the clock.
_DATETIME_ATTRS = {"now", "utcnow", "today"}
#: Modules exempt from the rule (real-world reporting may be timed).
_EXEMPT_PREFIXES = ("repro.analysis",)


class Rep003WallClock(Rule):
    id = "REP003"
    summary = "wall-clock access inside the deterministic layers"

    def check(self, project: Project) -> Iterable[Violation]:
        for source in project.files:
            if not source.module.startswith("repro."):
                continue
            if source.module.startswith(_EXEMPT_PREFIXES):
                continue
            yield from self._check_file(source)

    def _check_file(self, source) -> Iterator[Violation]:
        #: local names bound to clock functions by ``from time import ...``.
        imported_clocks: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_ATTRS:
                        imported_clocks.add(alias.asname or alias.name)
                        yield self._violation(source, node, f"time.{alias.name}")
            elif isinstance(node, ast.Attribute):
                owner = node.value
                if isinstance(owner, ast.Name):
                    if owner.id == "time" and node.attr in _TIME_ATTRS:
                        yield self._violation(source, node, f"time.{node.attr}")
                    elif owner.id in ("datetime", "date") and node.attr in _DATETIME_ATTRS:
                        yield self._violation(source, node, f"{owner.id}.{node.attr}")
                elif (
                    isinstance(owner, ast.Attribute)
                    and owner.attr in ("datetime", "date")
                    and node.attr in _DATETIME_ATTRS
                ):
                    yield self._violation(source, node, f"{owner.attr}.{node.attr}")
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in imported_clocks:
                    yield self._violation(source, node, node.func.id)

    def _violation(self, source, node: ast.AST, name: str) -> Violation:
        return Violation(
            rule=self.id,
            path=source.path,
            line=getattr(node, "lineno", 1),
            message=(
                f"wall-clock access '{name}': simulated time comes from the "
                "event engine; only repro.analysis may read the host clock"
            ),
        )
