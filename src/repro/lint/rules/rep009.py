"""REP009 — no lambda/closure allocation inside per-event functions.

Every ``lambda`` expression and nested ``def`` that executes inside a
function body allocates a fresh function object — plus a cell per captured
variable — on *each* execution.  On the simulator's per-event paths
(callbacks scheduled per operation, per commit, per terminal think) those
allocations add interpreter calls and garbage for work a bound method or a
``functools.partial`` of one does with none: a partial of a bound method
also profiles as only the inner call, keeping the calls/event metric
honest.  The fused-grant-path pass converted the hot callbacks to partials;
this rule keeps the pattern from creeping back.

Checked: ``lambda`` expressions and nested function definitions inside
function bodies of ``repro.sim`` and ``repro.distributed``.  Not checked:
setup bodies (``__init__`` / ``__post_init__`` / ``reset`` run once per run
or per parameter point), the allow-listed functions below (their closures
are allocated a bounded number of times per run), lambdas at module or
class scope (evaluated once at import), and anything under the standard
pragma (``# repro-lint: disable=REP009``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from ..base import Project, Rule, SourceFile, Violation

__all__ = ["Rep009ClosureAllocation"]

#: Packages whose function bodies the rule examines.
_CHECKED_PREFIXES = ("repro.sim", "repro.distributed")

#: Constructor-cadence methods: run once per run or per parameter point.
_SETUP_FUNCTIONS = ("__init__", "__post_init__", "reset")

#: Functions whose closures are allocated a bounded number of times per
#: run, not per event — the closure is the clear way to write them.
_ALLOWED_FUNCTIONS = {
    "_rebind_submit",  # router: fused submit compiled once per (re)bind, not per event
}


class Rep009ClosureAllocation(Rule):
    id = "REP009"
    summary = "lambda/closure allocated inside a per-event function"

    def check(self, project: Project) -> Iterable[Violation]:
        for source in project.files:
            if not source.module.startswith(_CHECKED_PREFIXES):
                continue
            yield from self._scan(
                source,
                list(ast.iter_child_nodes(source.tree)),
                in_function=False,
                exempt=False,
            )

    def _scan(
        self,
        source: SourceFile,
        nodes: Sequence[ast.AST],
        in_function: bool,
        exempt: bool,
    ) -> Iterator[Violation]:
        """Walk ``nodes`` tracking whether the enclosing scope is a
        (non-exempt) function body, i.e. whether an allocation here repeats
        per call."""
        for child in nodes:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_exempt = (
                    exempt
                    or child.name in _SETUP_FUNCTIONS
                    or child.name in _ALLOWED_FUNCTIONS
                )
                if in_function and not child_exempt:
                    yield self._violation(
                        source, child, f"nested function '{child.name}'"
                    )
                # Defaults and decorators evaluate at definition time — the
                # enclosing scope's cadence; the body runs per call.
                definition_time = [
                    default
                    for default in (
                        list(child.args.defaults) + list(child.args.kw_defaults)
                    )
                    if default is not None
                ] + list(child.decorator_list)
                yield from self._scan(source, definition_time, in_function, exempt)
                yield from self._scan(source, child.body, True, child_exempt)
            elif isinstance(child, ast.Lambda):
                if in_function and not exempt:
                    yield self._violation(source, child, "lambda")
                yield from self._scan(source, [child.body], in_function, exempt)
            else:
                yield from self._scan(
                    source, list(ast.iter_child_nodes(child)), in_function, exempt
                )

    def _violation(self, source: SourceFile, node: ast.AST, what: str) -> Violation:
        return Violation(
            rule=self.id,
            path=source.path,
            line=getattr(node, "lineno", 1),
            message=(
                f"{what} is allocated on every call of its enclosing "
                "function; on a per-event path use a bound method or "
                "functools.partial (they also profile without a wrapper "
                "frame), allow-list the enclosing function in rep009.py if "
                "its allocations are per-run, or suppress with "
                "'# repro-lint: disable=REP009'"
            ),
        )
