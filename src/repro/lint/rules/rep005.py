"""REP005 — protocol-seam conformance.

The pluggable seams (`ConcurrencyControlBackend`, `ReplicationProtocol`,
`CommitProtocol`, `PlacementPolicy`) are wired three ways: subclasses
override the abstract surface, a factory/registry in the defining module
maps names to classes, and the CLI exposes the names as static ``choices``.
Nothing ties the three together at runtime until a run actually selects the
protocol — this rule catches the drift statically.  A concrete subclass
(name not starting with ``_``) must

1. override, directly or via an analyzed ancestor, every public method the
   seam base leaves raising ``NotImplementedError``;
2. be referenced somewhere else in its defining module (the factory
   function or registry literal);
3. when the seam is CLI-selectable and the project includes ``repro.cli``,
   have its ``name`` literal present in some CLI ``choices`` list.

Backend subclasses skip check 3: their CLI choices derive dynamically from
``ConflictPolicy``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..base import Project, Rule, SourceFile, Violation

__all__ = ["Rep005SeamConformance"]

_SEAM_BASES = {
    "ConcurrencyControlBackend",
    "ReplicationProtocol",
    "CommitProtocol",
    "PlacementPolicy",
}
#: Seams whose instances are selected by a static CLI ``choices`` list.
_CLI_SEAMS = {"ReplicationProtocol", "CommitProtocol", "PlacementPolicy"}


class _ClassInfo:
    def __init__(self, source: SourceFile, node: ast.ClassDef):
        self.source = source
        self.node = node
        self.name = node.name
        self.bases = [Rule.dotted_name(base) for base in node.bases]
        self.methods: Dict[str, ast.FunctionDef] = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        #: the ``name = "..."`` registry key, when declared.
        self.registry_name: Optional[str] = None
        for item in node.body:
            if (
                isinstance(item, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "name" for t in item.targets)
                and isinstance(item.value, ast.Constant)
                and isinstance(item.value.value, str)
            ):
                self.registry_name = item.value.value


class Rep005SeamConformance(Rule):
    id = "REP005"
    summary = "protocol subclass out of sync with its seam/factory/CLI"

    def check(self, project: Project) -> Iterable[Violation]:
        classes: Dict[str, _ClassInfo] = {}
        for source, node in project.walk():
            if isinstance(node, ast.ClassDef):
                classes[node.name] = _ClassInfo(source, node)

        cli_choices = self._cli_choices(project)
        violations: List[Violation] = []
        for info in classes.values():
            seam = self._seam_of(info, classes)
            if seam is None or info.name in _SEAM_BASES or info.name.startswith("_"):
                continue
            base_info = classes.get(seam)
            if base_info is None:
                continue
            violations.extend(
                self._check_concrete(info, base_info, classes, cli_choices)
            )
        return violations

    # ------------------------------------------------------------------
    def _seam_of(
        self, info: _ClassInfo, classes: Dict[str, _ClassInfo]
    ) -> Optional[str]:
        """The seam base this class (transitively) derives from, if any."""
        seen: Set[str] = set()
        frontier = [info]
        while frontier:
            current = frontier.pop()
            for base in current.bases:
                if base is None:
                    continue
                base_name = base.split(".")[-1]
                if base_name in _SEAM_BASES:
                    return base_name
                if base_name in classes and base_name not in seen:
                    seen.add(base_name)
                    frontier.append(classes[base_name])
        return None

    def _abstract_surface(self, base: _ClassInfo) -> List[str]:
        return sorted(
            name
            for name, method in base.methods.items()
            if not name.startswith("_") and self.raises_not_implemented(method)
        )

    def _overrides(
        self, info: _ClassInfo, classes: Dict[str, _ClassInfo], method: str
    ) -> bool:
        """True when the class or an analyzed ancestor (below the seam base)
        provides a real (non-NotImplementedError) body for ``method``."""
        seen: Set[str] = set()
        frontier = [info]
        while frontier:
            current = frontier.pop()
            candidate = current.methods.get(method)
            if candidate is not None and not self.raises_not_implemented(candidate):
                return True
            for base in current.bases:
                base_name = (base or "").split(".")[-1]
                if base_name in _SEAM_BASES:
                    continue
                ancestor = classes.get(base_name)
                if ancestor is not None and base_name not in seen:
                    seen.add(base_name)
                    frontier.append(ancestor)
        return False

    def _referenced_in_module(self, info: _ClassInfo) -> bool:
        """Name-load of the class outside its own definition (the registry)."""
        for node in ast.walk(info.source.tree):
            if node is info.node:
                continue
            if (
                isinstance(node, ast.Name)
                and node.id == info.name
                and isinstance(node.ctx, ast.Load)
            ):
                # Skip loads *inside* the class's own body (e.g. decorators
                # are outside; super() calls use the name too — they still
                # count as registry-ish only when outside the ClassDef).
                if not self._inside(info.node, node):
                    return True
        return False

    @staticmethod
    def _inside(outer: ast.AST, node: ast.AST) -> bool:
        return any(node is child for child in ast.walk(outer))

    def _cli_choices(self, project: Project) -> Optional[Set[str]]:
        """Union of string literals in CLI ``choices=`` lists (None: no CLI)."""
        cli = project.module("repro.cli")
        if cli is None:
            return None
        choices: Set[str] = set()
        for node in ast.walk(cli.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg != "choices":
                    continue
                for element in ast.walk(keyword.value):
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        choices.add(element.value)
        return choices

    # ------------------------------------------------------------------
    def _check_concrete(
        self,
        info: _ClassInfo,
        base: _ClassInfo,
        classes: Dict[str, _ClassInfo],
        cli_choices: Optional[Set[str]],
    ) -> Iterable[Violation]:
        for method in self._abstract_surface(base):
            if not self._overrides(info, classes, method):
                yield Violation(
                    rule=self.id,
                    path=info.source.path,
                    line=info.node.lineno,
                    message=(
                        f"{info.name} does not override abstract "
                        f"{base.name}.{method}()"
                    ),
                )
        if not self._referenced_in_module(info):
            yield Violation(
                rule=self.id,
                path=info.source.path,
                line=info.node.lineno,
                message=(
                    f"{info.name} is not registered in its module's "
                    f"factory/registry (no reference outside the class body)"
                ),
            )
        if (
            cli_choices is not None
            and base.name in _CLI_SEAMS
            and info.registry_name is not None
            and info.registry_name not in cli_choices
        ):
            yield Violation(
                rule=self.id,
                path=info.source.path,
                line=info.node.lineno,
                message=(
                    f"{info.name} (name='{info.registry_name}') is missing "
                    "from the CLI choices lists in repro/cli.py"
                ),
            )
