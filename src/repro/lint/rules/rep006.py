"""REP006 — no silently lost counters.

Two clauses:

1. every ``int`` field declared on :class:`RunMetrics` must be read inside
   its ``counters()`` method — that dict is the single source of truth for
   the CLI ``--json`` counter block and ``tools/bench_summary.py``;
2. every field of a ``*Statistics`` counter class that is incremented
   (``stats.x += ...``) anywhere must be read by attribute name somewhere in
   the analyzed tree (a summary dict, ``as_dict()``, the CLI payload, ...).
   A counter that is bumped but never surfaced is measurement work thrown
   away — and invisible drift once BENCH_summary is compared across PRs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ..base import Project, Rule, Violation

__all__ = ["Rep006CounterSurfacing"]


class Rep006CounterSurfacing(Rule):
    id = "REP006"
    summary = "counter incremented but never surfaced"

    def check(self, project: Project) -> Iterable[Violation]:
        violations: List[Violation] = []
        violations.extend(self._check_run_metrics(project))
        violations.extend(self._check_statistics(project))
        return violations

    # ------------------------------------------------------------------
    # Clause 1: RunMetrics fields vs counters()
    # ------------------------------------------------------------------
    def _check_run_metrics(self, project: Project) -> Iterable[Violation]:
        for source, node in project.walk():
            if not (isinstance(node, ast.ClassDef) and node.name == "RunMetrics"):
                continue
            int_fields = [
                item.target.id
                for item in node.body
                if isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and isinstance(item.annotation, ast.Name)
                and item.annotation.id == "int"
            ]
            counters = next(
                (
                    item
                    for item in node.body
                    if isinstance(item, ast.FunctionDef) and item.name == "counters"
                ),
                None,
            )
            if counters is None:
                yield Violation(
                    rule=self.id,
                    path=source.path,
                    line=node.lineno,
                    message="RunMetrics has no counters() method",
                )
                continue
            surfaced = {
                inner.attr
                for inner in ast.walk(counters)
                if isinstance(inner, ast.Attribute)
                and isinstance(inner.ctx, ast.Load)
            }
            for field in int_fields:
                if field not in surfaced:
                    yield Violation(
                        rule=self.id,
                        path=source.path,
                        line=node.lineno,
                        message=(
                            f"RunMetrics.{field} is declared but not surfaced "
                            "in counters()"
                        ),
                    )

    # ------------------------------------------------------------------
    # Clause 2: *Statistics increments vs reads
    # ------------------------------------------------------------------
    def _check_statistics(self, project: Project) -> Iterable[Violation]:
        stat_fields: Set[str] = set()
        for _, node in project.walk():
            if isinstance(node, ast.ClassDef) and node.name.endswith("Statistics"):
                for item in node.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        stat_fields.add(item.target.id)
        if not stat_fields:
            return

        increments: Dict[str, Tuple[str, int]] = {}
        reads: Set[str] = set()
        for source, node in project.walk():
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and node.target.attr in stat_fields
            ):
                increments.setdefault(
                    node.target.attr, (source.path, node.lineno)
                )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in stat_fields
            ):
                reads.add(node.attr)

        for field in sorted(increments):
            if field in reads:
                continue
            path, line = increments[field]
            yield Violation(
                rule=self.id,
                path=path,
                line=line,
                message=(
                    f"counter '{field}' is incremented here but never read — "
                    "surface it in a summary/as_dict/CLI payload or drop it"
                ),
            )
