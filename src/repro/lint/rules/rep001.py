"""REP001 — all randomness flows through :class:`repro.sim.random_source`.

The equivalence tests pin crc32-derived random streams; a stray
``random.random()`` (or ``secrets`` draw) anywhere else makes a run depend on
state the ``(parameters, seed)`` pair does not capture.  Only
``repro/sim/random_source.py`` may import the stdlib generators.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Project, Rule, Violation

__all__ = ["Rep001RandomSource"]

_FORBIDDEN = {"random", "secrets"}
_ALLOWED_MODULE = "repro.sim.random_source"


class Rep001RandomSource(Rule):
    id = "REP001"
    summary = "random/secrets used outside sim/random_source.py"

    def check(self, project: Project) -> Iterable[Violation]:
        for source in project.files:
            if source.module == _ALLOWED_MODULE:
                continue
            yield from self._check_file(source)

    def _check_file(self, source) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _FORBIDDEN:
                        yield self._violation(source, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    root = node.module.split(".")[0]
                    if root in _FORBIDDEN:
                        yield self._violation(source, node, node.module)

    def _violation(self, source, node: ast.stmt, name: str) -> Violation:
        return Violation(
            rule=self.id,
            path=source.path,
            line=node.lineno,
            message=(
                f"import of '{name}': stochastic draws must go through "
                "RandomSource (repro/sim/random_source.py) so streams stay "
                "pinnable"
            ),
        )
