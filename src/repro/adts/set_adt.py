"""The Set data type — Section 3.2.3, Tables V and VI.

Operations:

``insert(x)``
    adds ``x`` to the set and returns ``"ok"`` (duplicates are absorbed);
``delete(x)``
    removes ``x`` and returns ``"Success"``, or ``"Failure"`` if absent;
``member(x)``
    returns ``"yes"`` or ``"no"``.

Inserts always commute with each other; operations on *different* elements
commute; operations on the same element generally do not, but ``insert`` is
recoverable relative to everything (its return value is the constant "ok"),
which is the property sequence (3) of the paper exploits.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Sequence, Tuple

from ..core.compatibility import Answer, CompatibilitySpec, RelationTable
from ..core.specification import Invocation, OperationResult, OperationSpec
from .base import AtomicType

__all__ = ["SetType", "SET_OPERATIONS"]

SET_OPERATIONS: Tuple[str, ...] = ("insert", "delete", "member")

State = FrozenSet[Any]


def _insert(state: State, args: Tuple[Any, ...]) -> OperationResult:
    (element,) = args
    return OperationResult(state=state | {element}, value="ok")


def _delete(state: State, args: Tuple[Any, ...]) -> OperationResult:
    (element,) = args
    if element in state:
        return OperationResult(state=state - {element}, value="Success")
    return OperationResult(state=state, value="Failure")


def _member(state: State, args: Tuple[Any, ...]) -> OperationResult:
    (element,) = args
    return OperationResult(state=state, value="yes" if element in state else "no")


class SetType(AtomicType):
    """Mathematical set of elements."""

    name = "set"

    def __init__(self) -> None:
        super().__init__(
            {
                "insert": OperationSpec(name="insert", function=_insert),
                "delete": OperationSpec(name="delete", function=_delete),
                "member": OperationSpec(name="member", function=_member, is_read_only=True),
            }
        )

    # ------------------------------------------------------------------
    # Specification interface
    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        return frozenset()

    def sample_states(self) -> Sequence[State]:
        return [frozenset(), frozenset({1}), frozenset({2}), frozenset({1, 2})]

    def sample_invocations(self, op_name: str) -> Sequence[Invocation]:
        return [Invocation(op_name, (1,)), Invocation(op_name, (2,))]

    # ------------------------------------------------------------------
    # Declared tables (paper Tables V and VI)
    # ------------------------------------------------------------------
    def compatibility(self) -> CompatibilitySpec:
        commutativity = RelationTable.from_rows(
            name="Table V (set commutativity)",
            operations=SET_OPERATIONS,
            rows={
                "insert": [Answer.YES, Answer.YES_DP, Answer.YES_DP],
                "delete": [Answer.YES_DP, Answer.YES_DP, Answer.YES_DP],
                "member": [Answer.YES_DP, Answer.YES_DP, Answer.YES],
            },
        )
        recoverability = RelationTable.from_rows(
            name="Table VI (set recoverability)",
            operations=SET_OPERATIONS,
            rows={
                "insert": [Answer.YES, Answer.YES, Answer.YES],
                "delete": [Answer.YES_DP, Answer.YES_DP, Answer.YES],
                "member": [Answer.YES_DP, Answer.YES_DP, Answer.YES],
            },
        )
        return CompatibilitySpec(
            type_name=self.name,
            commutativity=commutativity,
            recoverability=recoverability,
        )
