"""The Table (keyed map) data type — Section 3.2.4, Tables VII and VIII.

A Table stores ``(key, item)`` pairs with unique keys.  Operations:

``insert(key, item)``
    adds the pair; returns ``"Failure"`` if the key already exists, otherwise
    ``"Success"``;
``delete(key)``
    removes the pair; ``"Failure"`` if the key is absent, else ``"Success"``;
``lookup(key)``
    returns the stored item, or ``"not_found"``;
``size()``
    returns the number of entries;
``modify(key, item)``
    replaces the item stored under ``key``; ``"Failure"`` if absent, else
    ``"Success"``.

The interesting asymmetry (the paper's own motivating discussion): ``insert``
and ``delete`` are recoverable relative to ``size`` — their return values do
not depend on a prior ``size`` — but ``size`` is *not* recoverable relative to
them, because the count it returns changes.

The *parameter* used for the Yes-SP / Yes-DP qualification is the **key**,
not the full argument list: ``modify(k, a)`` and ``lookup(k)`` operate on the
same parameter even though their argument tuples differ.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Sequence, Tuple

from ..core.compatibility import Answer, CompatibilitySpec, RelationTable
from ..core.specification import Invocation, OperationResult, OperationSpec
from .base import AtomicType

__all__ = ["TableType", "TABLE_OPERATIONS"]

TABLE_OPERATIONS: Tuple[str, ...] = ("insert", "delete", "lookup", "size", "modify")

#: Table states are plain dicts treated as immutable values; every operation
#: that changes the table returns a fresh dict.
State = Dict[Hashable, Any]


def _insert(state: State, args: Tuple[Any, ...]) -> OperationResult:
    key, item = args
    if key in state:
        return OperationResult(state=state, value="Failure")
    new_state = dict(state)
    new_state[key] = item
    return OperationResult(state=new_state, value="Success")


def _delete(state: State, args: Tuple[Any, ...]) -> OperationResult:
    (key,) = args
    if key not in state:
        return OperationResult(state=state, value="Failure")
    new_state = dict(state)
    del new_state[key]
    return OperationResult(state=new_state, value="Success")


def _lookup(state: State, args: Tuple[Any, ...]) -> OperationResult:
    (key,) = args
    return OperationResult(state=state, value=state.get(key, "not_found"))


def _size(state: State, args: Tuple[Any, ...]) -> OperationResult:
    return OperationResult(state=state, value=len(state))


def _modify(state: State, args: Tuple[Any, ...]) -> OperationResult:
    key, item = args
    if key not in state:
        return OperationResult(state=state, value="Failure")
    new_state = dict(state)
    new_state[key] = item
    return OperationResult(state=new_state, value="Success")


class TableType(AtomicType):
    """Keyed table of unique ``(key, item)`` pairs."""

    name = "table"

    def __init__(self) -> None:
        super().__init__(
            {
                "insert": OperationSpec(name="insert", function=_insert),
                "delete": OperationSpec(name="delete", function=_delete),
                "lookup": OperationSpec(name="lookup", function=_lookup, is_read_only=True),
                "size": OperationSpec(name="size", function=_size, is_read_only=True),
                "modify": OperationSpec(name="modify", function=_modify),
            }
        )

    # ------------------------------------------------------------------
    # Specification interface
    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        return {}

    def sample_states(self) -> Sequence[State]:
        return [{}, {"k1": "a"}, {"k2": "b"}, {"k1": "a", "k2": "b"}]

    def sample_invocations(self, op_name: str) -> Sequence[Invocation]:
        if op_name == "size":
            return [Invocation("size")]
        if op_name in ("insert", "modify"):
            return [
                Invocation(op_name, ("k1", "x")),
                Invocation(op_name, ("k1", "y")),
                Invocation(op_name, ("k2", "x")),
            ]
        return [Invocation(op_name, ("k1",)), Invocation(op_name, ("k2",))]

    def conflict_parameter(self, invocation: Invocation) -> Hashable:
        """The key is the parameter that decides Yes-SP / Yes-DP entries."""
        if invocation.args:
            return invocation.args[0]
        return None

    # ------------------------------------------------------------------
    # Declared tables (paper Tables VII and VIII)
    # ------------------------------------------------------------------
    def compatibility(self) -> CompatibilitySpec:
        ops = TABLE_OPERATIONS
        commutativity = RelationTable.from_rows(
            name="Table VII (table commutativity)",
            operations=ops,
            rows={
                "insert": [Answer.YES_DP, Answer.YES_DP, Answer.YES_DP, Answer.NO, Answer.YES_DP],
                "delete": [Answer.YES_DP, Answer.YES_DP, Answer.YES_DP, Answer.NO, Answer.YES_DP],
                "lookup": [Answer.YES_DP, Answer.YES_DP, Answer.YES, Answer.YES, Answer.YES_DP],
                "size": [Answer.NO, Answer.NO, Answer.YES, Answer.YES, Answer.YES],
                "modify": [Answer.YES_DP, Answer.YES_DP, Answer.YES_DP, Answer.YES, Answer.YES_DP],
            },
        )
        recoverability = RelationTable.from_rows(
            name="Table VIII (table recoverability)",
            operations=ops,
            rows={
                "insert": [Answer.YES_DP, Answer.YES_DP, Answer.YES, Answer.YES, Answer.YES],
                "delete": [Answer.YES_DP, Answer.YES_DP, Answer.YES, Answer.YES, Answer.YES],
                "lookup": [Answer.YES_DP, Answer.YES_DP, Answer.YES, Answer.YES, Answer.YES_DP],
                "size": [Answer.NO, Answer.NO, Answer.YES, Answer.YES, Answer.YES],
                "modify": [Answer.YES_DP, Answer.YES_DP, Answer.YES, Answer.YES, Answer.YES],
            },
        )
        return CompatibilitySpec(
            type_name=self.name,
            commutativity=commutativity,
            recoverability=recoverability,
        )
