"""The Stack data type — Section 3.2.2, Tables III and IV.

Operations:

``push(x)``
    adds ``x`` to the top of the stack and returns ``"ok"``;
``pop()``
    removes and returns the top element, or returns ``None`` (the paper's
    *null*) if the stack is empty;
``top()``
    returns the top element without removing it, or ``None`` if empty.

Two pushes do not commute (the final stack order differs) unless they push the
same element, but a push *is* recoverable relative to another push, to a top,
and to a pop: its return value ("ok") never depends on what executed before
it.  This is the paper's flagship example of recoverability buying concurrency
that commutativity cannot.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from ..core.compatibility import Answer, CompatibilitySpec, RelationTable
from ..core.specification import Invocation, OperationResult, OperationSpec
from .base import AtomicType

__all__ = ["StackType", "STACK_OPERATIONS"]

STACK_OPERATIONS: Tuple[str, ...] = ("push", "pop", "top")

State = Tuple[Any, ...]


def _push(state: State, args: Tuple[Any, ...]) -> OperationResult:
    (element,) = args
    return OperationResult(state=state + (element,), value="ok")


def _pop(state: State, args: Tuple[Any, ...]) -> OperationResult:
    if not state:
        return OperationResult(state=state, value=None)
    return OperationResult(state=state[:-1], value=state[-1])


def _top(state: State, args: Tuple[Any, ...]) -> OperationResult:
    if not state:
        return OperationResult(state=state, value=None)
    return OperationResult(state=state, value=state[-1])


def _push_inverse(state_before: State, args: Tuple[Any, ...], value: Any) -> Invocation:
    """The logical undo of ``push(x)`` is a ``pop()`` of the pushed element."""
    return Invocation("pop")


class StackType(AtomicType):
    """LIFO stack object."""

    name = "stack"

    def __init__(self) -> None:
        super().__init__(
            {
                "push": OperationSpec(name="push", function=_push, inverse=_push_inverse),
                "pop": OperationSpec(name="pop", function=_pop),
                "top": OperationSpec(name="top", function=_top, is_read_only=True),
            }
        )

    # ------------------------------------------------------------------
    # Specification interface
    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        return ()

    def sample_states(self) -> Sequence[State]:
        return [(), (1,), (1, 2), (2, 2), (3, 1, 2)]

    def sample_invocations(self, op_name: str) -> Sequence[Invocation]:
        if op_name == "push":
            return [Invocation("push", (1,)), Invocation("push", (2,))]
        return [Invocation(op_name)]

    # ------------------------------------------------------------------
    # Declared tables (paper Tables III and IV)
    # ------------------------------------------------------------------
    def compatibility(self) -> CompatibilitySpec:
        commutativity = RelationTable.from_rows(
            name="Table III (stack commutativity)",
            operations=STACK_OPERATIONS,
            rows={
                "push": [Answer.YES_SP, Answer.NO, Answer.NO],
                "pop": [Answer.NO, Answer.NO, Answer.NO],
                "top": [Answer.NO, Answer.NO, Answer.YES],
            },
        )
        recoverability = RelationTable.from_rows(
            name="Table IV (stack recoverability)",
            operations=STACK_OPERATIONS,
            rows={
                "push": [Answer.YES, Answer.YES, Answer.YES],
                "pop": [Answer.NO, Answer.NO, Answer.YES],
                "top": [Answer.NO, Answer.NO, Answer.YES],
            },
        )
        return CompatibilitySpec(
            type_name=self.name,
            commutativity=commutativity,
            recoverability=recoverability,
        )
