"""A Counter data type (not in the paper; an extra substrate type).

Counters are the canonical "hot-spot" object in semantic concurrency control:
``increment`` and ``decrement`` commute with each other, while ``read``
conflicts with both under commutativity.  Under recoverability the updates are
additionally recoverable relative to ``read`` (their return value is the
constant "ok"), so an update never waits behind an uncommitted reader.

The type is used by the examples and by ablation benchmarks; its tables are
*derived*, and also declared here so the soundness tests cover it.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from ..core.compatibility import Answer, CompatibilitySpec, RelationTable
from ..core.specification import Invocation, OperationResult, OperationSpec
from .base import AtomicType

__all__ = ["CounterType", "COUNTER_OPERATIONS"]

COUNTER_OPERATIONS: Tuple[str, ...] = ("increment", "decrement", "read")


def _increment(state: int, args: Tuple[Any, ...]) -> OperationResult:
    amount = args[0] if args else 1
    return OperationResult(state=state + amount, value="ok")


def _decrement(state: int, args: Tuple[Any, ...]) -> OperationResult:
    amount = args[0] if args else 1
    return OperationResult(state=state - amount, value="ok")


def _read(state: int, args: Tuple[Any, ...]) -> OperationResult:
    return OperationResult(state=state, value=state)


def _increment_inverse(state_before: int, args: Tuple[Any, ...], value: Any) -> Invocation:
    return Invocation("decrement", (args[0] if args else 1,))


def _decrement_inverse(state_before: int, args: Tuple[Any, ...], value: Any) -> Invocation:
    return Invocation("increment", (args[0] if args else 1,))


class CounterType(AtomicType):
    """Unbounded integer counter with blind increments and decrements."""

    name = "counter"

    def __init__(self) -> None:
        super().__init__(
            {
                "increment": OperationSpec(
                    name="increment", function=_increment, inverse=_increment_inverse
                ),
                "decrement": OperationSpec(
                    name="decrement", function=_decrement, inverse=_decrement_inverse
                ),
                "read": OperationSpec(name="read", function=_read, is_read_only=True),
            }
        )

    # ------------------------------------------------------------------
    # Specification interface
    # ------------------------------------------------------------------
    def initial_state(self) -> int:
        return 0

    def sample_states(self) -> Sequence[int]:
        return [0, 1, 5]

    def sample_invocations(self, op_name: str) -> Sequence[Invocation]:
        if op_name == "read":
            return [Invocation("read")]
        return [Invocation(op_name, (1,)), Invocation(op_name, (3,))]

    # ------------------------------------------------------------------
    # Declared tables
    # ------------------------------------------------------------------
    def compatibility(self) -> CompatibilitySpec:
        commutativity = RelationTable.from_rows(
            name="counter commutativity",
            operations=COUNTER_OPERATIONS,
            rows={
                "increment": [Answer.YES, Answer.YES, Answer.NO],
                "decrement": [Answer.YES, Answer.YES, Answer.NO],
                "read": [Answer.NO, Answer.NO, Answer.YES],
            },
        )
        recoverability = RelationTable.from_rows(
            name="counter recoverability",
            operations=COUNTER_OPERATIONS,
            rows={
                "increment": [Answer.YES, Answer.YES, Answer.YES],
                "decrement": [Answer.YES, Answer.YES, Answer.YES],
                "read": [Answer.NO, Answer.NO, Answer.YES],
            },
        )
        return CompatibilitySpec(
            type_name=self.name,
            commutativity=commutativity,
            recoverability=recoverability,
        )
