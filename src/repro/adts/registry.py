"""Registry of the bundled atomic data types.

The registry gives the rest of the package (examples, workload generators,
benchmarks) one place to look up a type by name, and gives users a hook to
register their own :class:`~repro.adts.base.AtomicType` implementations so
that the scheduler and derivation machinery can find them.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.errors import SpecificationError
from .base import AtomicType
from .counter import CounterType
from .page import PageType
from .queue_adt import QueueType
from .set_adt import SetType
from .stack import StackType
from .table import TableType

__all__ = [
    "register_type",
    "get_type",
    "available_types",
    "paper_types",
]

_FACTORIES: Dict[str, Callable[[], AtomicType]] = {}


def register_type(name: str, factory: Callable[[], AtomicType], replace: bool = False) -> None:
    """Register a type factory under ``name``.

    Raises :class:`~repro.core.errors.SpecificationError` if the name is taken
    and ``replace`` is not set.
    """
    if name in _FACTORIES and not replace:
        raise SpecificationError(f"a type named {name!r} is already registered")
    _FACTORIES[name] = factory


def get_type(name: str) -> AtomicType:
    """Instantiate the registered type called ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise SpecificationError(
            f"unknown type {name!r}; registered types: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def available_types() -> List[str]:
    """Names of every registered type, sorted."""
    return sorted(_FACTORIES)


def paper_types() -> List[str]:
    """The four data types whose tables appear in the paper (Tables I-VIII)."""
    return ["page", "stack", "set", "table"]


# Built-in registrations.
register_type("page", PageType)
register_type("stack", StackType)
register_type("set", SetType)
register_type("table", TableType)
register_type("counter", CounterType)
register_type("queue", QueueType)
