"""The Page (read/write) data type — Section 3.2.1, Tables I and II.

A page holds a single value; the only operations are ``read()`` and
``write(value)``.  Under commutativity the traditional conflict rule applies
(two operations conflict if either is a write).  Under recoverability only
``(read, write)`` remains a conflict: a write's return value ("ok") does not
depend on any earlier operation, so both ``(write, read)`` and
``(write, write)`` are recoverable — the later writer merely acquires a
commit dependency on the earlier transaction.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from ..core.compatibility import Answer, CompatibilitySpec, RelationTable
from ..core.specification import Invocation, OperationResult, OperationSpec
from .base import AtomicType

__all__ = ["PageType", "PAGE_OPERATIONS"]

PAGE_OPERATIONS: Tuple[str, ...] = ("read", "write")

#: Value stored by a freshly created page.
_INITIAL_VALUE = 0


def _read(state: Any, args: Tuple[Any, ...]) -> OperationResult:
    return OperationResult(state=state, value=state)


def _write(state: Any, args: Tuple[Any, ...]) -> OperationResult:
    (value,) = args
    return OperationResult(state=value, value="ok")


class PageType(AtomicType):
    """Read/write page object (the traditional database data model)."""

    name = "page"

    def __init__(self) -> None:
        super().__init__(
            {
                "read": OperationSpec(name="read", function=_read, is_read_only=True),
                "write": OperationSpec(name="write", function=_write),
            }
        )

    # ------------------------------------------------------------------
    # Specification interface
    # ------------------------------------------------------------------
    def initial_state(self) -> Any:
        return _INITIAL_VALUE

    def sample_states(self) -> Sequence[Any]:
        return [0, 1, 7]

    def sample_invocations(self, op_name: str) -> Sequence[Invocation]:
        if op_name == "read":
            return [Invocation("read")]
        return [Invocation("write", (1,)), Invocation("write", (7,))]

    # ------------------------------------------------------------------
    # Declared tables (paper Tables I and II)
    # ------------------------------------------------------------------
    def compatibility(self) -> CompatibilitySpec:
        commutativity = RelationTable.from_rows(
            name="Table I (page commutativity)",
            operations=PAGE_OPERATIONS,
            rows={
                "read": [Answer.YES, Answer.NO],
                "write": [Answer.NO, Answer.NO],
            },
        )
        recoverability = RelationTable.from_rows(
            name="Table II (page recoverability)",
            operations=PAGE_OPERATIONS,
            rows={
                "read": [Answer.YES, Answer.NO],
                "write": [Answer.YES, Answer.YES],
            },
        )
        return CompatibilitySpec(
            type_name=self.name,
            commutativity=commutativity,
            recoverability=recoverability,
        )
