"""Base classes shared by the bundled atomic data types.

An *atomic data type* here is a :class:`~repro.core.specification.TypeSpecification`
subclass whose operations are pure functions over immutable states, plus the
declared compatibility tables from the paper.  :class:`AtomicObject` is a thin
mutable wrapper around one such specification — it is what application code
touches directly in the examples, and what the scheduler's object managers use
to hold the committed state of each object.
"""

from __future__ import annotations

from typing import Any

from ..core.compatibility import CompatibilitySpec
from ..core.specification import Invocation, OperationResult, TypeSpecification

__all__ = ["AtomicType", "AtomicObject"]


class AtomicType(TypeSpecification):
    """Convenience base class for the bundled ADTs.

    Subclasses populate ``self._operations`` in ``__init__`` (via the parent
    constructor) and implement :meth:`initial_state`, the derivation sample
    hooks, and :meth:`compatibility`.
    """

    def make_object(self, name: str, state: Any = None) -> "AtomicObject":
        """Create a named mutable instance of this type.

        ``state`` defaults to :meth:`initial_state`.
        """
        initial = self.initial_state() if state is None else state
        return AtomicObject(name=name, spec=self, state=initial)


class AtomicObject:
    """A named, mutable instance of an atomic data type.

    The object applies operations through the owning specification, so state
    transitions and return values are exactly the ``state``/``return``
    components the paper's definitions are phrased in.  The wrapper never
    mutates states in place; each execution replaces the held state with the
    one produced by the specification.
    """

    def __init__(self, name: str, spec: TypeSpecification, state: Any):
        self.name = name
        self.spec = spec
        self._state = state

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def state(self) -> Any:
        """The current (visible) state of the object."""
        return self._state

    def execute(self, op: str, *args: Any) -> Any:
        """Execute ``op(*args)`` against the current state and return its value."""
        return self.apply(Invocation(op, tuple(args))).value

    def apply(self, invocation: Invocation) -> OperationResult:
        """Apply an :class:`Invocation`, advancing the held state."""
        result = self.spec.apply(self._state, invocation)
        self._state = result.state
        return result

    def peek(self, invocation: Invocation) -> OperationResult:
        """Evaluate an invocation *without* changing the held state."""
        return self.spec.apply(self._state, invocation)

    # ------------------------------------------------------------------
    # Snapshots (used by recovery tests and examples)
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        """Return the current state; states are immutable so this is a copy."""
        return self._state

    def restore(self, state: Any) -> None:
        """Replace the held state with a previously taken snapshot."""
        self._state = state

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def compatibility(self) -> CompatibilitySpec:
        """The declared compatibility tables of the object's type."""
        return self.spec.compatibility()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AtomicObject {self.name!r} type={self.spec.name!r} state={self._state!r}>"
