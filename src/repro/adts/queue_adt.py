"""A FIFO Queue data type (not in the paper; an extra substrate type).

The queue mirrors the stack example from the other end: two ``enqueue``
operations do not commute (the final order differs) but each is recoverable
relative to the other and relative to ``front``/``dequeue``.  It is used by
the order-processing example and by additional tests of the scheduler on
long chains of commit dependencies.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from ..core.compatibility import Answer, CompatibilitySpec, RelationTable
from ..core.specification import Invocation, OperationResult, OperationSpec
from .base import AtomicType

__all__ = ["QueueType", "QUEUE_OPERATIONS"]

QUEUE_OPERATIONS: Tuple[str, ...] = ("enqueue", "dequeue", "front", "length")

State = Tuple[Any, ...]


def _enqueue(state: State, args: Tuple[Any, ...]) -> OperationResult:
    (element,) = args
    return OperationResult(state=state + (element,), value="ok")


def _dequeue(state: State, args: Tuple[Any, ...]) -> OperationResult:
    if not state:
        return OperationResult(state=state, value=None)
    return OperationResult(state=state[1:], value=state[0])


def _front(state: State, args: Tuple[Any, ...]) -> OperationResult:
    if not state:
        return OperationResult(state=state, value=None)
    return OperationResult(state=state, value=state[0])


def _length(state: State, args: Tuple[Any, ...]) -> OperationResult:
    return OperationResult(state=state, value=len(state))


class QueueType(AtomicType):
    """FIFO queue object."""

    name = "queue"

    def __init__(self) -> None:
        super().__init__(
            {
                "enqueue": OperationSpec(name="enqueue", function=_enqueue),
                "dequeue": OperationSpec(name="dequeue", function=_dequeue),
                "front": OperationSpec(name="front", function=_front, is_read_only=True),
                "length": OperationSpec(name="length", function=_length, is_read_only=True),
            }
        )

    # ------------------------------------------------------------------
    # Specification interface
    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        return ()

    def sample_states(self) -> Sequence[State]:
        return [(), (1,), (1, 2), (2, 1), (1, 1, 2)]

    def sample_invocations(self, op_name: str) -> Sequence[Invocation]:
        if op_name == "enqueue":
            return [Invocation("enqueue", (1,)), Invocation("enqueue", (2,))]
        return [Invocation(op_name)]

    # ------------------------------------------------------------------
    # Declared tables
    # ------------------------------------------------------------------
    def compatibility(self) -> CompatibilitySpec:
        ops = QUEUE_OPERATIONS
        commutativity = RelationTable.from_rows(
            name="queue commutativity",
            operations=ops,
            rows={
                # An enqueue changes what dequeue/front/length observe only when
                # the queue is short, but Definition 2 quantifies over all
                # states, so the entries below are the conservative ones.
                "enqueue": [Answer.YES_SP, Answer.NO, Answer.NO, Answer.NO],
                "dequeue": [Answer.NO, Answer.NO, Answer.NO, Answer.NO],
                "front": [Answer.NO, Answer.NO, Answer.YES, Answer.YES],
                "length": [Answer.NO, Answer.NO, Answer.YES, Answer.YES],
            },
        )
        recoverability = RelationTable.from_rows(
            name="queue recoverability",
            operations=ops,
            rows={
                "enqueue": [Answer.YES, Answer.YES, Answer.YES, Answer.YES],
                "dequeue": [Answer.NO, Answer.NO, Answer.YES, Answer.YES],
                "front": [Answer.NO, Answer.NO, Answer.YES, Answer.YES],
                "length": [Answer.NO, Answer.NO, Answer.YES, Answer.YES],
            },
        )
        return CompatibilitySpec(
            type_name=self.name,
            commutativity=commutativity,
            recoverability=recoverability,
        )
