"""Atomic data types used throughout the reproduction.

The four types from the paper's Section 3.2 (Page, Stack, Set, Table) plus two
extra types (Counter, FIFO Queue) that exercise the same machinery in the
examples and tests.  Every type carries both an executable specification
(pure ``state``/``return`` functions) and the declared compatibility tables,
so tables can be *checked* against the semantics, not just asserted.
"""

from .base import AtomicObject, AtomicType
from .counter import COUNTER_OPERATIONS, CounterType
from .page import PAGE_OPERATIONS, PageType
from .queue_adt import QUEUE_OPERATIONS, QueueType
from .registry import available_types, get_type, paper_types, register_type
from .set_adt import SET_OPERATIONS, SetType
from .stack import STACK_OPERATIONS, StackType
from .table import TABLE_OPERATIONS, TableType

__all__ = [
    "AtomicObject",
    "AtomicType",
    "PageType",
    "StackType",
    "SetType",
    "TableType",
    "CounterType",
    "QueueType",
    "PAGE_OPERATIONS",
    "STACK_OPERATIONS",
    "SET_OPERATIONS",
    "TABLE_OPERATIONS",
    "COUNTER_OPERATIONS",
    "QUEUE_OPERATIONS",
    "register_type",
    "get_type",
    "available_types",
    "paper_types",
]
