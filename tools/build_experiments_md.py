"""Regenerate the figure sections of EXPERIMENTS.md from benchmarks/results/.

Run after ``pytest benchmarks/ --benchmark-only``:

    python tools/build_experiments_md.py

The script keeps the hand-written header and Tables section of EXPERIMENTS.md
and rewrites everything from the "## Figures" marker onwards using the
series/summary reports the benchmark harness saved.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"
EXPERIMENTS = ROOT / "EXPERIMENTS.md"

PAPER_CLAIMS = {
    "figure-4": "Peak throughput with recoverability is ~67% above commutativity (at mpl=50); "
    "both curves rise then fall with mpl (thrashing); the relative gain grows with contention.",
    "figure-5": "Response time falls then rises with mpl; recoverability stays below commutativity "
    "once data contention matters.",
    "figure-6": "Blocking ratio is lower with recoverability at every mpl; restart ratios are similar "
    "until thrashing, then lower with recoverability; blocks outnumber restarts.",
    "figure-7": "Cycle-check ratio is ~22% higher with recoverability near the peak; abort length "
    "falls once the system thrashes.",
    "figure-8": "Without fair scheduling both peaks exceed their Figure 4 counterparts.",
    "figure-9": "Blocking and restart ratios are lower than under fair scheduling (Figure 6).",
    "figure-10": "With 5 resource units the peak drops versus infinite resources; recoverability is "
    "~15% ahead at mpl=50 and commutativity thrashes earlier (mpl=25).",
    "figure-11": "With 1 resource unit throughput is very low and the two policies are nearly equal; "
    "recoverability pulls ahead only after thrashing sets in.",
    "figure-12": "Blocking ratio stays lower with recoverability; the gap grows with mpl.",
    "figure-13": "Same qualitative behaviour as Figure 7 under 5 resource units.",
    "figure-14": "Larger P_r raises throughput and delays thrashing (P_r=8 thrashes only beyond "
    "mpl=50); at mpl=50, P_r=8 is more than double P_r=0.",
    "figure-15": "With P_c=2 (stack-like objects) the P_r=8 peak is roughly double P_r=0.",
    "figure-16": "Blocking ratio grows with mpl but more slowly for larger P_r; restart ratios are "
    "similar except at mpl=200.",
    "figure-17": "With 5 resource units the P_r=8 peak improvement over P_r=0 is ~35% at mpl=50, "
    "and thrashing is delayed to mpl=50.",
    "figure-18": "With 1 resource unit throughput is low for every P_r; improvement appears only "
    "once the system thrashes heavily.",
}

RW_FIGURES = [f"figure-{n}" for n in range(4, 14)]
ADT_FIGURES = [f"figure-{n}" for n in range(14, 19)]


def figure_section(figure_id: str) -> str:
    report_path = RESULTS / f"{figure_id}.txt"
    if not report_path.exists():
        body = "*(no measured report found — run `pytest benchmarks/ --benchmark-only`)*"
    else:
        body = "```\n" + report_path.read_text().rstrip("\n") + "\n```"
    claim = PAPER_CLAIMS.get(figure_id, "")
    lines = [f"### {figure_id}", ""]
    if claim:
        lines += [f"**Paper:** {claim}", ""]
    lines += ["**Measured (bench scale):**", "", body, ""]
    return "\n".join(lines)


def main() -> int:
    text = EXPERIMENTS.read_text()
    marker = "## Figures"
    index = text.find(marker)
    if index == -1:
        print("marker '## Figures' not found in EXPERIMENTS.md", file=sys.stderr)
        return 1
    head = text[:index].rstrip("\n") + "\n\n"
    sections = ["## Figures (read/write model)", ""]
    sections += [figure_section(figure_id) for figure_id in RW_FIGURES]
    sections += ["## Figures (abstract-data-type model)", ""]
    sections += [figure_section(figure_id) for figure_id in ADT_FIGURES]
    sections += [
        "## Ablations",
        "",
        "See `benchmarks/results/ablation_*.txt` for the scheduler-overhead, "
        "pseudo-commit-slot, and write-probability ablations described in DESIGN.md.",
        "",
    ]
    EXPERIMENTS.write_text(head + "\n".join(sections))
    print(f"EXPERIMENTS.md rebuilt from {RESULTS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
