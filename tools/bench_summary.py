"""Write BENCH_summary.json: deterministic per-figure counters + timing.

The pytest-benchmark output (BENCH_results.json) records wall-clock times,
which vary run to run and machine to machine.  This tool records the
*deterministic* side of every figure experiment — raw simulation counters
per (figure, variant, multiprogramming level) point — so the performance
trajectory of the reproduction can be tracked exactly: two checkouts that
produce different counters changed behaviour, not noise.

Usage (from the repository root)::

    python tools/bench_summary.py                       # all figures, smoke scale
    python tools/bench_summary.py --scale bench --workers 4
    python tools/bench_summary.py --figures figure-4 figure-4-sites
    python tools/bench_summary.py --output BENCH_summary.json

Every experiment runs through the central registry's parallel runner
(:func:`repro.analysis.run_experiment`); ``--workers N`` fans the seeded
points out over N processes and produces byte-identical counters to the
serial run — only the new ``timing`` block (per-experiment wall-clock
seconds plus the worker count) depends on the host.

Counters recorded per point (summed over the point's runs): completions,
commits, pseudo-commits, blocks, restarts, cycle checks, aborts, total abort
length, commit-dependency edges, simulation-engine events, the simulated
time (a deterministic float), and — for finite-resource points — the
``resource_*`` utilisation counters (CPU/disk served and waits, per site
under per-site placement, plus network messages when a ``msg_time`` cost is
modelled), so resource saturation is visible in the perf trajectory.
Multi-site points additionally carry the ``replication_*`` counters
(protocol messages, failovers, catch-up events, read/write unavailability,
cycle sweeps, the under-replication window) and the ``commit_*`` counters
(prepare rounds/messages/acks, certifications and their aborts,
re-replication work, forced reports), so each protocol's coordination
overhead is tracked per PR — ``figure-4-protocols`` and
``figure-4-commit`` are the experiments built around them.  A ``profile``
block records the deterministic interpreter calls/event at the reference
profile point (mpl=50, 400 completions) — the number the CI perf gate
compares against ``benchmarks/profile_baseline.json`` — together with the
measured per-kernel trajectory of the raw-speed PRs.  Every value except
the ``timing`` block derives only from ``(parameters, seed)`` and the
interpreter minor version; nothing else measures the host machine.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import (  # noqa: E402  (path bootstrap above)
    EXPERIMENT_REGISTRY,
    profile_simulation,
    run_experiment,
)
from repro.core.policy import ConflictPolicy  # noqa: E402
from repro.sim.params import SimulationParameters  # noqa: E402
from repro.analysis.figures import (  # noqa: E402
    BENCH_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    all_figure_ids,
)
from repro.lint import lint_paths, rule_counts  # noqa: E402

_SCALES = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "paper": PAPER_SCALE}


def lint_summary() -> Dict[str, object]:
    """Per-rule violation counts of ``repro lint`` over the package tree.

    Rides along in BENCH_summary.json so the uploaded artifact records the
    static-analysis state of the exact commit the counters came from (the
    gating lint job fails the build on violations; this is the audit trail).
    """
    violations = lint_paths([str(ROOT / "src" / "repro")])
    return {
        "rule_counts": rule_counts(violations),
        "total": len(violations),
    }


#: The hot-loop perf trajectory of the "raw speed" PRs at the reference
#: profile point, in interpreter calls per engine event (python 3.11).
#: Historical record, not recomputed: each entry is the measured value with
#: the named kernel (and everything before it) in place.
_KERNEL_TRAJECTORY = {
    "round2_baseline": 130.99,          # after PR 7's hot-loop overhaul
    "incremental_cycle_detection": 120.80,  # Pearce-Kelly online topo order
    "compiled_compatibility_tables": 115.93,  # interned ops + flat arrays
    "same_timestamp_batching": 115.02,  # one heap entry per timestamp burst
    "fused_grant_path_indexed_queues": 96.79,  # compiled no-conflict submit
    "partial_callbacks_stop_flag": 93.72,  # partials + engine stop flag
    "typed_dispatch_pooled_submit": 76.61,  # kind-indexed events + slab pools
}


def results_dir_warnings() -> list:
    """Orphaned files under ``benchmarks/results``: reports matching no id.

    Result files are named in one place (``benchmarks/conftest``'s
    ``result_filename``): the registry id verbatim, except the tables
    benchmark's per-type ``tables_<type>.txt`` reports, which all map back
    to the registry's single ``tables`` entry.  A file matching neither is
    a stale artifact left behind by a renamed experiment and should be
    deleted rather than shipped in the uploaded results.
    """
    results_dir = ROOT / "benchmarks" / "results"
    if not results_dir.is_dir():
        return []
    known = set(EXPERIMENT_REGISTRY.ids())
    warnings = []
    for path in sorted(results_dir.glob("*.txt")):
        name = path.stem
        if name.startswith("tables_"):
            name = "tables"
        if name not in known:
            warnings.append(
                f"warning: benchmarks/results/{path.name} matches no "
                "registry experiment id — stale artifact from a renamed "
                "experiment; delete it"
            )
    return warnings


def profile_summary() -> Dict[str, object]:
    """Deterministic calls/event at the reference profile point.

    This is the number the CI perf gate tracks (``repro profile --compare``
    against ``benchmarks/profile_baseline.json`` fails the build on a >3%
    regression); recording it here keeps the perf trajectory in the same
    artifact as the figure counters.  Fully deterministic for a given
    interpreter minor version.
    """
    params = SimulationParameters(
        database_size=200,
        mpl_level=50,
        total_completions=400,
        policy=ConflictPolicy.RECOVERABILITY,
        seed=1,
    )
    report = profile_simulation(params, workload_kind="readwrite")
    payload = report.to_json_dict()
    # The full per-function table lives in profile_baseline.json; the
    # summary records the headline number plus the heaviest functions.
    payload["top_functions"] = payload.pop("functions")[:10]
    payload["kernel_trajectory"] = dict(_KERNEL_TRAJECTORY)
    return payload


def _point_counters(point) -> Dict[str, float]:
    """The deterministic counters of one point (summed over its runs).

    The counter set comes from :meth:`repro.sim.metrics.RunMetrics.counters`
    (the single source of truth) via ``AveragedMetrics.counters``, plus the
    deterministic simulated time and the run count.
    """
    counters: Dict[str, float] = dict(point.counters)
    counters["runs"] = point.runs
    counters["simulated_time"] = round(point.simulated_time, 6)
    return counters


def summarize(figure_ids, scale_name, workers=1) -> Dict[str, object]:
    """Run every requested experiment and collect its counters and timing.

    Everything in the returned payload except the ``timing`` block is
    deterministic: byte-identical for any ``workers`` value, on any host.
    """
    scale = _SCALES[scale_name]
    figures: Dict[str, object] = {}
    seconds: Dict[str, float] = {}
    for figure_id in figure_ids:
        spec = EXPERIMENT_REGISTRY.spec(figure_id, scale)
        started = time.perf_counter()
        result = run_experiment(spec, workers=workers)
        seconds[figure_id] = round(time.perf_counter() - started, 3)
        variants: Dict[str, Dict[str, Dict[str, float]]] = {}
        for variant in spec.variants:
            variants[variant.label] = {
                str(mpl_level): _point_counters(point)
                for mpl_level, point in result.points[variant.label].items()
            }
        figures[figure_id] = {"title": spec.title, "points": variants}
        print(f"  {figure_id}: {len(spec.variants)} variants x "
              f"{len(spec.mpl_levels)} mpl levels "
              f"({seconds[figure_id]:.3f}s)", flush=True)
    timing = {
        "workers": workers,
        "seconds": seconds,
        "total_seconds": round(sum(seconds.values()), 3),
    }
    started = time.perf_counter()
    profile = profile_summary()
    # The profiled run's wall-clock belongs with the other host-dependent
    # numbers, not in the deterministic profile block.
    timing["profile_wall_seconds"] = profile.pop("wall_seconds", None)
    print(f"  profile reference point: "
          f"{profile['calls_per_event']:.2f} calls/event "
          f"({time.perf_counter() - started:.3f}s)", flush=True)
    return {
        "scale": scale_name,
        "figures": figures,
        "lint": lint_summary(),
        "profile": profile,
        "timing": timing,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    parser.add_argument("--figures", nargs="+", default=None,
                        metavar="FIGURE", help="restrict to these figure ids")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the point fan-out "
                             "(counters are identical for any value)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=ROOT / "BENCH_summary.json")
    arguments = parser.parse_args(argv)
    if arguments.workers < 1:
        parser.error(f"--workers must be >= 1, got {arguments.workers}")
    figure_ids = arguments.figures if arguments.figures else all_figure_ids()
    unknown = sorted(set(figure_ids) - set(EXPERIMENT_REGISTRY.runnable_ids()))
    if unknown:
        parser.error(f"unknown figures: {unknown}; known: "
                     f"{EXPERIMENT_REGISTRY.runnable_ids()}")
    summary = summarize(figure_ids, arguments.scale, workers=arguments.workers)
    for warning in results_dir_warnings():
        print(warning, file=sys.stderr)
    arguments.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {arguments.output} ({len(summary['figures'])} figures, "
          f"scale={arguments.scale}, workers={arguments.workers}, "
          f"{summary['timing']['total_seconds']:.3f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
