"""Write BENCH_summary.json: deterministic per-figure counters.

The pytest-benchmark output (BENCH_results.json) records wall-clock times,
which vary run to run and machine to machine.  This tool records the
*deterministic* side of every figure experiment — raw simulation counters
per (figure, variant, multiprogramming level) point — so the performance
trajectory of the reproduction can be tracked exactly: two checkouts that
produce different counters changed behaviour, not noise.

Usage (from the repository root)::

    python tools/bench_summary.py                       # all figures, smoke scale
    python tools/bench_summary.py --scale bench
    python tools/bench_summary.py --figures figure-4 figure-4-sites
    python tools/bench_summary.py --output BENCH_summary.json

Counters recorded per point (summed over the point's runs): completions,
commits, pseudo-commits, blocks, restarts, cycle checks, aborts, total abort
length, commit-dependency edges, simulation-engine events, the simulated
time (a deterministic float), and — for finite-resource points — the
``resource_*`` utilisation counters (CPU/disk served and waits, per site
under per-site placement, plus network messages when a ``msg_time`` cost is
modelled), so resource saturation is visible in the perf trajectory.
Multi-site points additionally carry the ``replication_*`` counters
(protocol messages, failovers, catch-up events, read/write unavailability,
cycle sweeps, the under-replication window) and the ``commit_*`` counters
(prepare rounds/messages/acks, certifications and their aborts,
re-replication work, forced reports), so each protocol's coordination
overhead is tracked per PR — ``figure-4-protocols`` and
``figure-4-commit`` are the experiments built around them.  Every value
derives only from ``(parameters, seed)``; nothing here measures the host
machine.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.figures import (  # noqa: E402  (path bootstrap above)
    BENCH_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    all_figure_ids,
    figure_spec,
)
from repro.lint import lint_paths, rule_counts  # noqa: E402
from repro.sim.simulator import run_simulation  # noqa: E402

_SCALES = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "paper": PAPER_SCALE}


def lint_summary() -> Dict[str, object]:
    """Per-rule violation counts of ``repro lint`` over the package tree.

    Rides along in BENCH_summary.json so the uploaded artifact records the
    static-analysis state of the exact commit the counters came from (the
    gating lint job fails the build on violations; this is the audit trail).
    """
    violations = lint_paths([str(ROOT / "src" / "repro")])
    return {
        "rule_counts": rule_counts(violations),
        "total": len(violations),
    }


def _point_counters(metrics_list) -> Dict[str, float]:
    """Sum the deterministic counters of one point's runs.

    The counter set comes from :meth:`repro.sim.metrics.RunMetrics.counters`
    (the single source of truth), plus the deterministic simulated time.
    """
    counters: Dict[str, float] = {"runs": len(metrics_list), "simulated_time": 0.0}
    for metrics in metrics_list:
        for name, value in metrics.counters().items():
            counters[name] = counters.get(name, 0) + value
        counters["simulated_time"] += metrics.simulated_time
    counters["simulated_time"] = round(counters["simulated_time"], 6)
    return counters


def summarize(figure_ids: List[str], scale_name: str) -> Dict[str, object]:
    """Run every requested figure and collect its deterministic counters."""
    scale = _SCALES[scale_name]
    figures: Dict[str, object] = {}
    for figure_id in figure_ids:
        spec = figure_spec(figure_id, scale)
        variants: Dict[str, Dict[str, Dict[str, float]]] = {}
        for variant in spec.variants:
            per_level: Dict[str, Dict[str, float]] = {}
            for mpl_level in spec.mpl_levels:
                run_results = []
                for run_index in range(spec.runs):
                    params = spec.base_params.replace(
                        mpl_level=mpl_level,
                        seed=spec.base_params.seed + run_index,
                        **dict(variant.overrides),
                    )
                    run_results.append(
                        run_simulation(params, workload_kind=spec.workload)
                    )
                per_level[str(mpl_level)] = _point_counters(run_results)
            variants[variant.label] = per_level
        figures[figure_id] = {"title": spec.title, "points": variants}
        print(f"  {figure_id}: {len(spec.variants)} variants x "
              f"{len(spec.mpl_levels)} mpl levels", flush=True)
    return {"scale": scale_name, "figures": figures, "lint": lint_summary()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    parser.add_argument("--figures", nargs="+", default=None,
                        metavar="FIGURE", help="restrict to these figure ids")
    parser.add_argument("--output", type=pathlib.Path,
                        default=ROOT / "BENCH_summary.json")
    arguments = parser.parse_args(argv)
    figure_ids = arguments.figures if arguments.figures else all_figure_ids()
    unknown = sorted(set(figure_ids) - set(all_figure_ids()))
    if unknown:
        parser.error(f"unknown figures: {unknown}; known: {all_figure_ids()}")
    summary = summarize(figure_ids, arguments.scale)
    arguments.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {arguments.output} ({len(summary['figures'])} figures, "
          f"scale={arguments.scale})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
