"""Unit tests for the pluggable replication protocols (repro.distributed.replication).

Covers the protocol factory, quorum consensus (R/W validation, versioned
reads, write quorums, catch-up recovery), primary-copy (write funnelling,
deterministic failover election, catch-up), the catch-up safety rules
(committed state only), the periodic union-graph cycle sweep, and the
simulation-layer wiring (parameters, counters, heterogeneous hardware).
"""

import pytest

from repro.adts.base import AtomicType
from repro.adts.page import PageType
from repro.core.compatibility import Answer, CompatibilitySpec, RelationTable
from repro.core.errors import ReproError, SimulationError
from repro.core.policy import ConflictPolicy
from repro.core.requests import AbortReason
from repro.core.transaction import TransactionStatus
from repro.distributed import (
    AvailableCopies,
    PrimaryCopy,
    QuorumConsensus,
    TransactionRouter,
    make_replication_protocol,
)
from repro.sim.params import SimulationParameters
from repro.sim.simulator import run_simulation


def make_router(sites=2, replication="copies", protocol="available-copies",
                policy=ConflictPolicy.RECOVERABILITY, objects=("x", "y"),
                quorum_read=None, quorum_write=None):
    router = TransactionRouter(
        site_count=sites,
        replication=replication,
        policy=policy,
        retain_terminated=True,
        replication_protocol=protocol,
        quorum_read=quorum_read,
        quorum_write=quorum_write,
    )
    page = PageType()
    for name in objects:
        router.register_object(name, page, compatibility=page.compatibility())
    return router


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_replication_protocol("available-copies"), AvailableCopies)
        assert isinstance(make_replication_protocol("quorum"), QuorumConsensus)
        assert isinstance(make_replication_protocol("primary-copy"), PrimaryCopy)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SimulationError):
            make_replication_protocol("chain")

    def test_quorum_sizes_only_apply_to_quorum(self):
        with pytest.raises(SimulationError):
            make_replication_protocol("primary-copy", read_quorum=2)
        with pytest.raises(SimulationError):
            make_replication_protocol("available-copies", write_quorum=2)

    def test_protocol_instances_are_not_shareable(self):
        protocol = make_replication_protocol("quorum")
        TransactionRouter(site_count=2, replication="copies",
                          replication_protocol=protocol)
        with pytest.raises(ReproError):
            TransactionRouter(site_count=2, replication="copies",
                              replication_protocol=protocol)


class TestQuorumConsensus:
    def test_broken_quorum_is_rejected_at_selection(self):
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=1, quorum_write=1)
        t = router.begin()
        with pytest.raises(SimulationError):
            router.perform(t.gtid, "x", "read")

    @pytest.mark.parametrize("sizes", [
        dict(quorum_read=0),   # non-positive
        dict(quorum_read=5),   # above the copy count
        dict(quorum_write=-1),
    ])
    def test_out_of_range_quorums_are_rejected_not_clamped(self, sizes):
        # Direct router users bypass SimulationParameters.validate; the
        # protocol itself must reject rather than silently rewrite sizes.
        router = make_router(sites=3, protocol="quorum", **sizes)
        t = router.begin()
        with pytest.raises(SimulationError):
            router.perform(t.gtid, "x", "read")
        t2 = router.begin()
        with pytest.raises(SimulationError):
            router.perform(t2.gtid, "x", "write", 1)

    def test_read_contacts_r_replicas(self):
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=2, quorum_write=2)
        t = router.begin()
        request = router.perform(t.gtid, "x", "read")
        assert request.executed
        assert len(request.branch_handles) == 2

    def test_write_lands_at_w_replicas_and_bumps_versions(self):
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=2, quorum_write=2)
        protocol = router.replication
        t = router.begin()
        request = router.perform(t.gtid, "x", "write", 7)
        assert request.executed
        written = sorted(request.branch_handles)
        assert len(written) == 2
        # Versions move at durable commit, not at execute.
        assert all(protocol.version_of(sid, "x") == 0 for sid in written)
        assert router.commit(t.gtid) is TransactionStatus.COMMITTED
        assert all(protocol.version_of(sid, "x") == 1 for sid in written)
        missed = (set(range(3)) - set(written)).pop()
        assert protocol.version_of(missed, "x") == 0

    def test_read_serves_the_highest_version_in_the_quorum(self):
        # W=2 writes leave one stale copy behind; an R=3 read necessarily
        # includes it and must still serve the freshest value.
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=3, quorum_write=2)
        writer = router.begin()
        router.perform(writer.gtid, "x", "write", 42)
        assert router.commit(writer.gtid) is TransactionStatus.COMMITTED
        assert sorted(
            router.replication.version_of(sid, "x") for sid in range(3)
        ) == [0, 1, 1]
        reader = router.begin()
        request = router.perform(reader.gtid, "x", "read")
        assert request.executed
        assert len(request.branch_handles) == 3
        assert request.value == 42

    def test_reads_survive_recovery_without_an_unreadable_window(self):
        # The available-copies refactor target: under quorum, a recovered
        # copy is immediately readable — no per-object window.  Its peers
        # are no fresher here (the write committed at both sites and the
        # versions survived the crash), so no state actually moves: the
        # copy serves its own durable committed state.
        router = make_router(sites=2, protocol="quorum",
                             quorum_read=1, quorum_write=2)
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 5)
        router.commit(seed.gtid)
        router.fail_site(1)
        router.recover_site(1)
        site = router.sites[1]
        assert site.readable("x")
        assert site.readable("y")
        assert site.scheduler.committed_state("x") == 5
        assert router.replication.stats.catchups == 0

    def test_catchup_copies_only_objects_a_peer_knows_fresher(self):
        # Writes committed while a site is down leave it genuinely stale:
        # catch-up copies exactly those objects (with their versions), and
        # nothing else.
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=2, quorum_write=2)
        protocol = router.replication
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 5)
        router.commit(seed.gtid)
        victim = sorted(
            sid for sid in range(3) if protocol.version_of(sid, "x") == 1
        )[0]
        router.fail_site(victim)
        writer = router.begin()
        router.perform(writer.gtid, "x", "write", 7)  # lands at the 2 live
        router.commit(writer.gtid)
        router.recover_site(victim)
        site = router.sites[victim]
        assert site.readable("x")
        assert site.scheduler.committed_state("x") == 7
        assert protocol.version_of(victim, "x") == 2
        assert router.replication.stats.catchups == 1
        assert router.replication.stats.catchup_objects == 1  # x, never y

    def test_catchup_never_regresses_a_fresher_recovered_copy(self):
        # The recovered copy may be the only survivor of the last write
        # quorum: a staler live peer must not overwrite its durable state,
        # or the R+W>N read guarantee silently loses committed data.
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=2, quorum_write=2)
        protocol = router.replication
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 111)
        router.commit(seed.gtid)
        written = sorted(
            sid for sid in range(3) if protocol.version_of(sid, "x") == 1
        )
        stale = (set(range(3)) - set(written)).pop()
        for sid in written:
            router.fail_site(sid)
        router.recover_site(written[0])
        site = router.sites[written[0]]
        # The only live peer (the stale copy) had nothing to teach it.
        assert site.readable("x")
        assert site.scheduler.committed_state("x") == 111
        assert protocol.version_of(written[0], "x") == 1
        assert protocol.version_of(stale, "x") == 0
        reader = router.begin()
        request = router.perform(reader.gtid, "x", "read")
        assert request.executed
        assert request.value == 111

    def test_copy_behind_a_reported_commit_stays_unreadable(self):
        # A crash can drop a pseudo-committed branch, finalizing a commit
        # whose stamp never landed at the dead site.  The recovered copy is
        # behind a *reported* commit: with every fresher copy down it must
        # refuse reads (the safety-net window), never serve the stale value.
        router = make_router(sites=2, protocol="quorum",
                             quorum_read=1, quorum_write=2)
        t1, t2 = router.begin(), router.begin()
        router.perform(t1.gtid, "x", "write", 1)
        router.perform(t2.gtid, "x", "write", 2)
        assert router.commit(t2.gtid) is TransactionStatus.PSEUDO_COMMITTED
        # Site 1 dies with t2's branch still pseudo-committed: the branch is
        # dropped from the outstanding set, t1 (a writer at the site) aborts,
        # and the cascade finalizes t2 with only site 0's copy stamped.
        router.fail_site(1)
        assert t1.status is TransactionStatus.ABORTED
        assert t2.status is TransactionStatus.COMMITTED
        protocol = router.replication
        assert protocol.version_of(0, "x") == 1
        assert protocol.version_of(1, "x") == 0
        router.fail_site(0)
        router.recover_site(1)
        assert not router.sites[1].readable("x")
        reader = router.begin()
        request = router.perform(reader.gtid, "x", "read")
        assert request.aborted
        assert request.abort_reason is AbortReason.SITE_UNAVAILABLE

    def test_quorum_reads_see_the_readers_own_uncommitted_writes(self):
        # Committed versions cannot rank a pending write, so the quorum
        # must be steered through a copy the transaction wrote: site 0
        # recovers tied at version 0 and rotation order alone would serve
        # its stale committed state for the reader's own write.
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=2, quorum_write=2)
        router.fail_site(0)
        t = router.begin()
        request = router.perform(t.gtid, "x", "write", 99)  # lands at 1, 2
        assert sorted(request.branch_handles) == [1, 2]
        router.recover_site(0)
        read = router.perform(t.gtid, "x", "read")
        assert read.executed
        assert read.value == 99
        assert read.value_site in (1, 2)

    def test_recovery_refreshes_stranded_peer_copies(self):
        # A copy that recovered during a full outage (no live source) must
        # not stay unreadable forever: the recovery of a fresher site later
        # retries its catch-up.
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=2, quorum_write=2)
        protocol = router.replication
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 6)
        router.commit(seed.gtid)
        stamped = sorted(
            sid for sid in range(3) if protocol.version_of(sid, "x") == 1
        )
        stale = (set(range(3)) - set(stamped)).pop()
        for sid in range(3):
            router.fail_site(sid)
        router.recover_site(stale)
        # No live source: the stale copy rightly stays unreadable...
        assert not router.sites[stale].readable("x")
        router.recover_site(stamped[0])
        # ...until a fresh site returns and its recovery catches it up.
        assert router.sites[stale].readable("x")
        assert router.sites[stale].scheduler.committed_state("x") == 6
        assert protocol.version_of(stale, "x") == 1
        # With the stranded copy refreshed, the original fresh copy can
        # crash again without costing read availability.
        router.recover_site(stamped[1])
        router.fail_site(stamped[0])
        reader = router.begin()
        read = router.perform(reader.gtid, "x", "read")
        assert read.executed
        assert read.value == 6

    def test_repeat_writes_stick_to_the_original_write_quorum(self):
        # A liveness change between two writes of the same object must not
        # re-route the second one: every copy the commit stamps must hold
        # the transaction's final state (version equality implies state
        # equality), so repeat writes reuse the original W-set — whose
        # sites are necessarily still alive, or the writer would have
        # aborted.
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=2, quorum_write=2)
        protocol = router.replication
        head = protocol._rotated("x", (0, 1, 2))[0]
        router.fail_site(head)
        t = router.begin()
        first = router.perform(t.gtid, "x", "write", 1)
        landed = sorted(first.branch_handles)
        assert head not in landed
        router.recover_site(head)
        second = router.perform(t.gtid, "x", "write", 2)
        assert sorted(second.branch_handles) == landed
        assert router.commit(t.gtid) is TransactionStatus.COMMITTED
        for sid in landed:
            assert protocol.version_of(sid, "x") == 1
            assert router.sites[sid].scheduler.committed_state("x") == 2
        # The recovered copy deferred readability while the write was in
        # flight, then caught up from a stamped peer at commit: version
        # equality implies state equality at every readable copy.
        assert protocol.version_of(head, "x") == 1
        assert router.sites[head].scheduler.committed_state("x") == 2

    def test_write_below_w_live_copies_is_unavailable(self):
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=2, quorum_write=2)
        router.fail_site(0)
        router.fail_site(1)
        t = router.begin()
        request = router.perform(t.gtid, "x", "write", 1)
        assert request.aborted
        assert router.router_stats.write_unavailable_aborts == 1

    def test_read_below_r_readable_copies_is_unavailable(self):
        router = make_router(sites=3, protocol="quorum",
                             quorum_read=2, quorum_write=2)
        router.fail_site(0)
        router.fail_site(1)
        t = router.begin()
        request = router.perform(t.gtid, "x", "read")
        assert request.aborted
        assert router.router_stats.read_unavailable_aborts == 1


class TestCatchUpSafety:
    def test_catchup_copies_only_committed_state_from_the_source(self):
        # An uncommitted write at the live source must not leak into the
        # recovered copy: readability defers while the write is in flight,
        # and once it aborts the copy serves the committed state only.
        router = make_router(sites=2, protocol="primary-copy")
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 5)
        router.commit(seed.gtid)
        router.fail_site(1)
        dirty = router.begin()
        router.perform(dirty.gtid, "x", "write", 99)  # uncommitted at site 0
        router.recover_site(1)
        site = router.sites[1]
        assert not site.readable("x")  # deferred: dirty's write is in flight
        router.abort(dirty.gtid)
        assert site.readable("x")
        assert site.scheduler.committed_state("x") == 5

    def test_uncommitted_writes_at_the_dead_site_never_leak(self):
        # The crashed site's volatile state (an uncommitted write) dies with
        # it; recovery restarts from durable committed state plus catch-up.
        router = make_router(sites=2, protocol="quorum",
                             quorum_read=1, quorum_write=2)
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 5)
        router.commit(seed.gtid)
        dirty = router.begin()
        router.perform(dirty.gtid, "x", "write", 99)  # uncommitted, both sites
        router.fail_site(1)
        assert dirty.status is TransactionStatus.ABORTED
        router.recover_site(1)
        assert router.sites[1].scheduler.committed_state("x") == 5
        reader = router.begin()
        assert router.perform(reader.gtid, "x", "read").value == 5

    def test_install_committed_rejects_copies_with_inflight_work(self):
        router = make_router(sites=2)
        t = router.begin()
        router.perform(t.gtid, "x", "write", 1)
        with pytest.raises(ReproError):
            router.sites[1].install_committed("x", 0)

    def test_committed_snapshot_requires_a_live_site(self):
        router = make_router(sites=2)
        router.fail_site(1)
        with pytest.raises(ReproError):
            router.sites[1].committed_snapshot()


class TestPrimaryCopy:
    def test_writes_funnel_through_the_primary_first(self):
        router = make_router(sites=3, protocol="primary-copy")
        t = router.begin()
        request = router.perform(t.gtid, "x", "write", 1)
        assert request.executed
        assert sorted(request.branch_handles) == [0, 1, 2]
        assert router.replication.primary_of("x") == 0

    def test_failover_elects_the_lowest_live_site_deterministically(self):
        router = make_router(sites=3, protocol="primary-copy")
        t = router.begin()
        router.perform(t.gtid, "x", "write", 1)
        router.commit(t.gtid)
        assert router.replication.primary_of("x") == 0
        router.fail_site(0)
        assert router.replication.stats.failovers == 1
        assert router.replication.primary_of("x") == 1
        router.fail_site(1)
        assert router.replication.stats.failovers == 2
        assert router.replication.primary_of("x") == 2
        # No fail-back: a recovered ex-primary rejoins as a backup.
        router.recover_site(0)
        assert router.replication.primary_of("x") == 2

    def test_writes_survive_the_primary_crash(self):
        router = make_router(sites=2, protocol="primary-copy")
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 3)
        router.commit(seed.gtid)
        router.fail_site(0)
        t = router.begin()
        request = router.perform(t.gtid, "x", "write", 4)
        assert request.executed
        assert list(request.branch_handles) == [1]
        assert router.commit(t.gtid) is TransactionStatus.COMMITTED
        assert router.sites[1].scheduler.committed_state("x") == 4

    def test_recovery_during_an_inflight_write_defers_readability(self):
        # Site 1 recovers while T's write of x is uncommitted at the
        # primary only: committed versions cannot see that write yet, so
        # the copy defers readability (else reads served the pre-write
        # value after T committed) and is refreshed when T finishes.
        router = make_router(sites=2, protocol="primary-copy")
        router.fail_site(1)
        t = router.begin()
        router.perform(t.gtid, "x", "write", 77)  # lands at site 0 only
        router.recover_site(1)
        assert not router.sites[1].readable("x")
        assert router.sites[1].readable("y")  # nothing in flight for y
        own_read = router.perform(t.gtid, "x", "read")
        assert own_read.value == 77  # read-your-writes: routed to site 0
        assert router.commit(t.gtid) is TransactionStatus.COMMITTED
        # The commit resolves the deferral through catch-up.
        assert router.sites[1].readable("x")
        assert router.sites[1].scheduler.committed_state("x") == 77
        reader = router.begin()
        assert router.perform(reader.gtid, "x", "read").value == 77

    def test_recovered_replica_serves_reads_immediately(self):
        # No writes landed while site 1 was down: its own durable state is
        # current (versions prove it), so it is readable with no state copy.
        router = make_router(sites=2, protocol="primary-copy")
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 8)
        router.commit(seed.gtid)
        router.fail_site(1)
        router.recover_site(1)
        assert router.sites[1].readable("x")
        assert router.sites[1].scheduler.committed_state("x") == 8
        assert router.replication.stats.catchups == 0

    def test_catchup_copies_writes_missed_while_down(self):
        router = make_router(sites=2, protocol="primary-copy")
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 8)
        router.commit(seed.gtid)
        router.fail_site(1)
        writer = router.begin()
        router.perform(writer.gtid, "x", "write", 9)  # lands at site 0 only
        router.commit(writer.gtid)
        router.recover_site(1)
        assert router.sites[1].readable("x")
        assert router.sites[1].scheduler.committed_state("x") == 9
        assert router.replication.stats.catchups == 1
        assert router.replication.stats.catchup_objects == 1  # x, never y

    def test_full_outage_recovery_serves_its_own_durable_state(self):
        # Both copies durably hold the committed value; recovering one with
        # no live peer must not leave it unreadable forever (nor serve
        # anything but the committed state).
        router = make_router(sites=2, protocol="primary-copy")
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 4)
        router.commit(seed.gtid)
        router.fail_site(1)
        router.fail_site(0)
        router.recover_site(0)
        assert router.sites[0].readable("x")
        reader = router.begin()
        request = router.perform(reader.gtid, "x", "read")
        assert request.executed
        assert request.value == 4


def _touch(state, args):
    from repro.core.specification import OperationResult
    return OperationResult(state=state, value="ok")


class _MixedType(AtomicType):
    """Three-operation type whose pairs mix every conflict class.

    ``g`` *conflicts* with an uncommitted ``f`` (it must wait) but is merely
    *recoverable* relative to an uncommitted ``h`` (it executes with a
    commit dependency); every other pair commutes.  That mix is what lets a
    grant inside a termination cascade create a commit-dependency edge no
    submit ever carried — the late-closing cycle of the ROADMAP.
    """

    name = "mixed"

    def __init__(self):
        from repro.core.specification import OperationSpec
        super().__init__({
            op: OperationSpec(name=op, function=_touch) for op in ("f", "g", "h")
        })

    def initial_state(self):
        return 0

    def compatibility(self):
        ops = ("f", "g", "h")
        yes, no = Answer.YES, Answer.NO
        commutativity = RelationTable.from_rows(
            "mixed-commutativity", ops,
            {"f": [yes, yes, yes], "g": [no, yes, no], "h": [yes, yes, yes]},
        )
        recoverability = RelationTable.from_rows(
            "mixed-recoverability", ops,
            {"g": [no, no, yes]},
        )
        return CompatibilitySpec(
            type_name="mixed",
            commutativity=commutativity,
            recoverability=recoverability,
        )


class TestCycleSweep:
    def _wedge(self):
        """Build the ROADMAP's late-closing cycle on a two-site router.

        Object ``a`` (the mixed type) lives at site 0, page ``b`` at site 1.
        A's blocked ``g(a)`` is *granted* during C's termination cascade and
        only then acquires its commit dependency on B's uncommitted ``h(a)``
        — an edge no submit carried, so the per-submit union check never
        sees the cycle A -> B (site 0) / B -> A (site 1) it closes.
        """
        router = TransactionRouter(
            site_count=2, replication="hash",
            policy=ConflictPolicy.RECOVERABILITY, retain_terminated=True,
        )
        page, mixed = PageType(), _MixedType()
        names = [f"obj{i}" for i in range(16)]
        a = next(n for n in names if router.placement.sites_for(n) == (0,))
        b = next(n for n in names if router.placement.sites_for(n) == (1,))
        router.register_object(a, mixed, compatibility=mixed.compatibility())
        router.register_object(b, page, compatibility=page.compatibility())
        ta, tc, tb = router.begin(), router.begin(), router.begin()
        assert router.perform(ta.gtid, b, "write", 1).executed
        assert router.perform(tb.gtid, a, "h").executed
        assert router.perform(tc.gtid, a, "f").executed  # f/h commute
        # B's write of b is recoverable after A's: commit-dependency B -> A.
        assert router.perform(tb.gtid, b, "write", 2).executed
        # A's g conflicts with C's uncommitted f: blocked, edge A -> C only
        # (the recoverable h adds no edge until g actually executes).
        assert router.perform(ta.gtid, a, "g").blocked
        assert router.router_stats.cross_site_deadlock_aborts == 0
        # C's commit grants g inside the termination cascade; executing it
        # adds the commit dependency A -> B that closes the cycle, with no
        # submit for the per-submit check to piggyback on.
        assert router.commit(tc.gtid) is TransactionStatus.COMMITTED
        assert ta.current_request.executed
        return router, ta, tb

    def test_late_closing_cycle_is_invisible_to_the_submit_check(self):
        router, ta, tb = self._wedge()
        assert ta.status is TransactionStatus.ACTIVE
        assert tb.status is TransactionStatus.ACTIVE
        assert router.router_stats.cross_site_deadlock_aborts == 0
        # Unswept, the cycle reaches the commit path, where each site's
        # cascade respects only its local edges: both members durably
        # commit in a circular global dependency order — exactly the
        # outcome the cycle detector exists to prevent.
        router.commit(ta.gtid)
        router.commit(tb.gtid)
        assert ta.status is TransactionStatus.COMMITTED
        assert tb.status is TransactionStatus.COMMITTED

    def test_sweep_aborts_the_youngest_active_cycle_member(self):
        router, ta, tb = self._wedge()
        assert router.sweep_global_cycles() == 1
        # B is the youngest ACTIVE member of the cycle: the deadlock victim.
        assert tb.status is TransactionStatus.ABORTED
        assert ta.status is TransactionStatus.ACTIVE
        assert router.router_stats.cross_site_deadlock_aborts == 1
        assert router.router_stats.cycle_sweeps == 1
        # The survivor commits durably (its dependency died with B).
        assert router.commit(ta.gtid) is TransactionStatus.COMMITTED

    def test_quiet_sweep_is_gated_on_the_mutation_counters(self):
        router, ta, tb = self._wedge()
        assert router.sweep_global_cycles() == 1
        sweeps = router.router_stats.cycle_sweeps
        # Nothing mutated since: the sweep short-circuits without a DFS.
        assert router.sweep_global_cycles() == 0
        assert router.router_stats.cycle_sweeps == sweeps

    def test_failing_a_down_site_is_rejected_cleanly(self):
        router = make_router(sites=2)
        router.fail_site(1)
        with pytest.raises(ReproError):
            router.fail_site(1)

    def test_single_site_never_sweeps(self):
        router = make_router(sites=1, replication="single")
        assert router.sweep_global_cycles() == 0
        assert router.router_stats.cycle_sweeps == 0

    def test_mutation_total_is_monotonic_across_fail_recover(self):
        # The sweep gate compares totals for equality: if a crash dropped a
        # site's count from the sum, fail+recover could return the total to
        # an already-seen value and silence the sweep while a cycle closed.
        router = make_router(sites=2)
        t = router.begin()
        router.perform(t.gtid, "x", "write", 1)
        router.commit(t.gtid)
        before = router._union_mutations()
        assert before > 0
        router.fail_site(1)
        router.recover_site(1)
        assert router._union_mutations() >= before


class TestSimulationWiring:
    SCHEDULE = ((0.5, "fail", 1), (1.0, "recover", 1))

    def _params(self, protocol, **extra):
        return SimulationParameters(
            mpl_level=15, total_completions=120, database_size=100, seed=11,
            site_count=2, replication="copies", replication_protocol=protocol,
            failure_schedule=self.SCHEDULE, **extra)

    @pytest.mark.parametrize("protocol,extra", [
        ("available-copies", {}),
        ("quorum", dict(quorum_read=1, quorum_write=2)),
        ("primary-copy", {}),
    ])
    def test_protocol_runs_are_deterministic(self, protocol, extra):
        first = run_simulation(self._params(protocol, **extra), "readwrite")
        second = run_simulation(self._params(protocol, **extra), "readwrite")
        assert first.counters() == second.counters()
        assert first.as_dict() == second.as_dict()

    def test_multi_site_runs_carry_replication_counters(self):
        metrics = run_simulation(self._params("primary-copy"), "readwrite")
        counters = metrics.counters()
        assert counters["replication_messages"] > 0
        assert counters["replication_catchups"] >= 1
        assert "replication_cycle_sweeps" in counters
        assert "replication_read_unavailable_aborts" in counters

    def test_single_site_runs_carry_no_replication_counters(self):
        params = SimulationParameters(
            mpl_level=10, total_completions=60, database_size=100, seed=3)
        counters = run_simulation(params, "readwrite").counters()
        assert not any(name.startswith("replication_") for name in counters)

    def test_catchup_lifts_the_unreadable_window(self):
        # Same run, two protocols: after site 1 recovers, available-copies
        # still refreshes per object while primary-copy caught up at once.
        available = run_simulation(self._params("available-copies"), "readwrite")
        primary = run_simulation(self._params("primary-copy"), "readwrite")
        assert available.counters()["replication_catchups"] == 0
        assert primary.counters()["replication_catchups"] >= 1

    def test_quorum_parameters_are_validated(self):
        with pytest.raises(SimulationError):
            self._params("quorum", quorum_read=1, quorum_write=1)
        with pytest.raises(SimulationError):
            self._params("available-copies", quorum_read=1)
        with pytest.raises(SimulationError):
            self._params("quorum", quorum_read=5)

    def test_explicit_quorums_require_copies_placement(self):
        # Hash placement puts one copy per object: an explicit 2/2 quorum
        # would be silently clamped to 1/1, so it is rejected instead.
        with pytest.raises(SimulationError):
            SimulationParameters(
                site_count=3, replication="hash",
                replication_protocol="quorum", quorum_read=2, quorum_write=2)
        # Without explicit sizes the majority of each object's copy count
        # applies, which degenerates gracefully to 1/1 for single copies.
        SimulationParameters(site_count=3, replication="hash",
                             replication_protocol="quorum")

    def test_heterogeneous_site_units(self):
        params = SimulationParameters(
            mpl_level=10, total_completions=80, database_size=100, seed=7,
            site_count=2, replication="copies",
            resource_placement="per_site", site_units=(2, 1), msg_time=0.001)
        counters = run_simulation(params, "readwrite").counters()
        for site in (0, 1):
            assert counters[f"resource_site{site}_cpu_served"] > 0

    def test_site_units_runs_are_not_reported_as_infinite(self):
        params = SimulationParameters(
            site_count=2, replication="copies",
            resource_placement="per_site", site_units=(2, 1))
        assert not params.infinite_resources
        assert params.describe()["resource_units"] == "per-site"
        assert params.describe()["site_units"] == (2, 1)

    def test_site_units_validation(self):
        with pytest.raises(SimulationError):
            SimulationParameters(site_count=2, replication="copies",
                                 resource_placement="per_site", site_units=(2,))
        with pytest.raises(SimulationError):
            SimulationParameters(site_count=2, replication="copies",
                                 site_units=(2, 1))  # global placement
        with pytest.raises(SimulationError):
            SimulationParameters(site_count=2, replication="copies",
                                 resource_placement="per_site", site_units=(2, 0))
        with pytest.raises(SimulationError):
            # Ambiguous: the per-site list replaces resource_units.
            SimulationParameters(site_count=2, replication="copies",
                                 resource_placement="per_site",
                                 resource_units=8, site_units=(1, 1))
