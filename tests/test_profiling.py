"""Tests for the profile harness's wall-clock column (informational only).

The call-count side of ``repro profile`` is covered by the CLI tests; these
pin the wall-clock additions: the report records the profiled run's
duration, saved profiles carry it, comparisons show it without ever gating
on it, and baselines that predate the field fall back to ``n/a``.
"""

import pytest

from repro.analysis.profiling import (
    compare_profiles,
    load_profile,
    profile_simulation,
)
from repro.core.policy import ConflictPolicy
from repro.sim.params import SimulationParameters


@pytest.fixture(scope="module")
def report():
    params = SimulationParameters(
        database_size=40,
        mpl_level=4,
        total_completions=20,
        policy=ConflictPolicy.RECOVERABILITY,
        seed=1,
    )
    return profile_simulation(params, workload_kind="readwrite")


class TestReportWallClock:
    def test_report_records_positive_wall_seconds(self, report):
        assert report.wall_seconds > 0

    def test_default_render_stays_deterministic(self, report):
        # The wall-clock line is host-dependent, so it must not appear in
        # the default rendering (which is byte-identical run over run).
        assert "wall-clock" not in report.render(top=5)
        assert "wall-clock" in report.render(top=5, raw=True)

    def test_saved_profile_carries_wall_seconds(self, report, tmp_path):
        path = tmp_path / "profile.json"
        report.save(path)
        data = load_profile(path)
        assert data["wall_seconds"] == round(report.wall_seconds, 3)


class TestComparisonWallClock:
    def test_comparison_shows_both_wall_clocks(self, report, tmp_path):
        path = tmp_path / "profile.json"
        report.save(path)
        data = load_profile(path)
        comparison = compare_profiles(data, data)
        assert comparison.wall_a == comparison.wall_b == data["wall_seconds"]
        assert "wall-clock" in comparison.render()

    def test_missing_wall_seconds_renders_not_available(self, report, tmp_path):
        # Baselines saved before the field existed must still compare.
        path = tmp_path / "profile.json"
        report.save(path)
        old = load_profile(path)
        old.pop("wall_seconds")
        comparison = compare_profiles(old, load_profile(path))
        assert comparison.wall_a is None
        assert "n/a" in comparison.render()

    def test_wall_clock_never_gates(self, report, tmp_path):
        # A slower-but-identical run (same counts, bigger wall-clock) is
        # not a regression: the gate reads calls/event only.
        path = tmp_path / "profile.json"
        report.save(path)
        fast = load_profile(path)
        slow = dict(fast, wall_seconds=fast["wall_seconds"] * 100 + 10)
        comparison = compare_profiles(fast, slow)
        assert not comparison.regressed(0.0)
        assert comparison.delta_pct == 0.0
