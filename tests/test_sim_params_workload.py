"""Tests for simulation parameters and the two workload generators."""

import pytest

from repro.core.compatibility import Answer
from repro.core.errors import SimulationError
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler
from repro.sim.params import INFINITE_RESOURCES, SimulationParameters
from repro.sim.random_source import RandomSource
from repro.sim.workload import (
    AbstractDataTypeWorkload,
    ReadWriteWorkload,
    make_workload,
    random_compatibility_table,
)


class TestSimulationParameters:
    def test_nominal_values_match_table_x(self):
        params = SimulationParameters()
        assert params.database_size == 1000
        assert params.num_terminals == 200
        assert params.min_length == 4 and params.max_length == 12
        assert params.mean_transaction_length == 8.0
        assert params.step_time == 0.05
        assert params.cpu_time == 0.015 and params.io_time == 0.035
        assert params.ext_think_time == 1.0
        assert params.write_probability == 0.3
        assert params.resource_units is INFINITE_RESOURCES

    def test_replace_returns_validated_copy(self):
        params = SimulationParameters()
        other = params.replace(mpl_level=25)
        assert other.mpl_level == 25 and params.mpl_level == 50
        with pytest.raises(SimulationError):
            params.replace(mpl_level=0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"database_size": 0},
            {"num_terminals": -1},
            {"min_length": 5, "max_length": 4},
            {"step_time": 0.0},
            {"resource_units": 0},
            {"write_probability": 1.5},
            {"pc": 3},
            {"pc": 10, "pr": 10, "operations_per_object": 4},
            {"total_completions": 0},
            {"warmup_completions": 10, "total_completions": 10},
        ],
    )
    def test_invalid_parameters_rejected(self, overrides):
        with pytest.raises(SimulationError):
            SimulationParameters(**overrides)

    def test_describe_flattens_policy_and_resources(self):
        description = SimulationParameters().describe()
        assert description["policy"] == "recoverability"
        assert description["resource_units"] == "infinite"


class TestReadWriteWorkload:
    def make(self, **overrides):
        params = SimulationParameters(
            database_size=20, total_completions=10, **overrides
        )
        return params, ReadWriteWorkload(params, RandomSource(1))

    def test_registers_one_page_per_database_object(self):
        params, workload = self.make()
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        workload.register_objects(scheduler)
        assert len(scheduler.objects) == params.database_size
        assert all(m.spec.name == "page" for m in scheduler.objects.values())

    def test_transaction_lengths_respect_bounds(self):
        params, workload = self.make()
        for _ in range(50):
            template = workload.next_transaction()
            assert params.min_length <= len(template) <= params.max_length

    def test_operations_are_reads_and_writes_only(self):
        _, workload = self.make()
        ops = {
            invocation.op
            for _ in range(20)
            for _, invocation in workload.next_transaction().steps
        }
        assert ops <= {"read", "write"}

    def test_write_probability_zero_means_all_reads(self):
        _, workload = self.make(write_probability=0.0)
        ops = {
            invocation.op
            for _ in range(20)
            for _, invocation in workload.next_transaction().steps
        }
        assert ops == {"read"}

    def test_objects_come_from_the_database(self):
        params, workload = self.make()
        names = {
            name for _ in range(20) for name, _ in workload.next_transaction().steps
        }
        valid = {f"obj{i:05d}" for i in range(1, params.database_size + 1)}
        assert names <= valid


class TestRandomCompatibilityTable:
    def test_entry_counts_follow_pc_and_pr(self):
        operations = ("op1", "op2", "op3", "op4")
        table = random_compatibility_table(operations, pc=4, pr=8, rng=RandomSource(5))
        commutative = table.commutativity.count(Answer.YES)
        recoverable_total = table.recoverability.count(Answer.YES)
        assert commutative == 4
        assert recoverable_total == 4 + 8  # commutative entries imply recoverability

    def test_commutative_entries_are_symmetric_and_off_diagonal(self):
        operations = ("op1", "op2", "op3", "op4")
        table = random_compatibility_table(operations, pc=6, pr=0, rng=RandomSource(9))
        for requested in operations:
            for executed in operations:
                answer = table.commutativity.answer(requested, executed)
                if answer is Answer.YES:
                    assert requested != executed
                    assert table.commutativity.answer(executed, requested) is Answer.YES

    def test_pr_zero_reduces_to_commutativity_only(self):
        operations = ("op1", "op2")
        table = random_compatibility_table(operations, pc=2, pr=0, rng=RandomSource(1))
        assert table.commutativity.count(Answer.YES) == table.recoverability.count(Answer.YES)

    def test_invalid_arguments_rejected(self):
        operations = ("op1", "op2")
        with pytest.raises(SimulationError):
            random_compatibility_table(operations, pc=3, pr=0, rng=RandomSource(1))
        with pytest.raises(SimulationError):
            random_compatibility_table(operations, pc=0, pr=10, rng=RandomSource(1))
        with pytest.raises(SimulationError):
            random_compatibility_table(operations, pc=4, pr=0, rng=RandomSource(1))


class TestAbstractDataTypeWorkload:
    def make(self, **overrides):
        params = SimulationParameters(
            database_size=15, total_completions=10, pc=4, pr=4, **overrides
        )
        return params, AbstractDataTypeWorkload(params, RandomSource(2))

    def test_registers_objects_with_per_object_tables(self):
        params, workload = self.make()
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        workload.register_objects(scheduler)
        assert len(scheduler.objects) == params.database_size
        assert len(workload.tables) == params.database_size
        # Unmaterialised objects: execution does not track state.
        assert all(not m.materialize_state for m in scheduler.objects.values())

    def test_operations_come_from_the_abstract_set(self):
        params, workload = self.make()
        ops = {
            invocation.op
            for _ in range(20)
            for _, invocation in workload.next_transaction().steps
        }
        assert ops <= set(workload.operations)
        assert len(workload.operations) == params.operations_per_object

    def test_tables_are_reproducible_for_a_seed(self):
        params, _ = self.make()
        first = AbstractDataTypeWorkload(params, RandomSource(2))
        second = AbstractDataTypeWorkload(params, RandomSource(2))
        scheduler_a = Scheduler()
        scheduler_b = Scheduler()
        first.register_objects(scheduler_a)
        second.register_objects(scheduler_b)
        name = next(iter(first.tables))
        assert first.tables[name].commutativity == second.tables[name].commutativity

    def test_make_workload_factory(self):
        params = SimulationParameters(total_completions=10)
        assert isinstance(make_workload(params, RandomSource(1), "readwrite"), ReadWriteWorkload)
        assert isinstance(make_workload(params, RandomSource(1), "adt"), AbstractDataTypeWorkload)
        with pytest.raises(SimulationError):
            make_workload(params, RandomSource(1), "graph")
