"""Tests for the offline soundness / serializability checkers."""

import pytest

from repro.adts import SetType, StackType
from repro.core.dependency_graph import EdgeKind
from repro.core.errors import SpecificationError
from repro.core.history import ExecutionLog
from repro.core.serializability import (
    ObjectUniverse,
    build_dependency_graph,
    event_return_value,
    is_event_sound,
    is_log_sound,
    is_rw_conflict_serializable,
    is_serializable,
    replay_object,
    serialization_orders,
    unsound_events,
)
from repro.core.specification import Invocation


def stack_universe(*names):
    return ObjectUniverse.uniform(StackType(), names)


class TestObjectUniverse:
    def test_uniform_builder(self):
        universe = stack_universe("A", "B")
        assert universe.spec_of("A").name == "stack"
        assert universe.initial_state_of("B") == ()

    def test_missing_spec_raises(self):
        universe = stack_universe("A")
        with pytest.raises(SpecificationError):
            universe.spec_of("missing")

    def test_initial_state_override(self):
        universe = ObjectUniverse(specs={"A": StackType()}, initial_states={"A": (9,)})
        assert universe.initial_state_of("A") == (9,)

    def test_compatibility_defaults_to_declared(self):
        universe = stack_universe("A")
        assert universe.compatibility_of("A").type_name == "stack"


class TestReplay:
    def test_replay_object_threads_state(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        log.append_operation("A", Invocation("push", (2,)), "ok", 2)
        log.append_operation("A", Invocation("pop"), 2, 1)
        state, values = replay_object(log, stack_universe("A"), "A")
        assert state == (1,)
        assert values == ["ok", "ok", 2]

    def test_event_return_value_uses_serial_prefix(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        event = log.append_operation("A", Invocation("top"), 1, 2)
        assert event_return_value(log, stack_universe("A"), event) == 1

    def test_event_not_in_log_raises(self):
        log = ExecutionLog()
        other = ExecutionLog()
        event = other.append_operation("A", Invocation("top"), None, 1)
        with pytest.raises(SpecificationError):
            event_return_value(log, stack_universe("A"), event)


class TestSoundness:
    def test_recoverable_interleaving_is_sound(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        log.append_operation("A", Invocation("push", (2,)), "ok", 2)
        assert is_log_sound(log, stack_universe("A"))

    def test_dirty_read_is_unsound(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        event = log.append_operation("A", Invocation("top"), 1, 2)
        assert not is_event_sound(log, stack_universe("A"), event)
        assert unsound_events(log, stack_universe("A")) == [event]

    def test_operation_after_commit_is_sound(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        log.append_commit(1)
        event = log.append_operation("A", Invocation("top"), 1, 2)
        assert is_event_sound(log, stack_universe("A"), event)

    def test_non_exhaustive_mode_is_a_necessary_condition(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        event = log.append_operation("A", Invocation("top"), 1, 2)
        assert not is_event_sound(log, stack_universe("A"), event, exhaustive=False)


class TestDependencyGraphBuilding:
    def test_recoverable_pairs_become_commit_dependency_edges(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        log.append_operation("A", Invocation("push", (2,)), "ok", 2)
        graph = build_dependency_graph(log, stack_universe("A"))
        assert graph.has_edge(2, 1, EdgeKind.COMMIT_DEPENDENCY)
        assert not graph.has_edge(1, 2)

    def test_conflicting_pairs_become_serialization_edges(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        log.append_operation("A", Invocation("pop"), 1, 2)
        graph = build_dependency_graph(log, stack_universe("A"))
        assert graph.has_edge(2, 1, EdgeKind.WAIT_FOR)

    def test_commutative_pairs_add_no_edges(self):
        log = ExecutionLog()
        universe = ObjectUniverse.uniform(SetType(), ["X"])
        log.append_operation("X", Invocation("insert", (1,)), "ok", 1)
        log.append_operation("X", Invocation("insert", (2,)), "ok", 2)
        graph = build_dependency_graph(log, universe)
        assert graph.edge_count() == 0

    def test_aborted_transactions_are_excluded_by_default(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        log.append_operation("A", Invocation("push", (2,)), "ok", 2)
        log.append_abort(1)
        graph = build_dependency_graph(log, stack_universe("A"))
        assert graph.edge_count() == 0
        graph_with = build_dependency_graph(log, stack_universe("A"), include_aborted=True)
        assert graph_with.edge_count() == 1


class TestSerializability:
    def test_acyclic_dependencies_are_serializable(self):
        log = ExecutionLog()
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        log.append_operation("A", Invocation("push", (2,)), "ok", 2)
        log.append_commit(1)
        log.append_commit(2)
        assert is_serializable(log, stack_universe("A"))
        orders = serialization_orders(log, stack_universe("A"))
        assert [1, 2] in orders
        assert [2, 1] not in orders

    def test_cross_object_cycle_is_not_serializable(self):
        log = ExecutionLog()
        universe = stack_universe("A", "B")
        log.append_operation("A", Invocation("push", (1,)), "ok", 1)
        log.append_operation("B", Invocation("push", (2,)), "ok", 2)
        log.append_operation("A", Invocation("push", (3,)), "ok", 2)  # T2 after T1 on A
        log.append_operation("B", Invocation("push", (4,)), "ok", 1)  # T1 after T2 on B
        assert not is_serializable(log, universe)
        log.append_commit(1)
        log.append_commit(2)
        assert serialization_orders(log, universe) == []

    def test_commutative_only_history_allows_any_order(self):
        log = ExecutionLog()
        universe = ObjectUniverse.uniform(SetType(), ["X"])
        log.append_operation("X", Invocation("insert", (1,)), "ok", 1)
        log.append_operation("X", Invocation("insert", (2,)), "ok", 2)
        log.append_commit(1)
        log.append_commit(2)
        assert sorted(serialization_orders(log, universe)) == [[1, 2], [2, 1]]


class TestReadWriteSerializability:
    def test_serializable_rw_history(self):
        log = ExecutionLog()
        log.append_operation("P", Invocation("read"), 0, 1)
        log.append_operation("P", Invocation("write", (1,)), "ok", 1)
        log.append_operation("P", Invocation("read"), 1, 2)
        log.append_commit(1)
        log.append_commit(2)
        assert is_rw_conflict_serializable(log)

    def test_non_serializable_rw_history(self):
        log = ExecutionLog()
        # Classic lost-update interleaving on two pages.
        log.append_operation("P", Invocation("read"), 0, 1)
        log.append_operation("Q", Invocation("read"), 0, 2)
        log.append_operation("Q", Invocation("write", (1,)), "ok", 1)
        log.append_operation("P", Invocation("write", (2,)), "ok", 2)
        log.append_commit(1)
        log.append_commit(2)
        assert not is_rw_conflict_serializable(log)

    def test_aborted_transactions_ignored(self):
        log = ExecutionLog()
        log.append_operation("P", Invocation("write", (1,)), "ok", 1)
        log.append_operation("P", Invocation("write", (2,)), "ok", 2)
        log.append_abort(2)
        assert is_rw_conflict_serializable(log)
