"""Property-based tests (hypothesis) for the core invariants.

These tests check the paper's formal claims on randomly generated inputs:

* Lemma 1 — commutativity implies recoverability — for arbitrary invocation
  pairs and states of the bundled ADTs;
* Definition 1/2 consistency between the declared tables and the executable
  semantics for random states (beyond the curated sample states);
* Theorem 1 / Lemma 3 — every history the scheduler admits is sound and free
  of cascading aborts;
* Lemma 4 — every history of committed transactions the scheduler produces is
  serializable;
* structural invariants of the dependency graph and the simulator's metrics.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adts import SetType, StackType, TableType
from repro.core.derivation import invocation_recoverable, invocations_commute
from repro.core.dependency_graph import DependencyGraph, EdgeKind
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler
from repro.core.serializability import ObjectUniverse, is_log_sound, is_serializable
from repro.core.specification import Invocation
from repro.sim.params import SimulationParameters
from repro.sim.simulator import run_simulation

_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
elements = st.integers(min_value=0, max_value=3)

set_states = st.frozensets(elements, max_size=4)
set_invocations = st.one_of(
    st.builds(lambda e: Invocation("insert", (e,)), elements),
    st.builds(lambda e: Invocation("delete", (e,)), elements),
    st.builds(lambda e: Invocation("member", (e,)), elements),
)

stack_states = st.lists(elements, max_size=4).map(tuple)
stack_invocations = st.one_of(
    st.builds(lambda e: Invocation("push", (e,)), elements),
    st.just(Invocation("pop")),
    st.just(Invocation("top")),
)

table_states = st.dictionaries(st.sampled_from(["k1", "k2", "k3"]), elements, max_size=3)
table_invocations = st.one_of(
    st.builds(lambda k, v: Invocation("insert", (k, v)), st.sampled_from(["k1", "k2"]), elements),
    st.builds(lambda k: Invocation("delete", (k,)), st.sampled_from(["k1", "k2"])),
    st.builds(lambda k: Invocation("lookup", (k,)), st.sampled_from(["k1", "k2"])),
    st.just(Invocation("size")),
    st.builds(lambda k, v: Invocation("modify", (k, v)), st.sampled_from(["k1", "k2"]), elements),
)


# ----------------------------------------------------------------------
# Lemma 1 and table/semantics agreement
# ----------------------------------------------------------------------
class TestLemma1CommutativityImpliesRecoverability:
    @_settings
    @given(first=set_invocations, second=set_invocations, states=st.lists(set_states, min_size=1, max_size=4))
    def test_on_sets(self, first, second, states):
        spec = SetType()
        if invocations_commute(spec, first, second, states):
            assert invocation_recoverable(spec, first, second, states)
            assert invocation_recoverable(spec, second, first, states)

    @_settings
    @given(first=stack_invocations, second=stack_invocations, states=st.lists(stack_states, min_size=1, max_size=4))
    def test_on_stacks(self, first, second, states):
        spec = StackType()
        if invocations_commute(spec, first, second, states):
            assert invocation_recoverable(spec, first, second, states)
            assert invocation_recoverable(spec, second, first, states)


class TestDeclaredTablesAgainstRandomStates:
    """If a declared entry admits a concrete pair, the semantics must admit it
    on *any* state — checked here on random states, not just the samples."""

    @_settings
    @given(requested=set_invocations, executed=set_invocations, state=set_states)
    def test_set_recoverability_entries_are_safe(self, requested, executed, state):
        spec = SetType()
        declared = spec.compatibility()
        if declared.recoverable(requested, executed, spec):
            assert invocation_recoverable(spec, requested, executed, [state])

    @_settings
    @given(requested=stack_invocations, executed=stack_invocations, state=stack_states)
    def test_stack_commutativity_entries_are_safe(self, requested, executed, state):
        spec = StackType()
        declared = spec.compatibility()
        if declared.commute(requested, executed, spec):
            assert invocations_commute(spec, requested, executed, [state])

    @_settings
    @given(requested=table_invocations, executed=table_invocations, state=table_states)
    def test_table_entries_are_safe(self, requested, executed, state):
        spec = TableType()
        declared = spec.compatibility()
        if declared.commute(requested, executed, spec):
            assert invocations_commute(spec, requested, executed, [state])
        if declared.recoverable(requested, executed, spec):
            assert invocation_recoverable(spec, requested, executed, [state])


# ----------------------------------------------------------------------
# Scheduler-level invariants (Theorem 1, Lemmas 3 and 4)
# ----------------------------------------------------------------------
def _drive_scheduler(policy, script):
    """Run a random script of (transaction index, object, invocation, action)
    steps through a scheduler over a stack and a set object."""
    scheduler = Scheduler(policy=policy)
    scheduler.register_object("S", StackType())
    scheduler.register_object("X", SetType())
    transactions = [scheduler.begin() for _ in range(3)]
    for transaction_index, object_name, invocation, action in script:
        transaction = transactions[transaction_index]
        status = scheduler.transaction(transaction.tid).status
        if action == "commit":
            if status.name == "ACTIVE":
                scheduler.commit(transaction.tid)
            continue
        if action == "abort":
            if status.name in ("ACTIVE", "BLOCKED"):
                scheduler.abort(transaction.tid)
            continue
        if status.name == "ACTIVE":
            scheduler.submit(transaction.tid, object_name, invocation)
    # Terminate whatever is still running so the final log is complete.
    for transaction in transactions:
        if scheduler.transaction(transaction.tid).status.name == "ACTIVE":
            scheduler.commit(transaction.tid)
        elif scheduler.transaction(transaction.tid).status.name == "BLOCKED":
            scheduler.abort(transaction.tid)
    return scheduler


script_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["S", "X"]),
        st.one_of(stack_invocations, set_invocations),
        st.sampled_from(["op", "op", "op", "commit", "abort"]),
    ),
    min_size=1,
    max_size=12,
)


def _invocation_matches_object(object_name, invocation):
    stack_ops = {"push", "pop", "top"}
    return (invocation.op in stack_ops) == (object_name == "S")


class TestSchedulerProducesCorrectHistories:
    @_settings
    @given(script=script_steps, policy=st.sampled_from(list(ConflictPolicy)))
    def test_admitted_histories_are_sound_and_serializable(self, script, policy):
        script = [step for step in script if step[3] != "op" or _invocation_matches_object(step[1], step[2])]
        scheduler = _drive_scheduler(policy, script)
        universe = ObjectUniverse(specs={"S": StackType(), "X": SetType()})
        log = scheduler.history
        committed_log = log.without_transactions(log.aborted())
        assert is_log_sound(committed_log, universe)
        assert is_serializable(committed_log, universe)

    @_settings
    @given(script=script_steps, policy=st.sampled_from(list(ConflictPolicy)))
    def test_no_transaction_is_left_live_and_graph_is_empty(self, script, policy):
        script = [step for step in script if step[3] != "op" or _invocation_matches_object(step[1], step[2])]
        scheduler = _drive_scheduler(policy, script)
        live = [t for t in scheduler.transactions.values() if t.status.is_live]
        # Everything terminated, so no commit dependencies may remain.
        assert scheduler.graph.edge_count() == 0
        assert all(t.status.name in ("COMMITTED", "ABORTED") for t in scheduler.transactions.values()) or not live

    @_settings
    @given(script=script_steps)
    def test_committed_state_matches_serial_replay_in_commit_order(self, script):
        script = [step for step in script if step[3] != "op" or _invocation_matches_object(step[1], step[2])]
        scheduler = _drive_scheduler(ConflictPolicy.RECOVERABILITY, script)
        log = scheduler.history
        # Replay committed transactions' operations serially in commit order.
        commit_order = [
            record.transaction_id
            for record in log.records()
            if record.kind.name == "COMMIT"
        ]
        stack_spec, set_spec = StackType(), SetType()
        states = {"S": stack_spec.initial_state(), "X": set_spec.initial_state()}
        specs = {"S": stack_spec, "X": set_spec}
        for transaction_id in commit_order:
            for event in log.events_of(transaction_id):
                states[event.object_name] = specs[event.object_name].next_state(
                    states[event.object_name], event.invocation
                )
        assert scheduler.committed_state("S") == states["S"]
        assert scheduler.committed_state("X") == states["X"]


# ----------------------------------------------------------------------
# Dependency graph structural properties
# ----------------------------------------------------------------------
class TestDependencyGraphProperties:
    @_settings
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20
        )
    )
    def test_creates_cycle_agrees_with_actual_insertion(self, edges):
        graph = DependencyGraph()
        for source, target in edges:
            if source == target:
                continue
            predicted = graph.creates_cycle(source, {target})
            graph.add_edge(source, target, EdgeKind.WAIT_FOR)
            assert graph.has_cycle() == predicted or graph.has_cycle()
            if predicted:
                assert graph.has_cycle()
                break

    @_settings
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15
        ),
        victim=st.integers(0, 5),
    )
    def test_removing_a_node_removes_all_its_edges(self, edges, victim):
        graph = DependencyGraph()
        for source, target in edges:
            graph.add_edge(source, target, EdgeKind.COMMIT_DEPENDENCY)
        graph.remove_node(victim)
        assert victim not in graph.nodes()
        for edge in graph.edges():
            assert victim not in (edge.source, edge.target)


# ----------------------------------------------------------------------
# Simulator metric invariants
# ----------------------------------------------------------------------
class TestSimulatorProperties:
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 10_000),
        mpl=st.integers(2, 8),
        database_size=st.integers(20, 60),
        policy=st.sampled_from(list(ConflictPolicy)),
        workload=st.sampled_from(["readwrite", "adt"]),
    )
    def test_runs_complete_with_consistent_metrics(self, seed, mpl, database_size, policy, workload):
        params = SimulationParameters(
            database_size=database_size,
            num_terminals=15,
            mpl_level=mpl,
            total_completions=40,
            policy=policy,
            seed=seed,
        )
        metrics = run_simulation(params, workload)
        assert metrics.completions >= params.total_completions
        assert metrics.commits + metrics.pseudo_commits == metrics.completions
        assert metrics.simulated_time > 0
        assert metrics.throughput > 0
        assert metrics.blocking_ratio >= 0
        assert metrics.restart_ratio >= 0
        if policy is ConflictPolicy.COMMUTATIVITY:
            assert metrics.pseudo_commits == 0
