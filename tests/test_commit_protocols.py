"""Unit tests for the pluggable commit protocols (repro.distributed.commit).

Covers the protocol factory, the one-phase baseline's equivalence with the
pre-refactor commit path, two-phase W-ack durability under quorum consensus
(re-replication on site failure, hold-until-recovery, the prepare timeout),
commit-time cycle certification (the sweep-race residue), the load-ranked
quorum read selection, and the simulation-layer wiring (parameters, the
``commit_*`` and ``replication_under_replicated_window`` counters, CLI).
"""

import io

import pytest

from repro.adts.page import PageType
from repro.cli import main as cli_main
from repro.core.errors import ReproError, SimulationError
from repro.core.policy import ConflictPolicy
from repro.core.transaction import TransactionStatus
from repro.distributed import (
    OnePhase,
    TransactionRouter,
    TwoPhase,
    make_commit_protocol,
)
from repro.sim.params import SimulationParameters
from repro.sim.simulator import run_simulation

from test_replication_protocols import _MixedType


def make_router(sites=3, commit="two-phase", protocol="quorum",
                quorum_read=2, quorum_write=2, objects=("x", "y"), **extra):
    router = TransactionRouter(
        site_count=sites,
        replication="copies",
        retain_terminated=True,
        replication_protocol=protocol,
        quorum_read=quorum_read,
        quorum_write=quorum_write,
        commit_protocol=commit,
        **extra,
    )
    page = PageType()
    for name in objects:
        router.register_object(name, page, compatibility=page.compatibility())
    return router


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_commit_protocol("one-phase"), OnePhase)
        assert isinstance(make_commit_protocol("two-phase"), TwoPhase)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SimulationError):
            make_commit_protocol("three-phase")

    def test_prepare_timeout_only_applies_to_two_phase(self):
        assert make_commit_protocol("two-phase", prepare_timeout=0.5).prepare_timeout == 0.5
        with pytest.raises(SimulationError):
            make_commit_protocol("one-phase", prepare_timeout=0.5)
        with pytest.raises(SimulationError):
            make_commit_protocol("two-phase", prepare_timeout=0.0)

    def test_protocol_instances_are_not_shareable(self):
        protocol = make_commit_protocol("two-phase")
        TransactionRouter(site_count=2, replication="copies",
                          commit_protocol=protocol)
        with pytest.raises(ReproError):
            TransactionRouter(site_count=2, replication="copies",
                              commit_protocol=protocol)

    def test_timeout_cannot_accompany_a_protocol_instance(self):
        with pytest.raises(ReproError):
            TransactionRouter(site_count=2, replication="copies",
                              commit_protocol=make_commit_protocol("two-phase"),
                              prepare_timeout=0.5)

    def test_one_phase_is_the_default(self):
        router = TransactionRouter(site_count=2, replication="copies")
        assert isinstance(router.commit_protocol, OnePhase)


def _pseudo_committed_writer(router):
    """A pseudo-committed write of ``x`` plus the dependency holding it.

    ``t1`` writes first, ``t2``'s write of the same page is recoverable
    after it (commit dependency), so ``commit(t2)`` pseudo-commits at every
    branch of its sticky W-set.  Returns ``(t1, t2, w_set)``.
    """
    t1, t2 = router.begin(), router.begin()
    router.perform(t1.gtid, "x", "write", 1)
    request = router.perform(t2.gtid, "x", "write", 2)
    assert router.commit(t2.gtid) is TransactionStatus.PSEUDO_COMMITTED
    return t1, t2, sorted(request.branch_handles)


class TestTwoPhaseDurability:
    def test_crash_triggers_re_replication_to_the_spare(self):
        # The acceptance scenario: a site crash after pseudo-commit must
        # never yield a reported-durable object with fewer than W stamped
        # live copies — re-replication restores W without waiting for the
        # dead site to recover.
        router = make_router(commit="two-phase")
        protocol = router.replication
        t1, t2, w_set = _pseudo_committed_writer(router)
        spare = (set(range(3)) - set(w_set)).pop()
        router.fail_site(w_set[0])
        # t1 (an uncommitted writer at the dead site) aborts; its cascade
        # drains t2's surviving branch, and re-replication stamps the spare
        # before the commit is reported.
        assert t1.status is TransactionStatus.ABORTED
        assert t2.status is TransactionStatus.COMMITTED
        live_stamped = [
            sid for sid in range(3)
            if router.sites[sid].status.is_up
            and protocol.version_of(sid, "x") >= 1
        ]
        assert len(live_stamped) == 2  # W stamped live copies, spare included
        assert spare in live_stamped
        assert router.sites[spare].scheduler.committed_state("x") == 2
        assert protocol.stats.under_replicated_window == 0
        assert router.commit_protocol.stats.re_replicated_objects == 1

    def test_one_phase_reports_the_same_crash_under_replicated(self):
        router = make_router(commit="one-phase")
        protocol = router.replication
        t1, t2, w_set = _pseudo_committed_writer(router)
        spare = (set(range(3)) - set(w_set)).pop()
        router.fail_site(w_set[0])
        assert t2.status is TransactionStatus.COMMITTED
        # The extracted baseline drops the dead branch: one stamped live
        # copy, the spare untouched, and the window counter records it.
        assert protocol.version_of(spare, "x") == 0
        assert protocol.stats.under_replicated_window == 1
        assert router.commit_protocol.stats.re_replicated_objects == 0

    def test_no_spare_holds_the_report_until_recovery(self):
        # Two sites, W=2: when a W-set member dies there is nowhere to
        # re-replicate — the commit survives as a blocked participant and
        # reports durable only once recovery catch-up restores the stamp.
        router = make_router(sites=2, commit="two-phase",
                             quorum_read=1, quorum_write=2)
        protocol = router.replication
        t1, t2, _ = _pseudo_committed_writer(router)
        router.fail_site(1)
        assert t1.status is TransactionStatus.ABORTED
        assert t2.status is TransactionStatus.PSEUDO_COMMITTED  # held, not dropped
        assert protocol.stats.under_replicated_window == 0
        router.recover_site(1)
        assert t2.status is TransactionStatus.COMMITTED
        assert protocol.version_of(1, "x") == 1
        assert router.sites[1].scheduler.committed_state("x") == 2
        assert protocol.stats.under_replicated_window == 0

    def test_busy_spare_defers_re_replication_until_it_frees(self):
        # The spare holds in-flight work on x: installing over uncommitted
        # operations is unsafe, so the commit is held — and retried the
        # moment the blocking transaction finishes.
        router = make_router(commit="two-phase")
        protocol = router.replication
        t1, t2, w_set = _pseudo_committed_writer(router)
        spare = (set(range(3)) - set(w_set)).pop()
        # Bias the load-ranked read quorum so a reader parks an executed,
        # still-uncommitted operation on the spare's copy of x.
        loads = {spare: 0, w_set[1]: 1, w_set[0]: 5}
        for sid, load in loads.items():
            router.sites[sid].attach_domain(TestLoadRankedQuorumReads._Domain(load))
        blocker = router.begin()
        read = router.perform(blocker.gtid, "x", "read")
        assert spare in read.branch_handles
        assert router.sites[spare].has_uncommitted("x")
        router.fail_site(w_set[0])
        assert t2.status is TransactionStatus.PSEUDO_COMMITTED  # spare busy: held
        assert protocol.stats.under_replicated_window == 0
        router.abort(blocker.gtid)
        # The blocker's finish frees the spare: the restore retries and the
        # held commit reports with W live stamped copies.
        assert t2.status is TransactionStatus.COMMITTED
        assert protocol.version_of(spare, "x") == 1

    def test_acks_and_prepare_traffic_are_counted(self):
        router = make_router(commit="two-phase")
        t = router.begin()
        router.perform(t.gtid, "x", "write", 5)
        assert router.commit(t.gtid) is TransactionStatus.COMMITTED
        stats = router.commit_protocol.stats
        assert stats.prepare_rounds == 1
        assert stats.prepare_acks == 2  # both W-set branches drained
        assert stats.prepare_messages == 1


class TestCertification:
    def _wedge(self, commit):
        """The ROADMAP's late-closing cycle, router-level (see
        tests/test_replication_protocols.py::TestCycleSweep for the
        construction); every member completes (pseudo-commits) between
        sweep ticks — no sweep runs here at all."""
        router = TransactionRouter(
            site_count=2, replication="hash",
            policy=ConflictPolicy.RECOVERABILITY, retain_terminated=True,
            commit_protocol=commit,
        )
        page, mixed = PageType(), _MixedType()
        names = [f"obj{i}" for i in range(16)]
        a = next(n for n in names if router.placement.sites_for(n) == (0,))
        b = next(n for n in names if router.placement.sites_for(n) == (1,))
        router.register_object(a, mixed, compatibility=mixed.compatibility())
        router.register_object(b, page, compatibility=page.compatibility())
        ta, tc, tb = router.begin(), router.begin(), router.begin()
        assert router.perform(ta.gtid, b, "write", 1).executed
        assert router.perform(tb.gtid, a, "h").executed
        assert router.perform(tc.gtid, a, "f").executed
        assert router.perform(tb.gtid, b, "write", 2).executed
        assert router.perform(ta.gtid, a, "g").blocked
        # C's commit grants g inside the termination cascade, closing the
        # cross-site cycle A -> B / B -> A with no submit to piggyback on.
        assert router.commit(tc.gtid) is TransactionStatus.COMMITTED
        assert ta.current_request.executed
        return router, ta, tb

    def test_one_phase_reproduces_the_circular_global_order(self):
        router, ta, tb = self._wedge("one-phase")
        router.commit(ta.gtid)
        router.commit(tb.gtid)
        # Every member reaches (pseudo-)commit between sweep ticks: the
        # per-branch drains honour only local edges, so both durably commit
        # in a circular global dependency order — the sweep-race residue.
        assert ta.status is TransactionStatus.COMMITTED
        assert tb.status is TransactionStatus.COMMITTED
        assert router.router_stats.cross_site_deadlock_aborts == 0

    def test_two_phase_certifies_and_aborts_a_victim(self):
        router, ta, tb = self._wedge("two-phase")
        # The prepare step re-checks the union graph before any branch
        # stamps durable: B, the youngest ACTIVE cycle member, is aborted
        # (the sweep's victim rule) and A commits cleanly.
        assert router.commit(ta.gtid) is TransactionStatus.COMMITTED
        assert tb.status is TransactionStatus.ABORTED
        assert router.commit_protocol.stats.certification_aborts == 1
        assert router.router_stats.cross_site_deadlock_aborts == 1

    def test_the_committer_is_the_victim_when_it_is_youngest(self):
        router, ta, tb = self._wedge("two-phase")
        # Committing B first: B is itself the youngest ACTIVE member, so
        # certification sacrifices the committer and the commit reports the
        # abort to the caller instead of proceeding.
        assert router.commit(tb.gtid) is TransactionStatus.ABORTED
        assert tb.status is TransactionStatus.ABORTED
        assert router.commit(ta.gtid) is TransactionStatus.COMMITTED


class TestLoadRankedQuorumReads:
    class _Domain:
        def __init__(self, load):
            self.load = load

    def test_quorum_members_prefer_least_loaded_replicas(self):
        router = make_router(commit="one-phase")
        rotation = router.replication._rotated("x", (0, 1, 2))
        loads = {rotation[0]: 5, rotation[1]: 2, rotation[2]: 0}
        for sid, load in loads.items():
            router.sites[sid].attach_domain(self._Domain(load))
        t = router.begin()
        request = router.perform(t.gtid, "x", "read")
        # R=2 members: the two least-loaded replicas, not the rotation head.
        assert sorted(request.branch_handles) == sorted([rotation[2], rotation[1]])

    def test_rotation_order_breaks_load_ties(self):
        router = make_router(commit="one-phase")
        rotation = router.replication._rotated("x", (0, 1, 2))
        for sid in range(3):
            router.sites[sid].attach_domain(self._Domain(1))
        t = router.begin()
        request = router.perform(t.gtid, "x", "read")
        assert sorted(request.branch_handles) == sorted(rotation[:2])

    def test_without_domains_the_rotation_order_is_unchanged(self):
        router = make_router(commit="one-phase")
        rotation = router.replication._rotated("x", (0, 1, 2))
        t = router.begin()
        request = router.perform(t.gtid, "x", "read")
        assert sorted(request.branch_handles) == sorted(rotation[:2])

    def test_own_write_copies_still_lead_the_quorum(self):
        # Read-your-writes outranks load: a copy holding the reader's own
        # uncommitted write joins the quorum however loaded it is.
        router = make_router(commit="one-phase")
        t = router.begin()
        written = sorted(router.perform(t.gtid, "x", "write", 9).branch_handles)
        loads = {sid: (10 if sid in written else 0) for sid in range(3)}
        for sid, load in loads.items():
            router.sites[sid].attach_domain(self._Domain(load))
        request = router.perform(t.gtid, "x", "read")
        assert request.value == 9
        assert request.value_site in written


SCHEDULE = ((0.5, "fail", 1), (1.0, "recover", 1),
            (1.3, "fail", 0), (1.6, "recover", 0))


def _sim_params(commit, **extra):
    return SimulationParameters(
        mpl_level=15, total_completions=150, database_size=100, seed=11,
        site_count=3, replication="copies", replication_protocol="quorum",
        quorum_read=2, quorum_write=2, commit_protocol=commit,
        failure_schedule=SCHEDULE, **extra)


class TestSimulationWiring:
    @pytest.mark.parametrize("commit,extra", [
        ("one-phase", {}),
        ("two-phase", {}),
        ("two-phase", dict(prepare_timeout=0.05)),
    ])
    def test_commit_protocol_runs_are_deterministic(self, commit, extra):
        first = run_simulation(_sim_params(commit, **extra), "readwrite")
        second = run_simulation(_sim_params(commit, **extra), "readwrite")
        assert first.counters() == second.counters()
        assert first.as_dict() == second.as_dict()

    #: Cross-interpreter pins for the scripted double-crash scenario: the
    #: streams are CRC32-derived, so these values must reproduce on every
    #: CPython the CI matrix runs (verified identical on 3.11 and 3.13).
    PINNED = {
        "one-phase": dict(window=12, forced=0, re_replicated=0, rounds=0,
                          events=2109, simulated_time=7.95),
        "two-phase": dict(window=0, forced=0, re_replicated=14, rounds=150,
                          events=2070, simulated_time=8.3),
    }

    @pytest.mark.parametrize("commit", sorted(PINNED))
    def test_double_crash_counters_are_pinned_cross_interpreter(self, commit):
        expected = self.PINNED[commit]
        metrics = run_simulation(_sim_params(commit), "readwrite")
        counters = metrics.counters()
        assert counters["replication_under_replicated_window"] == expected["window"]
        assert counters["commit_forced_reports"] == expected["forced"]
        assert counters["commit_re_replicated_objects"] == expected["re_replicated"]
        assert counters["commit_prepare_rounds"] == expected["rounds"]
        assert counters["events_processed"] == expected["events"]
        assert round(metrics.simulated_time, 10) == expected["simulated_time"]

    def test_one_phase_crash_opens_the_under_replication_window(self):
        counters = run_simulation(_sim_params("one-phase"), "readwrite").counters()
        assert counters["replication_under_replicated_window"] > 0
        assert counters["commit_prepare_rounds"] == 0
        assert counters["commit_re_replicated_objects"] == 0

    def test_two_phase_closes_the_window_by_re_replicating(self):
        counters = run_simulation(_sim_params("two-phase"), "readwrite").counters()
        assert counters["replication_under_replicated_window"] == 0
        assert counters["commit_forced_reports"] == 0
        assert counters["commit_prepare_rounds"] > 0
        assert counters["commit_prepare_acks"] >= counters["commit_prepare_rounds"]
        assert counters["commit_re_replicated_objects"] > 0

    def test_prepare_timeout_trades_the_window_for_latency(self):
        counters = run_simulation(
            _sim_params("two-phase", prepare_timeout=0.05), "readwrite"
        ).counters()
        # The timeout force-reports commits still below W stamps — visible
        # as forced reports and as reopened window counts.
        assert counters["commit_forced_reports"] > 0
        assert counters["replication_under_replicated_window"] > 0
        assert (counters["replication_under_replicated_window"]
                >= counters["commit_forced_reports"])

    def test_single_site_runs_carry_no_commit_counters(self):
        params = SimulationParameters(
            mpl_level=10, total_completions=60, database_size=100, seed=3,
            commit_protocol="two-phase")
        counters = run_simulation(params, "readwrite").counters()
        for name in ("commit_prepare_rounds", "commit_prepare_acks",
                     "commit_certifications", "commit_re_replications",
                     "commit_forced_reports"):
            assert name not in counters
        # The scheduler-side commit_dependency_edges counter predates the
        # commit-protocol family and stays, keeping the pinned set closed.
        assert "commit_dependency_edges" in counters

    def test_explicit_one_phase_matches_the_default_run(self):
        base = dict(mpl_level=15, total_completions=100, database_size=100,
                    seed=11, site_count=2, replication="copies",
                    failure_schedule=((1.0, "fail", 1), (2.5, "recover", 1)))
        default = run_simulation(SimulationParameters(**base), "readwrite")
        explicit = run_simulation(
            SimulationParameters(commit_protocol="one-phase", **base), "readwrite")
        assert default.counters() == explicit.counters()
        assert default.as_dict() == explicit.as_dict()

    def test_parameters_are_validated(self):
        with pytest.raises(SimulationError):
            SimulationParameters(commit_protocol="three-phase")
        with pytest.raises(SimulationError):
            SimulationParameters(prepare_timeout=0.5)  # one-phase default
        with pytest.raises(SimulationError):
            SimulationParameters(commit_protocol="two-phase", prepare_timeout=0.0)


class TestCli:
    def _run(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_commit_protocol_flags_flow_into_the_json_echo(self):
        import json
        code, text = self._run(
            "simulate", "--database-size", "50", "--mpl", "8",
            "--completions", "40", "--sites", "3",
            "--replication-protocol", "quorum", "--quorum-r", "2",
            "--quorum-w", "2", "--commit-protocol", "two-phase",
            "--prepare-timeout", "0.5", "--fail-at", "0.5:1",
            "--recover-at", "1.0:1", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["sites"]["commit_protocol"] == "two-phase"
        assert payload["params"]["prepare_timeout"] == 0.5
        assert payload["sites"]["commit_counters"]["prepare_rounds"] > 0
        assert payload["counters"]["commit_prepare_rounds"] > 0
        assert "replication_under_replicated_window" in payload["counters"]

    def test_prepare_timeout_without_two_phase_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            self._run("simulate", "--sites", "2", "--prepare-timeout", "0.5")
        assert "two-phase" in capsys.readouterr().err
