"""Tests for the execution-log machinery."""


from repro.core.history import ExecutionLog, RecordKind
from repro.core.specification import Invocation


def build_paper_sequence_1():
    """Sequence (1) of the paper: T2 reads through T1's uncommitted insert."""
    log = ExecutionLog()
    log.append_operation("X", Invocation("insert", (3,)), "ok", 1)
    log.append_operation("X", Invocation("member", (3,)), "yes", 2)
    log.append_operation("X", Invocation("insert", (7,)), "ok", 1)
    log.append_operation("X", Invocation("delete", (3,)), "ok", 2)
    return log


class TestAppend:
    def test_operations_get_increasing_sequence_numbers(self):
        log = build_paper_sequence_1()
        sequences = [event.sequence for event in log.events()]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_append_event_reassigns_sequence(self):
        log = ExecutionLog()
        first = log.append_operation("X", Invocation("read"), 0, 1)
        clone = log.append_event(first)
        assert clone.sequence > first.sequence

    def test_termination_records(self):
        log = build_paper_sequence_1()
        log.append_commit(1)
        log.append_pseudo_commit(2)
        log.append_abort(3)
        kinds = [record.kind for record in log.records()]
        assert kinds[-3:] == [RecordKind.COMMIT, RecordKind.PSEUDO_COMMIT, RecordKind.ABORT]


class TestQueries:
    def test_events_on_and_of(self):
        log = build_paper_sequence_1()
        log.append_operation("Y", Invocation("insert", (9,)), "ok", 1)
        assert len(log.events_on("X")) == 4
        assert len(log.events_on("Y")) == 1
        assert [e.invocation.op for e in log.events_of(2)] == ["member", "delete"]

    def test_object_names_in_first_touch_order(self):
        log = build_paper_sequence_1()
        log.append_operation("Y", Invocation("insert", (9,)), "ok", 1)
        assert log.object_names() == ["X", "Y"]

    def test_transactions_committed_aborted_active(self):
        log = build_paper_sequence_1()
        log.append_commit(1)
        assert log.transactions() == {1, 2}
        assert log.committed() == {1}
        assert log.aborted() == set()
        assert log.active() == {2}

    def test_committed_before_and_terminated_before(self):
        log = ExecutionLog()
        log.append_operation("X", Invocation("read"), 0, 1)
        log.append_commit(1)
        event = log.append_operation("X", Invocation("read"), 0, 2)
        log.append_abort(2)
        assert log.committed_before(event.sequence) == {1}
        assert log.terminated_before(event.sequence) == {1}

    def test_len_and_iter(self):
        log = build_paper_sequence_1()
        assert len(log) == 4
        assert len(list(iter(log))) == 4


class TestWithoutTransactions:
    def test_removal_preserves_other_records_and_sequences(self):
        log = build_paper_sequence_1()
        reduced = log.without_transactions({1})
        assert [e.transaction_id for e in reduced.events()] == [2, 2]
        original_sequences = [e.sequence for e in log.events() if e.transaction_id == 2]
        assert [e.sequence for e in reduced.events()] == original_sequences

    def test_original_log_is_untouched(self):
        log = build_paper_sequence_1()
        log.without_transactions({1})
        assert len(log.events()) == 4


class TestRender:
    def test_render_uses_paper_notation(self):
        log = build_paper_sequence_1()
        log.append_commit(1)
        text = log.render()
        assert "X: (insert(3), 'ok', T1)" in text
        assert "(commit, T1)" in text
