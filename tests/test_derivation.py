"""Tests for deriving compatibility tables from executable specifications."""

import pytest

from repro.adts import CounterType, PageType, QueueType, SetType, StackType, TableType
from repro.core.compatibility import Answer
from repro.core.derivation import (
    check_declared_sound,
    derive_commutativity_answer,
    derive_commutativity_table,
    derive_compatibility,
    derive_recoverability_answer,
    derive_recoverability_table,
    invocation_recoverable,
    invocations_commute,
)
from repro.core.specification import Invocation


class TestPointwiseChecks:
    def test_two_inserts_commute(self, set_type):
        assert invocations_commute(set_type, Invocation("insert", (1,)), Invocation("insert", (2,)))

    def test_delete_same_element_does_not_commute(self, set_type):
        assert not invocations_commute(
            set_type, Invocation("insert", (1,)), Invocation("delete", (1,))
        )

    def test_push_not_commutative_but_recoverable(self, stack_type):
        push1, push2 = Invocation("push", (1,)), Invocation("push", (2,))
        assert not invocations_commute(stack_type, push1, push2)
        assert invocation_recoverable(stack_type, push1, push2)

    def test_pop_not_recoverable_relative_to_push(self, stack_type):
        assert not invocation_recoverable(stack_type, Invocation("pop"), Invocation("push", (1,)))

    def test_write_recoverable_relative_to_read_and_write(self, page_type):
        write = Invocation("write", (1,))
        assert invocation_recoverable(page_type, write, Invocation("read"))
        assert invocation_recoverable(page_type, write, Invocation("write", (7,)))

    def test_read_not_recoverable_relative_to_write(self, page_type):
        assert not invocation_recoverable(page_type, Invocation("read"), Invocation("write", (7,)))

    def test_size_not_recoverable_relative_to_insert(self, table_type):
        assert not invocation_recoverable(
            table_type, Invocation("size"), Invocation("insert", ("k", "v"))
        )

    def test_insert_recoverable_relative_to_size(self, table_type):
        assert invocation_recoverable(
            table_type, Invocation("insert", ("k", "v")), Invocation("size")
        )

    def test_explicit_state_sample_overrides(self, set_type):
        # Over a sample containing only the empty set, deleting and checking
        # membership of the same element *looks* commutative; the richer
        # default sample exposes the counterexample.
        assert invocations_commute(
            set_type,
            Invocation("member", (1,)),
            Invocation("delete", (1,)),
            states=[frozenset()],
        )
        assert not invocations_commute(
            set_type, Invocation("member", (1,)), Invocation("delete", (1,))
        )


class TestDerivedAnswers:
    def test_page_read_read_is_yes(self, page_type):
        assert derive_commutativity_answer(page_type, "read", "read") is Answer.YES

    def test_page_write_write_commutativity_is_yes_sp(self, page_type):
        assert derive_commutativity_answer(page_type, "write", "write") is Answer.YES_SP

    def test_page_write_write_recoverability_is_yes(self, page_type):
        assert derive_recoverability_answer(page_type, "write", "write") is Answer.YES

    def test_page_read_write_is_no_both_ways(self, page_type):
        assert derive_commutativity_answer(page_type, "read", "write") is Answer.NO
        assert derive_recoverability_answer(page_type, "read", "write") is Answer.NO

    def test_stack_push_push(self, stack_type):
        assert derive_commutativity_answer(stack_type, "push", "push") is Answer.YES_SP
        assert derive_recoverability_answer(stack_type, "push", "push") is Answer.YES

    def test_stack_pop_pop_is_no(self, stack_type):
        assert derive_commutativity_answer(stack_type, "pop", "pop") is Answer.NO
        assert derive_recoverability_answer(stack_type, "pop", "pop") is Answer.NO

    def test_stack_top_top_is_yes(self, stack_type):
        assert derive_commutativity_answer(stack_type, "top", "top") is Answer.YES

    def test_set_insert_insert_is_yes(self, set_type):
        assert derive_commutativity_answer(set_type, "insert", "insert") is Answer.YES

    def test_set_delete_rows_are_parameter_dependent(self, set_type):
        assert derive_commutativity_answer(set_type, "delete", "delete") is Answer.YES_DP
        assert derive_recoverability_answer(set_type, "delete", "insert") is Answer.YES_DP

    def test_table_size_asymmetry(self, table_type):
        assert derive_recoverability_answer(table_type, "insert", "size") is Answer.YES
        assert derive_recoverability_answer(table_type, "size", "insert") is Answer.NO

    def test_table_modify_recoverable_relative_to_modify(self, table_type):
        assert derive_recoverability_answer(table_type, "modify", "modify") is Answer.YES


class TestDerivedTables:
    @pytest.mark.parametrize("factory", [StackType, SetType, TableType])
    def test_declared_tables_match_derivation_exactly(self, factory):
        spec = factory()
        declared = spec.compatibility()
        assert derive_commutativity_table(spec) == declared.commutativity
        assert derive_recoverability_table(spec) == declared.recoverability

    def test_page_declared_differs_only_on_write_write(self, page_type):
        declared = page_type.compatibility()
        derived = derive_compatibility(page_type)
        differences = [
            (requested, executed)
            for requested in declared.operations
            for executed in declared.operations
            if declared.commutativity.answer(requested, executed)
            is not derived.commutativity.answer(requested, executed)
        ]
        assert differences == [("write", "write")]
        assert derived.recoverability == declared.recoverability

    def test_derived_spec_carries_type_name(self, stack_type):
        assert derive_compatibility(stack_type).type_name == "stack"


class TestDeclaredSoundness:
    @pytest.mark.parametrize(
        "factory", [PageType, StackType, SetType, TableType, CounterType, QueueType]
    )
    def test_all_bundled_types_declare_sound_tables(self, factory):
        assert check_declared_sound(factory()) == []

    def test_unsound_declaration_is_reported(self, stack_type):
        from repro.core.compatibility import CompatibilitySpec, RelationTable

        # Claim that pop commutes with push — the semantics disagrees.
        operations = ("push", "pop", "top")
        lying = CompatibilitySpec(
            type_name="stack",
            commutativity=RelationTable(
                name="lying", operations=operations, entries={("pop", "push"): Answer.YES}
            ),
            recoverability=RelationTable(name="empty", operations=operations, entries={}),
        )
        violations = check_declared_sound(stack_type, lying)
        assert any(
            v.requested == "pop" and v.executed == "push" and v.table.endswith("commutativity")
            for v in violations
        )

    def test_commutativity_implies_recoverability_lemma1(self):
        """Lemma 1: whenever the derivation says two operations commute, it
        also says each is recoverable relative to the other."""
        for factory in (PageType, StackType, SetType, TableType, CounterType, QueueType):
            spec = factory()
            derived = derive_compatibility(spec)
            for requested in derived.operations:
                for executed in derived.operations:
                    commutative = derived.commutativity.answer(requested, executed)
                    recoverable = derived.recoverability.answer(requested, executed)
                    assert commutative.implies(recoverable), (
                        spec.name,
                        requested,
                        executed,
                        commutative,
                        recoverable,
                    )
