"""Regression tests for the blocked-queue retry path.

``Scheduler.retry_blocked`` historically removed granted entries from the
queue it was enumerating; combined with :class:`PendingRequest`'s
field-based equality that could drop the wrong entry or skip a grantable
one when several blocked requests became grantable at once.  The retry loop
now removes by position and rescans after every mutating outcome; these
tests pin both the observable behaviour (every grantable request is
granted, fairness preserved) and the equality hazard that makes value-based
removal unsafe.
"""

import random

import pytest

from repro.adts import PageType
from repro.core.object_manager import PendingRequest
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler
from repro.core.specification import Invocation
from repro.core.transaction import TransactionStatus


def one_page_scheduler(fair=True):
    scheduler = Scheduler(policy=ConflictPolicy.COMMUTATIVITY, fair=fair)
    scheduler.register_object("X", PageType())
    return scheduler


class TestSimultaneousGrants:
    def test_two_simultaneously_grantable_reads_are_both_granted(self):
        # T1's uncommitted write blocks two reads on the same object; its
        # commit makes BOTH grantable in the same retry pass.  The old
        # enumerate-while-removing loop could skip the entry that slid into
        # the removed one's slot.
        scheduler = one_page_scheduler()
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "X", "write", 1).executed
        first = scheduler.perform(t2.tid, "X", "read")
        second = scheduler.perform(t3.tid, "X", "read")
        assert first.blocked and second.blocked
        assert scheduler.commit(t1.tid) is TransactionStatus.COMMITTED
        assert first.executed
        assert second.executed
        assert scheduler.objects["X"].blocked == []
        assert scheduler.stats.deadlock_aborts == 0

    def test_fairness_survives_the_rescan(self):
        # A grantable read queued behind a still-conflicting write must stay
        # queued (fair scheduling): the rescan after granting the write must
        # re-evaluate the read against the *new* queue state, not a stale
        # snapshot.
        scheduler = one_page_scheduler()
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "X", "write", 1).executed
        blocked_write = scheduler.perform(t2.tid, "X", "write", 2)
        blocked_read = scheduler.perform(t3.tid, "X", "read")
        assert blocked_write.blocked and blocked_read.blocked
        scheduler.commit(t1.tid)
        # The write at the head of the queue is granted; the read now
        # conflicts with the granted-but-uncommitted write and must wait.
        assert blocked_write.executed
        assert blocked_read.blocked
        scheduler.commit(t2.tid)
        assert blocked_read.executed


class TestSeededQueueStorm:
    @pytest.mark.parametrize("seed", [1, 7, 42, 1234])
    def test_no_request_is_lost_or_wedged(self, seed):
        # A seeded storm of transactions contending on one object: whatever
        # interleaving of blocks, grants, deadlock aborts and commits the
        # seed produces, every transaction must reach a terminal state and
        # the blocked queue must drain — a skipped grantable entry would
        # wedge its transaction forever.
        rng = random.Random(seed)
        scheduler = one_page_scheduler()
        transactions = [scheduler.begin() for _ in range(12)]
        operations = {t.tid: 0 for t in transactions}
        handles = []
        for _ in range(600):
            ready = [
                t.tid
                for t in transactions
                if scheduler.transactions[t.tid].status is TransactionStatus.ACTIVE
            ]
            if not ready:
                break
            tid = rng.choice(ready)
            if operations[tid] >= 1 and rng.random() < 0.4:
                scheduler.commit(tid)
                continue
            if rng.random() < 0.5:
                handle = scheduler.perform(tid, "X", "read")
            else:
                handle = scheduler.perform(tid, "X", "write", rng.randrange(100))
            operations[tid] += 1
            handles.append(handle)
        # Commit any survivors so every blocked request gets its chance.
        for transaction in transactions:
            if scheduler.transactions[transaction.tid].status is TransactionStatus.ACTIVE:
                scheduler.commit(transaction.tid)
        statuses = {
            scheduler.transactions[t.tid].status for t in transactions
        }
        assert statuses <= {TransactionStatus.COMMITTED, TransactionStatus.ABORTED}
        assert scheduler.objects["X"].blocked == []
        for handle in handles:
            assert handle.executed or handle.aborted


class TestValueRemovalHazard:
    def test_equal_pending_requests_make_value_removal_unsafe(self):
        # PendingRequest is a dataclass: two distinct queue entries with the
        # same fields compare equal, so list.remove targeting the later one
        # silently drops the earlier — exactly why retry_blocked deletes by
        # position.
        invocation = Invocation("read", ())
        first = PendingRequest(transaction_id=7, invocation=invocation)
        second = PendingRequest(transaction_id=7, invocation=invocation)
        assert first == second and first is not second
        queue = [first, second]
        queue.remove(second)
        assert queue[0] is second  # the wrong entry went away
        queue = [first, second]
        del queue[1]
        assert queue[0] is first  # positional removal drops the right one
