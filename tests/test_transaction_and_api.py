"""Tests for the transaction record, its status machine, and the public API."""

import pytest

import repro
from repro.core import __all__ as core_all
from repro.core.errors import TransactionStateError
from repro.core.specification import Event, Invocation
from repro.core.transaction import Transaction, TransactionStatus


class TestTransactionStatus:
    def test_terminated_statuses(self):
        assert TransactionStatus.COMMITTED.is_terminated
        assert TransactionStatus.ABORTED.is_terminated
        assert not TransactionStatus.ACTIVE.is_terminated
        assert not TransactionStatus.BLOCKED.is_terminated
        assert not TransactionStatus.PSEUDO_COMMITTED.is_terminated

    def test_live_statuses_include_pseudo_committed(self):
        assert TransactionStatus.PSEUDO_COMMITTED.is_live
        assert TransactionStatus.ACTIVE.is_live
        assert TransactionStatus.BLOCKED.is_live
        assert not TransactionStatus.COMMITTED.is_live
        assert not TransactionStatus.ABORTED.is_live


class TestTransactionRecord:
    def make_event(self, object_name="S", op="push", args=(1,), tid=7, sequence=1):
        return Event(object_name, Invocation(op, args), "ok", tid, sequence)

    def test_require_accepts_allowed_statuses(self):
        transaction = Transaction(tid=1)
        transaction.require(TransactionStatus.ACTIVE)
        transaction.require(TransactionStatus.ACTIVE, TransactionStatus.BLOCKED)

    def test_require_rejects_other_statuses(self):
        transaction = Transaction(tid=1, status=TransactionStatus.COMMITTED)
        with pytest.raises(TransactionStateError):
            transaction.require(TransactionStatus.ACTIVE)

    def test_record_event_tracks_objects_and_count(self):
        transaction = Transaction(tid=1)
        transaction.record_event(self.make_event(object_name="S"))
        transaction.record_event(self.make_event(object_name="X", op="insert"))
        assert transaction.operation_count == 2
        assert transaction.objects_visited == {"S", "X"}

    def test_invocations_on_filters_by_object(self):
        transaction = Transaction(tid=1)
        transaction.record_event(self.make_event(object_name="S", op="push", args=(1,)))
        transaction.record_event(self.make_event(object_name="X", op="insert", args=(2,)))
        transaction.record_event(self.make_event(object_name="S", op="pop", args=()))
        assert [i.op for i in transaction.invocations_on("S")] == ["push", "pop"]
        assert transaction.invocations_on("missing") == []

    def test_repr_mentions_status_and_objects(self):
        transaction = Transaction(tid=3)
        assert "T3" in repr(transaction)
        assert "active" in repr(transaction)


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.2.0"

    def test_top_level_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_all_names_resolve(self):
        import repro.core as core

        for name in core_all:
            assert hasattr(core, name), name

    def test_subpackages_import(self):
        import repro.adts
        import repro.analysis
        import repro.distributed
        import repro.sim

        assert repro.adts.paper_types() == ["page", "stack", "set", "table"]
        assert len(repro.analysis.all_figure_ids()) == 20
        assert repro.sim.SimulationParameters().database_size == 1000
        assert repro.distributed.TransactionRouter().site_count == 1

    def test_headline_workflow_through_top_level_names_only(self):
        scheduler = repro.Scheduler(policy=repro.ConflictPolicy.RECOVERABILITY)
        from repro.adts import StackType

        scheduler.register_object("S", StackType())
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 4)
        scheduler.perform(t2.tid, "S", "push", 2)
        assert scheduler.commit(t2.tid) is repro.TransactionStatus.PSEUDO_COMMITTED
        assert scheduler.commit(t1.tid) is repro.TransactionStatus.COMMITTED
        universe = repro.ObjectUniverse(specs={"S": StackType()})
        assert repro.is_log_sound(scheduler.history, universe)
        assert repro.is_serializable(scheduler.history, universe)
