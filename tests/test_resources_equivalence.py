"""Finite-resource runs must survive the resource-domain refactor bit for bit.

The per-site resource refactor carved :class:`ResourceDomain` out of the old
global ``ResourceModel`` and routed the charging through the
:class:`~repro.distributed.router.TransactionRouter`.  With
``resource_placement="global"`` (the default) and ``sites=1`` nothing about
the simulation may change: the constants below are the raw deterministic
counters — including the resource utilisation counters — of the
*pre-refactor* simulator on pinned ``(params, seed)`` points, captured before
the refactor landed.  The random streams have been process-stable
(CRC32-derived) since PR 1, so these values are reproducible on any
interpreter (verified on 3.11-3.13 in CI).  Any drift here means the
refactor changed the centralized system's decision or event stream.
"""

import pytest

from repro.core.policy import ConflictPolicy
from repro.sim.params import SimulationParameters
from repro.sim.simulator import run_simulation

#: Raw counters of the pre-refactor simulator on pinned finite-resource
#: points (``resource_placement`` defaults to ``"global"`` throughout).
PINNED_FINITE = {
    "rw-recov-units5-seed1": (
        dict(mpl_level=20, total_completions=200, database_size=200, seed=1,
             policy=ConflictPolicy.RECOVERABILITY, resource_units=5),
        "readwrite",
        dict(completions=200, commits=152, pseudo_commits=48, blocks=112,
             restarts=22, cycle_checks=312, aborts=22, abort_length_total=138,
             commit_dependency_edges=190, events_processed=3941,
             resource_cpu_served=1761, resource_cpu_waits=231,
             resource_disk_served=1748, resource_disk_waits=1088,
             simulated_time=9.8294201711, response_time_total=844.7308644094),
    ),
    "rw-2pl-units1-seed3": (
        dict(mpl_level=20, total_completions=200, database_size=200, seed=3,
             policy=ConflictPolicy.TWO_PHASE_LOCKING, resource_units=1),
        "readwrite",
        dict(completions=200, commits=200, pseudo_commits=0, blocks=300,
             restarts=27, cycle_checks=328, aborts=27, abort_length_total=198,
             commit_dependency_edges=0, events_processed=4073,
             resource_cpu_served=1830, resource_cpu_waits=1219,
             resource_disk_served=1824, resource_disk_waits=1621,
             simulated_time=35.5647265623, response_time_total=3376.7173101699),
    ),
    "adt-recov-units2-seed5": (
        dict(mpl_level=20, total_completions=150, database_size=150, seed=5,
             policy=ConflictPolicy.RECOVERABILITY, resource_units=2),
        "adt",
        dict(completions=150, commits=117, pseudo_commits=33, blocks=330,
             restarts=84, cycle_checks=562, aborts=84, abort_length_total=516,
             commit_dependency_edges=148, events_processed=3764,
             resource_cpu_served=1657, resource_cpu_waits=674,
             resource_disk_served=1654, resource_disk_waits=1096,
             simulated_time=21.3600989844, response_time_total=1467.5819517691),
    ),
}


@pytest.mark.parametrize("case", sorted(PINNED_FINITE))
def test_global_placement_reproduces_pre_refactor_finite_counters(case):
    overrides, workload, expected = PINNED_FINITE[case]
    metrics = run_simulation(SimulationParameters(**overrides), workload_kind=workload)
    observed = dict(
        metrics.counters(),
        simulated_time=round(metrics.simulated_time, 10),
        response_time_total=round(metrics.response_time_total, 10),
    )
    assert observed == expected


def test_explicit_global_placement_matches_default():
    """resource_placement='global' is the default configuration."""
    base = dict(mpl_level=15, total_completions=100, database_size=100,
                seed=11, resource_units=2)
    default = run_simulation(SimulationParameters(**base), "readwrite")
    explicit = run_simulation(
        SimulationParameters(resource_placement="global", **base), "readwrite"
    )
    assert default.counters() == explicit.counters()
    assert default.as_dict() == explicit.as_dict()


def test_per_site_runs_are_deterministic():
    """Same (params, seed) twice -> identical per-site-resource metrics."""
    params = SimulationParameters(
        mpl_level=15, total_completions=100, database_size=100, seed=11,
        site_count=2, replication="copies",
        resource_units=1, resource_placement="per_site", msg_time=0.001,
    )
    first = run_simulation(params, "readwrite")
    second = run_simulation(params, "readwrite")
    assert first.counters() == second.counters()
    assert first.as_dict() == second.as_dict()


def test_per_site_counters_expose_each_site():
    params = SimulationParameters(
        mpl_level=10, total_completions=60, database_size=100, seed=3,
        site_count=2, replication="copies",
        resource_units=1, resource_placement="per_site", msg_time=0.001,
    )
    counters = run_simulation(params, "readwrite").counters()
    for site in (0, 1):
        assert counters[f"resource_site{site}_cpu_served"] > 0
        assert counters[f"resource_site{site}_disk_served"] > 0
    # Writes fan out and transactions are homed round-robin, so with two
    # sites some work is necessarily remote and pays the network cost.
    assert counters["resource_messages_sent"] > 0
    assert counters["resource_remote_operations"] > 0
    # The aggregate is the sum of the per-site counters.
    assert counters["resource_cpu_served"] == (
        counters["resource_site0_cpu_served"] + counters["resource_site1_cpu_served"]
    )


def test_resource_counters_are_windowed_under_warmup():
    """Like every other counter, utilisation covers the measurement window."""
    base = dict(mpl_level=10, total_completions=120, database_size=100,
                seed=2, resource_units=1)
    full = run_simulation(
        SimulationParameters(warmup_completions=0, **base), "readwrite"
    )
    windowed = run_simulation(
        SimulationParameters(warmup_completions=60, **base), "readwrite"
    )
    # Identical streams; the warm-up run only starts counting later, so its
    # resource counters must be strictly smaller but still positive.
    for key in ("resource_cpu_served", "resource_disk_served"):
        assert 0 < windowed.counters()[key] < full.counters()[key]


def test_msg_time_slows_the_closed_system_down():
    """Network cost is real time: throughput drops when msg_time rises."""
    base = dict(
        mpl_level=15, total_completions=100, database_size=100, seed=11,
        site_count=2, replication="copies",
        resource_units=1, resource_placement="per_site",
    )
    free = run_simulation(SimulationParameters(msg_time=0.0, **base), "readwrite")
    costly = run_simulation(SimulationParameters(msg_time=0.02, **base), "readwrite")
    assert costly.throughput < free.throughput
    assert costly.counters()["resource_messages_sent"] > 0
    assert free.counters()["resource_messages_sent"] == 0


def test_read_scaling_with_replicated_sites():
    """The headline: read-heavy throughput grows with replicated sites."""
    results = {}
    for sites in (1, 4):
        params = SimulationParameters(
            mpl_level=40, total_completions=200, database_size=1000, seed=1,
            write_probability=0.1,
            site_count=sites, replication="copies" if sites > 1 else "single",
            resource_units=1, resource_placement="per_site",
        )
        results[sites] = run_simulation(params, "readwrite").throughput
    assert results[4] >= 1.5 * results[1]
