"""Tests for the closed-queuing simulator and its metrics."""

import pytest

from repro.core.policy import ConflictPolicy
from repro.sim.metrics import MetricsCollector, RunMetrics
from repro.sim.params import SimulationParameters
from repro.sim.simulator import Simulation, run_simulation


def metrics_fixture(**overrides):
    defaults = dict(
        simulated_time=10.0,
        completions=20,
        commits=15,
        pseudo_commits=5,
        response_time_total=30.0,
        blocks=10,
        restarts=4,
        cycle_checks=12,
        aborts=4,
        abort_length_total=8,
        commit_dependency_edges=6,
        events_processed=1000,
    )
    defaults.update(overrides)
    return RunMetrics(**defaults)


class TestRunMetrics:
    def test_derived_ratios(self):
        metrics = metrics_fixture()
        assert metrics.throughput == pytest.approx(2.0)
        assert metrics.response_time == pytest.approx(1.5)
        assert metrics.blocking_ratio == pytest.approx(0.5)
        assert metrics.restart_ratio == pytest.approx(0.2)
        assert metrics.cycle_check_ratio == pytest.approx(0.6)
        assert metrics.abort_length == pytest.approx(2.0)

    def test_zero_denominators_are_safe(self):
        metrics = metrics_fixture(
            simulated_time=0.0, completions=0, commits=0, pseudo_commits=0, aborts=0
        )
        assert metrics.throughput == 0.0
        assert metrics.response_time == 0.0
        assert metrics.blocking_ratio == 0.0
        assert metrics.abort_length == 0.0

    def test_as_dict_contains_every_reported_metric(self):
        data = metrics_fixture().as_dict()
        for key in (
            "throughput",
            "response_time",
            "blocking_ratio",
            "restart_ratio",
            "cycle_check_ratio",
            "abort_length",
        ):
            assert key in data


class TestMetricsCollector:
    def test_window_subtracts_scheduler_snapshot(self):
        from repro.core.scheduler import SchedulerStatistics

        stats = SchedulerStatistics(blocks=5, cycle_checks=7, aborts=2, abort_length_total=3)
        collector = MetricsCollector()
        collector.begin_measurement(100.0, stats)
        stats.blocks += 3
        stats.cycle_checks += 1
        collector.record_completion(response_time=2.0, pseudo=False)
        collector.record_completion(response_time=4.0, pseudo=True)
        collector.record_restart()
        frozen = collector.freeze(110.0, stats, events_processed=50)
        assert frozen.simulated_time == pytest.approx(10.0)
        assert frozen.completions == 2
        assert frozen.commits == 1 and frozen.pseudo_commits == 1
        assert frozen.blocks == 3
        assert frozen.cycle_checks == 1
        assert frozen.restarts == 1
        assert frozen.response_time == pytest.approx(3.0)


class TestSimulationRuns:
    def test_run_reaches_requested_completions(self, tiny_params):
        metrics = run_simulation(tiny_params, "readwrite")
        assert metrics.completions >= tiny_params.total_completions
        assert metrics.throughput > 0
        assert metrics.response_time > 0

    def test_same_seed_is_deterministic(self, tiny_params):
        first = run_simulation(tiny_params, "readwrite")
        second = run_simulation(tiny_params, "readwrite")
        assert first.throughput == pytest.approx(second.throughput)
        assert first.blocks == second.blocks
        assert first.restarts == second.restarts

    def test_different_seeds_differ(self, small_sim_params):
        first = run_simulation(small_sim_params(seed=1), "readwrite")
        second = run_simulation(small_sim_params(seed=2), "readwrite")
        assert first.throughput != pytest.approx(second.throughput)

    def test_adt_workload_runs(self, small_sim_params):
        params = small_sim_params(pc=4, pr=4)
        metrics = run_simulation(params, "adt")
        assert metrics.completions >= params.total_completions

    def test_finite_resources_run(self, small_sim_params):
        params = small_sim_params(resource_units=1)
        metrics = run_simulation(params, "readwrite")
        assert metrics.completions >= params.total_completions

    def test_commutativity_policy_has_no_pseudo_commits(self, small_sim_params):
        params = small_sim_params(policy=ConflictPolicy.COMMUTATIVITY, database_size=20)
        metrics = run_simulation(params, "readwrite")
        assert metrics.pseudo_commits == 0
        assert metrics.commits == metrics.completions

    def test_recoverability_beats_commutativity_under_contention(self):
        """The headline claim, checked at unit-test scale: with a small hot
        database the recoverability policy completes work faster."""
        base = dict(database_size=40, num_terminals=60, mpl_level=30, total_completions=150, seed=5)
        commutativity = run_simulation(
            SimulationParameters(policy=ConflictPolicy.COMMUTATIVITY, **base), "readwrite"
        )
        recoverability = run_simulation(
            SimulationParameters(policy=ConflictPolicy.RECOVERABILITY, **base), "readwrite"
        )
        assert recoverability.throughput > commutativity.throughput
        assert recoverability.blocking_ratio < commutativity.blocking_ratio

    def test_mpl_limit_is_respected_throughout(self, tiny_params):
        simulation = Simulation(tiny_params, "readwrite")
        observed = []
        original_start = simulation._start

        def tracking_start(transaction):
            original_start(transaction)
            observed.append(simulation.active_count)

        simulation._start = tracking_start
        simulation.run()
        assert observed and max(observed) <= tiny_params.mpl_level

    def test_warmup_excludes_early_completions(self, small_sim_params):
        params = small_sim_params(total_completions=80, warmup_completions=40)
        metrics = run_simulation(params, "readwrite")
        assert metrics.completions <= 80 - 40 + 1

    def test_pseudo_commit_slot_release_flag(self, small_sim_params):
        held = run_simulation(small_sim_params(pseudo_commit_holds_slot=True), "readwrite")
        released = run_simulation(small_sim_params(pseudo_commit_holds_slot=False), "readwrite")
        # Both configurations must finish; they are allowed to differ.
        assert held.completions >= 60 and released.completions >= 60

    def test_conflicts_are_counted_under_contention(self, small_sim_params):
        params = small_sim_params(
            database_size=30, num_terminals=40, mpl_level=15, total_completions=120, seed=3
        )
        metrics = run_simulation(params, "readwrite")
        # A thirty-object database at mpl 15 must produce conflicts.
        assert metrics.blocks > 0
        assert metrics.cycle_checks > 0
        assert metrics.blocking_ratio > 0

    def test_unfair_scheduling_runs_and_differs(self, small_sim_params):
        fair = run_simulation(small_sim_params(fair_scheduling=True, database_size=20), "readwrite")
        unfair = run_simulation(
            small_sim_params(fair_scheduling=False, database_size=20), "readwrite"
        )
        assert fair.completions >= 60 and unfair.completions >= 60
