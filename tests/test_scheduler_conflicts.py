"""Deadlock detection, commit-dependency cycles, fairness, and policies."""


from repro.adts import PageType, StackType
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import AbortReason, Scheduler
from repro.core.transaction import TransactionStatus


def two_page_scheduler(policy=ConflictPolicy.RECOVERABILITY, fair=True):
    scheduler = Scheduler(policy=policy, fair=fair)
    scheduler.register_object("X", PageType())
    scheduler.register_object("Y", PageType())
    return scheduler


class TestDeadlocks:
    def test_classic_two_transaction_deadlock_is_broken(self):
        scheduler = two_page_scheduler(policy=ConflictPolicy.COMMUTATIVITY)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "X", "write", 1)
        scheduler.perform(t2.tid, "Y", "write", 2)
        first_wait = scheduler.perform(t1.tid, "Y", "read")
        assert first_wait.blocked
        closing = scheduler.perform(t2.tid, "X", "read")
        assert closing.aborted
        assert closing.abort_reason is AbortReason.DEADLOCK
        assert scheduler.stats.deadlock_aborts == 1
        # The victim's departure unblocks the other transaction.
        assert first_wait.executed

    def test_three_way_deadlock(self):
        scheduler = Scheduler(policy=ConflictPolicy.COMMUTATIVITY)
        for name in ("X", "Y", "Z"):
            scheduler.register_object(name, PageType())
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "X", "write", 1)
        scheduler.perform(t2.tid, "Y", "write", 2)
        scheduler.perform(t3.tid, "Z", "write", 3)
        assert scheduler.perform(t1.tid, "Y", "read").blocked
        assert scheduler.perform(t2.tid, "Z", "read").blocked
        closing = scheduler.perform(t3.tid, "X", "read")
        assert closing.aborted and closing.abort_reason is AbortReason.DEADLOCK

    def test_no_false_deadlock_for_simple_waiting(self):
        scheduler = two_page_scheduler(policy=ConflictPolicy.COMMUTATIVITY)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "X", "write", 1)
        handle = scheduler.perform(t2.tid, "X", "write", 2)
        assert handle.blocked
        scheduler.commit(t1.tid)
        assert handle.executed
        assert scheduler.stats.deadlock_aborts == 0

    def test_recoverability_turns_this_deadlock_into_dependencies(self):
        """The same access pattern under recoverability never waits — but the
        crossing dependencies form a cycle, so the transaction that would
        close it is aborted (by cycle detection, not deadlock detection)."""
        scheduler = two_page_scheduler(policy=ConflictPolicy.RECOVERABILITY)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "X", "write", 1)
        scheduler.perform(t2.tid, "Y", "write", 2)
        # T1's write on Y is recoverable w.r.t. T2's write: executes with a
        # commit dependency T1 -> T2.
        assert scheduler.perform(t1.tid, "Y", "write", 3).executed
        # T2's write on X would add T2 -> T1 and close the cycle, so T2 aborts.
        closing = scheduler.perform(t2.tid, "X", "write", 4)
        assert closing.aborted
        assert closing.abort_reason is AbortReason.DEPENDENCY_CYCLE
        assert scheduler.stats.blocks == 0
        assert not scheduler.graph.has_cycle()
        # T2's abort removed the dependency, so T1 commits directly.
        assert scheduler.commit(t1.tid) is TransactionStatus.COMMITTED


class TestCommitDependencyCycles:
    def test_cycle_through_two_objects_aborts_the_closer(self):
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        scheduler.register_object("A", StackType())
        scheduler.register_object("B", StackType())
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "A", "push", 1)
        scheduler.perform(t2.tid, "B", "push", 2)
        # T2 pushes on A after T1: T2 -> T1.
        assert scheduler.perform(t2.tid, "A", "push", 3).executed
        # T1 pushing on B after T2 would add T1 -> T2, closing a cycle.
        closing = scheduler.perform(t1.tid, "B", "push", 4)
        assert closing.aborted
        assert closing.abort_reason is AbortReason.DEPENDENCY_CYCLE
        assert scheduler.stats.dependency_cycle_aborts == 1
        # T2 survives and can commit (no cascading abort).
        assert scheduler.commit(t2.tid) is TransactionStatus.COMMITTED

    def test_mixed_wait_and_dependency_cycle(self):
        """A cycle made of one wait-for edge and one commit-dependency edge."""
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        scheduler.register_object("A", StackType())
        scheduler.register_object("B", StackType())
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "A", "push", 1)
        scheduler.perform(t2.tid, "B", "push", 2)
        # T2's pop on A conflicts with T1's push: wait-for edge T2 -> T1.
        assert scheduler.perform(t2.tid, "A", "pop").blocked
        # T1's push on B is recoverable w.r.t. T2's push: commit-dependency
        # T1 -> T2 would close the cycle, so T1 is aborted instead.
        closing = scheduler.perform(t1.tid, "B", "push", 3)
        assert closing.aborted
        assert closing.abort_reason is AbortReason.DEPENDENCY_CYCLE
        # T2's blocked pop is granted once T1's push is undone.
        assert scheduler.transaction(t2.tid).status is TransactionStatus.ACTIVE

    def test_cycle_check_counter_increments_for_recoverable_executes(self):
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        scheduler.register_object("A", StackType())
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "A", "push", 1)
        before = scheduler.stats.cycle_checks
        scheduler.perform(t2.tid, "A", "push", 2)
        assert scheduler.stats.cycle_checks == before + 1


class TestFairScheduling:
    def test_fair_scheduler_blocks_behind_blocked_conflicting_request(self):
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY, fair=True)
        scheduler.register_object("S", StackType())
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        blocked = scheduler.perform(t2.tid, "S", "pop")       # waits behind the push
        assert blocked.blocked
        latecomer = scheduler.perform(t3.tid, "S", "pop")     # conflicts with the blocked pop
        assert latecomer.blocked
        # FIFO service: when T1 commits, T2's pop gets the element first; T3's
        # pop now conflicts with T2's executed pop and keeps waiting.
        scheduler.commit(t1.tid)
        assert blocked.executed and blocked.value == 1
        assert latecomer.blocked
        # Once T2 also commits, T3 finally pops from the (now empty) stack.
        scheduler.commit(t2.tid)
        assert latecomer.executed and latecomer.value is None

    def test_unfair_scheduler_lets_nonconflicting_requests_overtake(self):
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY, fair=False)
        scheduler.register_object("S", StackType())
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        assert scheduler.perform(t2.tid, "S", "pop").blocked
        # Under unfair scheduling a push that does not conflict with the
        # *executed* operations runs immediately, overtaking the blocked pop.
        overtaking = scheduler.perform(t3.tid, "S", "push", 3)
        assert overtaking.executed

    def test_fairness_waiter_is_retried_when_blocker_aborts_without_executing(self):
        """Regression: T3 waits (fairness) behind T2's queued pop; T2 never
        executed anything on the stack.  When T2 aborts, T3 must be retried
        even though the stack is not among T2's visited objects."""
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY, fair=True)
        scheduler.register_object("S", StackType())
        scheduler.register_object("P", PageType())
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        # T2 writes elsewhere, then queues a pop behind T1's push.
        scheduler.perform(t2.tid, "P", "write", 9)
        assert scheduler.perform(t2.tid, "S", "pop").blocked
        # T3's pop conflicts with T2's queued pop (fairness) and with T1's push.
        waiting = scheduler.perform(t3.tid, "S", "pop")
        assert waiting.blocked
        scheduler.abort(t2.tid)
        # T1 is still active, so T3 keeps waiting for the push...
        assert waiting.blocked
        scheduler.commit(t1.tid)
        # ...and is granted once T1 commits; without the retry-on-abort fix it
        # would have been stranded behind a request that no longer exists.
        assert waiting.executed and waiting.value == 1

    def test_fair_scheduler_blocks_recoverable_push_behind_blocked_pop(self):
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY, fair=True)
        scheduler.register_object("S", StackType())
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        assert scheduler.perform(t2.tid, "S", "pop").blocked
        # push is recoverable w.r.t. the blocked pop?  No: (push, pop) is
        # recoverable, so fairness does not force it to wait.
        assert scheduler.perform(t3.tid, "S", "push", 3).executed


class TestPolicies:
    def test_commutativity_policy_never_creates_commit_dependencies(self):
        scheduler = Scheduler(policy=ConflictPolicy.COMMUTATIVITY)
        scheduler.register_object("S", StackType())
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        assert scheduler.perform(t2.tid, "S", "push", 2).blocked
        assert scheduler.stats.commit_dependency_edges == 0
        assert scheduler.commit(t1.tid) is TransactionStatus.COMMITTED

    def test_recoverability_policy_avoids_waiting_for_noncommuting_pairs(self):
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        scheduler.register_object("S", StackType())
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        assert scheduler.perform(t2.tid, "S", "push", 2).executed
        assert scheduler.stats.blocks == 0
        assert scheduler.stats.commit_dependency_edges == 1

    def test_read_write_model_conflicts_match_the_paper(self):
        """Under recoverability only (read, write) remains a conflict."""
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        scheduler.register_object("P", PageType())
        t1, t2, t3, t4 = (scheduler.begin() for _ in range(4))
        scheduler.perform(t1.tid, "P", "write", 10)
        # write after write: recoverable, runs.
        assert scheduler.perform(t2.tid, "P", "write", 20).executed
        # read after write: conflict, blocks.
        assert scheduler.perform(t3.tid, "P", "read").blocked
        # read after read would commute, but fairness keeps FIFO order behind
        # the blocked read?  A second read does not conflict with the blocked
        # read, so it still blocks only because of the uncommitted writes.
        assert scheduler.perform(t4.tid, "P", "read").blocked
